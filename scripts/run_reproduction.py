#!/usr/bin/env python
"""Regenerate the full paper reproduction from the command line.

Runs every experiment sweep the benches cover (without pytest) and
prints the paper-style tables.  Useful for eyeballing the reproduction
or for REPRO_FULL=1 overnight runs.

Usage:
    python scripts/run_reproduction.py [--full] [--quick]

--quick runs a reduced processor sweep for a fast sanity pass;
--full sets the paper's 10 MB scale (same as REPRO_FULL=1).
"""

import argparse
import os
import sys
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale 10 MB workloads")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep (p up to 8)")
    args = parser.parse_args()
    if args.full:
        os.environ["REPRO_FULL"] = "1"

    from repro.analysis import (
        PAPER_TABLE3_COPY_SECONDS,
        PAPER_TABLE4_SORT_MINUTES,
        fit_line,
        format_table,
        speedup_series,
        table2_create_ms,
        table2_open_ms,
    )
    from repro.harness.experiments import (
        measure_table2,
        run_copy_experiment,
        run_create_tree_experiment,
        run_faults_experiment,
        run_sort_experiment,
        run_striping_comparison,
        run_token_saturation,
        run_views_experiment,
    )

    ps = (2, 4, 8) if args.quick else (2, 4, 8, 16, 32)
    started = time.time()

    def banner(title):
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")

    banner("Table 2: basic operations")
    rows = []
    for p in ps:
        m = measure_table2(p, file_blocks=256)
        rows.append([p, m.open_ms, m.read_ms_per_block, m.write_ms_per_block,
                     m.create_ms, m.delete_ms_per_block_per_lfs])
    print(format_table(
        ["p", "open ms", "read ms/blk", "write ms/blk", "create ms",
         "delete ms/blk/LFS"], rows))
    create_fit = fit_line(list(ps), [r[4] for r in rows])
    print(f"create fit: {create_fit[0]:.0f} + {create_fit[1]:.1f}*p "
          f"(paper: 145 + 17.5*p); open paper: {table2_open_ms():.0f} ms")

    banner("Table 3: copy tool")
    copy_times = {}
    rows = []
    for p in ps:
        run = run_copy_experiment(p)
        copy_times[p] = run.elapsed
        rows.append([p, run.blocks, run.elapsed, run.records_per_second])
    print(format_table(["p", "blocks", "time (s)", "records/s"], rows))
    print("measured speedup:", {p: round(v, 2) for p, v in
                                speedup_series(copy_times).items()})
    print("paper speedup:   ", {p: round(v, 2) for p, v in
                                speedup_series(PAPER_TABLE3_COPY_SECONDS).items()
                                if p in ps})

    banner("Table 4: merge sort tool")
    rows = []
    for p in ps:
        run = run_sort_experiment(p)
        rows.append([p, run.local_sort_seconds, run.merge_seconds,
                     run.total_seconds, run.records_per_second])
    print(format_table(
        ["p", "local sort (s)", "merge (s)", "total (s)", "records/s"], rows))
    print("paper (minutes):", {p: PAPER_TABLE4_SORT_MINUTES[p] for p in ps
                               if p in PAPER_TABLE4_SORT_MINUTES})

    banner("Views (p = 8): naive vs parallel-open vs tool")
    for network in ("butterfly", "ethernet"):
        run = run_views_experiment(8, blocks=256, network=network)
        print(f"{network:>10}: " + "  ".join(
            f"{view}={value:.0f} blk/s"
            for view, value in run.as_throughput().items()
        ))

    banner("Bridge vs striping vs sequential FS (copy)")
    rows = []
    for d in ps:
        run = run_striping_comparison(d, blocks=512)
        rows.append([d, run.sequential_seconds, run.striped_seconds,
                     run.bridge_tool_seconds])
    print(format_table(
        ["devices", "sequential (s)", "striped (s)", "Bridge (s)"], rows))

    banner("Token saturation (single pair merge)")
    rows = []
    for width in (w for w in ps if w % 2 == 0):
        run = run_token_saturation(width, records=256)
        rows.append([width, run.elapsed, run.records_per_second])
    print(format_table(["width", "time (s)", "records/s"], rows))

    banner("Create dispatch: sequential vs tree")
    rows = []
    for p in ps:
        run = run_create_tree_experiment(p)
        rows.append([p, run.sequential_ms, run.tree_ms])
    print(format_table(["p", "sequential (ms)", "tree (ms)"], rows))

    banner("Fault tolerance (one disk failure)")
    run = run_faults_experiment(p=8, blocks=16)
    print(f"plain interleaved file lost: {run.plain_lost}")
    print(f"mirrored file recovered:     {run.mirrored_recovered} "
          f"({run.mirror_fallbacks} blocks from the shadow, "
          f"{run.mirror_storage_blocks / run.plain_storage_blocks:.0f}x storage)")

    print(f"\ntotal wall time: {time.time() - started:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
