#!/usr/bin/env python
"""Export or check the acceptance-workload span-tree baseline.

The acceptance workload (``repro.workloads.acceptance``) drives every
Bridge Server operation on the default single-server configuration and
exports a byte-deterministic Chrome trace.  The committed baseline at
``tests/baselines/trace_acceptance.json`` pins the seed event sequence:
CI re-exports the trace and fails with the offending subtree if any
refactor of the request path drifts the sequence.

Usage:
    python scripts/span_baseline.py --check     # exit 1 on drift (CI)
    python scripts/span_baseline.py --update    # rewrite the baseline
"""

import argparse
import json
import os
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "tests", "baselines", "trace_acceptance.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline")
    parser.add_argument("--check", action="store_true",
                        help="compare a fresh export against the baseline "
                             "(the default)")
    parser.add_argument("--baseline", default=BASELINE,
                        help="baseline path (default: %(default)s)")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.obs import (
        diff_trace_documents,
        export_chrome_trace,
        validate_trace_document,
    )
    from repro.workloads.acceptance import acceptance_driver, acceptance_system

    system = acceptance_system(obs=True)
    summary = acceptance_driver(system)
    print(f"acceptance workload: {len(system.obs.spans)} spans, "
          f"sim time {system.sim.now:.6f}s, summary {summary}")

    if args.update:
        export_chrome_trace(system.obs, args.baseline)
        document = json.loads(open(args.baseline, encoding="utf-8").read())
        problems = validate_trace_document(document)
        if problems:
            print("baseline failed trace validation:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"baseline written: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first")
        return 1
    with tempfile.NamedTemporaryFile("r", suffix=".json", delete=False) as handle:
        fresh_path = handle.name
    try:
        export_chrome_trace(system.obs, fresh_path)
        fresh_bytes = open(fresh_path, "rb").read()
    finally:
        os.unlink(fresh_path)
    baseline_bytes = open(args.baseline, "rb").read()
    if fresh_bytes == baseline_bytes:
        print("span baseline check OK: trace is byte-identical to the baseline")
        return 0
    report = diff_trace_documents(
        json.loads(baseline_bytes.decode("utf-8")),
        json.loads(fresh_bytes.decode("utf-8")),
    )
    print("span baseline check FAILED: event-sequence drift detected")
    for line in report or ["(bytes differ but span events match; "
                           "check JSON formatting)"]:
        print(line)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
