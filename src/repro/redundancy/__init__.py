"""Parity-based redundancy over the interleaved Bridge layout (S16).

The section 6 remedy beyond mirroring: rotating XOR parity (RAID-5
style) at ``p/(p-1)`` storage overhead, with transparent degraded reads
and an online, throttleable rebuild after repair.  See
:mod:`repro.redundancy.parity` for the layout, in particular the
single-failure semantics shared with every RAID-5-class system.
"""

from repro.redundancy.degraded import (
    DegradedReader,
    DegradedReadStats,
    fanout_reads,
)
from repro.redundancy.manager import (
    SCHEMES,
    PlainFile,
    RedundancyManager,
)
from repro.redundancy.parity import (
    ParityFile,
    ParityGeometry,
    files_lost_fraction_parity,
    parity_storage_factor,
    xor_blocks,
)
from repro.redundancy.rebuild import (
    OnlineRebuild,
    RebuildProgress,
    RebuildStats,
)

__all__ = [
    "SCHEMES",
    "DegradedReader",
    "DegradedReadStats",
    "OnlineRebuild",
    "ParityFile",
    "ParityGeometry",
    "PlainFile",
    "RebuildProgress",
    "RebuildStats",
    "RedundancyManager",
    "fanout_reads",
    "files_lost_fraction_parity",
    "parity_storage_factor",
    "xor_blocks",
]
