"""Degraded-mode reads: transparent XOR reconstruction (S16).

When a :class:`~repro.redundancy.parity.ParityFile` read hits a failed
device (:class:`~repro.errors.DeviceFailedError`, or the device flag the
fault injector flips), the reader fans out *parallel* reads of the
stripe's surviving peers — the same one-shot-reply-port fan-out that
powers the Bridge Server's parallel-open view (see
:func:`repro.machine.rpc.gather` and :mod:`repro.core.parallel`) — and
XOR-reconstructs the missing block:

    data = parity XOR (every other data block of the stripe)

because the parity block is the XOR of all data blocks.  The fan-out
here must tolerate *per-peer* misses (a surviving constituent may simply
be shorter than the stripe index when the tail stripe is partial), so it
collects raw responses instead of failing on the first error the way
``gather`` does.

Every reconstruction is counted in the file's per-file
:class:`DegradedReadStats`; a second dead device inside the same stripe
is a double failure and raises :class:`DeviceFailedError` — exactly the
RAID-5 contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import (
    DeviceFailedError,
    EFSBlockNotFoundError,
)
from repro.machine.rpc import Request


@dataclass
class DegradedReadStats:
    """Per-file accounting of the degraded read path."""

    blocks: int = 0  # logical blocks served
    degraded: int = 0  # blocks served by XOR reconstruction
    peer_reads: int = 0  # surviving-constituent reads issued for those
    errors_detected: int = 0  # DeviceFailedErrors caught in the fast path

    @property
    def degraded_fraction(self) -> float:
        return self.degraded / self.blocks if self.blocks else 0.0


def fanout_reads(node, calls):
    """Issue reads in parallel, tolerating per-call application errors.

    ``calls`` is the same ``(port, method, args, size)`` shape as
    :func:`repro.machine.rpc.gather`, but the result is a list of
    ``(value, error)`` pairs instead of raising on the first error — a
    reconstruction must distinguish "this peer is short" (treat the block
    as zeros) from "this peer's device is dead too" (double failure).
    """
    reply_ports = []
    for port, method, args, size in calls:
        reply_port = node.port()
        node.send(port, Request(method, args, reply_port, size), size=size)
        reply_ports.append(reply_port)
    outcomes: List[Tuple[object, Optional[Exception]]] = []
    for reply_port in reply_ports:
        response = yield reply_port.recv()
        outcomes.append((response.value, response.error))
    return outcomes


class DegradedReader:
    """The read path of one parity file, failure-aware.

    Healthy blocks are read straight from their home constituent; a block
    whose device is down (or whose constituent is missing the block — a
    write hole awaiting rebuild) is reconstructed from the stripe's
    surviving peers.  Shares the file's stripe lock so reconstruction
    never observes a half-updated stripe.
    """

    def __init__(self, parity_file, stats: Optional[DegradedReadStats] = None) -> None:
        self.file = parity_file
        # Default to the file's own per-file stats; the rebuild sweep
        # passes a private object so reconstruction-for-rebuild does not
        # inflate the file's degraded-*read* accounting.
        self.stats: DegradedReadStats = (
            stats if stats is not None else parity_file.read_stats
        )

    # ------------------------------------------------------------------

    def read_block(self, logical: int):
        """Read one logical block, degrading transparently."""
        file = self.file
        if not 0 <= logical < file.logical_blocks:
            raise ValueError(
                f"{file.name!r}: logical block {logical} outside file of "
                f"{file.logical_blocks} blocks"
            )
        stripe, slot = file.geometry.locate(logical)
        self.stats.blocks += 1
        if not file.slot_failed(slot):
            try:
                return (yield from file.read_local(slot, stripe))
            except DeviceFailedError:
                self.stats.errors_detected += 1
            except EFSBlockNotFoundError:
                pass  # write hole on a repaired slot: reconstruct below
        return (yield from self.reconstruct(stripe, slot))

    # ------------------------------------------------------------------

    def reconstruct(self, stripe: int, missing_slot: int, locked: bool = False):
        """XOR the stripe's surviving blocks to recover ``missing_slot``.

        Works for data *and* parity slots (parity is just the XOR of the
        rest).  Holds the file's stripe lock for the duration so a
        concurrent writer cannot leave the stripe half-updated under us;
        pass ``locked=True`` when the caller (the rebuild sweep) already
        holds it.
        """
        file = self.file
        obs = file.node.machine.sim.obs
        span = None
        prev = None
        if obs is not None:
            prev = obs.current
            span = obs.begin("degraded_read", "client", node=file.node.index)
            obs.set_current(span)
            obs.metrics.counter("redundancy.degraded_read").inc()
        if not locked:
            yield self.file._lock.acquire()
        try:
            peers = [s for s in range(file.geometry.width) if s != missing_slot]
            calls = [
                (file._port(peer), "read",
                 {"file_number": file.file_id, "block_number": stripe,
                  "hint": None}, 0)
                for peer in peers
            ]
            outcomes = yield from fanout_reads(file.node, calls)
            parts = []
            for peer, (value, error) in zip(peers, outcomes):
                self.stats.peer_reads += 1
                if error is None:
                    parts.append(value.data)
                elif isinstance(error, EFSBlockNotFoundError):
                    parts.append(None)  # short constituent: zero block
                elif isinstance(error, DeviceFailedError):
                    raise DeviceFailedError(
                        f"{file.name!r} stripe {stripe}: slots "
                        f"{missing_slot} and {peer} both unavailable "
                        "(double failure, data lost)"
                    )
                else:
                    raise error
            self.stats.degraded += 1
            from repro.redundancy.parity import xor_blocks

            return xor_blocks(*parts)
        finally:
            if obs is not None:
                obs.end(span, stripe=stripe, missing_slot=missing_slot)
                obs.set_current(prev)
            if not locked:
                self.file._lock.release()
