"""Online reconstruction of a repaired node (S16).

After :meth:`repro.faults.FaultInjector.repair_slot` reconnects a device,
the node's constituent files are stale: every block written while the
device was down is missing (a *write hole* — the parity block absorbed
the new contents, the data block never landed), and pre-failure blocks
may have been logically overwritten.  :class:`OnlineRebuild` is a
discrete-event process (:mod:`repro.sim`) that walks the parity group
stripe by stripe, XOR-reconstructs the repaired slot's block from the
surviving peers, and rewrites it — in place where the constituent already
has the block, appended where the outage left the constituent short.
Foreground traffic keeps flowing the whole time: each stripe is repaired
under the file's stripe lock, so writes interleave *between* stripes, and
writes that race ahead of the sweep are caught because the sweep re-reads
the file size every iteration.

Throttling: a rebuild at full speed steals the whole array from
foreground traffic, so ``rate`` caps the sweep at a configurable number
of stripes per simulated second (``None`` = unthrottled).
:class:`RebuildProgress` exposes completed/total counts, the completed
fraction, and an ETA extrapolated from the measured per-stripe pace —
the operator-facing knobs every production rebuild needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Timeout


@dataclass
class RebuildProgress:
    """Live progress of one rebuild sweep (readable from outside the sim)."""

    slot: int
    total_stripes: int = 0
    rebuilt_stripes: int = 0
    blocks_written: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def fraction(self) -> float:
        if self.total_stripes == 0:
            return 1.0
        return self.rebuilt_stripes / self.total_stripes

    def elapsed(self, now: float) -> float:
        end = self.finished_at if self.finished_at is not None else now
        return end - self.started_at

    def eta(self, now: float) -> Optional[float]:
        """Seconds of simulated time until completion, extrapolated from
        the pace so far; ``None`` before the first stripe completes."""
        if self.done:
            return 0.0
        if self.rebuilt_stripes == 0:
            return None
        pace = self.elapsed(now) / self.rebuilt_stripes
        return pace * (self.total_stripes - self.rebuilt_stripes)


@dataclass
class RebuildStats:
    """Final outcome of one rebuild sweep."""

    slot: int
    stripes: int
    blocks_written: int
    elapsed: float
    rate: Optional[float] = None
    progress: RebuildProgress = field(repr=False, default=None)


class OnlineRebuild:
    """Stripe-by-stripe reconstruction of one slot of one parity file.

    Usage (auto-wired by :class:`repro.redundancy.manager.RedundancyManager`
    when the fault injector reports a repair)::

        rebuild = OnlineRebuild(parity_file, slot, rate=200.0)
        process = rebuild.start()          # spawns the DES process
        ...                                # foreground traffic continues
        stats = yield process.join()       # or let system.run() drain it
    """

    def __init__(self, parity_file, slot: int, rate: Optional[float] = None) -> None:
        if not 0 <= slot < parity_file.geometry.width:
            raise ValueError(
                f"slot {slot} outside [0, {parity_file.geometry.width})"
            )
        if rate is not None and rate <= 0:
            raise ValueError(f"rebuild rate must be positive, got {rate}")
        self.file = parity_file
        self.slot = slot
        self.rate = rate
        self.progress = RebuildProgress(slot=slot)

    # ------------------------------------------------------------------

    def run(self):
        """The rebuild process body; returns :class:`RebuildStats`."""
        from repro.redundancy.degraded import DegradedReader, DegradedReadStats

        file = self.file
        sim = file.system.sim
        reader = DegradedReader(file, stats=DegradedReadStats())
        progress = self.progress
        progress.started_at = sim.now
        progress.total_stripes = file.stripes
        throttle = (1.0 / self.rate) if self.rate else 0.0
        while progress.rebuilt_stripes < file.stripes:
            progress.total_stripes = file.stripes  # foreground may append
            stripe = progress.rebuilt_stripes
            yield file._lock.acquire()
            try:
                # In a partial tail stripe this slot may hold a *logical*
                # position past the end of the file; there is nothing to
                # rebuild there, and writing a zero block would corrupt
                # the strict layout (a data block with no logical owner).
                logical = file.geometry.logical_of(stripe, self.slot)
                if logical is None or logical < file.logical_blocks:
                    data = yield from reader.reconstruct(
                        stripe, self.slot, locked=True
                    )
                    yield from file.write_local(self.slot, stripe, data)
                    progress.blocks_written += 1
            finally:
                file._lock.release()
            progress.rebuilt_stripes += 1
            if throttle:
                yield Timeout(throttle)
        progress.finished_at = sim.now
        return RebuildStats(
            slot=self.slot,
            stripes=progress.rebuilt_stripes,
            blocks_written=progress.blocks_written,
            elapsed=progress.elapsed(sim.now),
            rate=self.rate,
            progress=progress,
        )

    def start(self):
        """Spawn the sweep as a simulated process; returns the Process."""
        return self.file.system.sim.spawn(
            self.run(),
            name=f"rebuild:{self.file.name}:slot{self.slot}",
        )
