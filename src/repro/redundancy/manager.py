"""The redundancy manager: one knob, three schemes (S16).

``BridgeSystem(..., redundancy="none" | "mirror" | "parity")`` attaches a
:class:`RedundancyManager` to the system so every experiment, bench, and
example can run the same workload under any redundancy scheme.  The
manager hands out scheme-appropriate file wrappers with one uniform
surface (``create`` / ``write_all`` / ``read_all`` / ``storage_blocks``,
all simulation generators), receives fail/repair notifications from
:class:`repro.faults.FaultInjector`, and — for the parity scheme —
automatically spawns the online rebuild sweep when a failed slot is
repaired.

Scheme price list (the section 6 trade, made selectable):

============  ================  ===========================  ==========
scheme        storage overhead  write cost per logical block  survives
============  ================  ===========================  ==========
``"none"``    1x                1 block write                nothing
``"mirror"``  2x                2 block writes               1 failure
``"parity"``  p/(p-1)x          1-2 reads + 2 writes (RMW)   1 failure
============  ================  ===========================  ==========
"""

from __future__ import annotations

from typing import List, Optional, Set

# Import the module, not the package: repro.faults.__init__ pulls in the
# injector, which imports harness.builders, which imports this module.
from repro.faults.mirror import MirroredFile
from repro.redundancy.parity import ParityFile
from repro.redundancy.rebuild import OnlineRebuild

SCHEMES = ("none", "mirror", "parity")


class PlainFile:
    """The unprotected baseline, shaped like the redundant wrappers.

    A thin adapter over the naive view so scheme sweeps can treat
    ``none`` uniformly; ``read_all`` returns ``(chunks, None)`` (there
    are no degraded-read statistics to report — a failure is fatal).
    """

    def __init__(self, system, name: str) -> None:
        self.system = system
        self.name = name
        self.client = system.naive_client()
        self._written = 0

    def create(self):
        return (yield from self.client.create(self.name))

    def write_all(self, chunks):
        count = yield from self.client.write_all(self.name, chunks)
        self._written += count
        return count

    def read_all(self):
        chunks = []
        for block in range(self._written):
            chunks.append((yield from self.client.random_read(self.name, block)))
        return chunks, None

    def storage_blocks(self):
        result = yield from self.client.open(self.name)
        return result.total_blocks


class RedundancyManager:
    """Per-system redundancy policy, failure bookkeeping, and rebuilds.

    The fault injector calls :meth:`on_fail` / :meth:`on_repair` (it
    registers itself as a listener automatically when the system carries
    a manager).  With ``auto_rebuild`` (the default) a repair immediately
    spawns an :class:`OnlineRebuild` sweep for every registered parity
    file; set it to ``False`` to drive rebuilds by hand, e.g. to measure
    degraded-mode behavior between repair and reconstruction.
    """

    def __init__(
        self,
        system,
        scheme: str = "none",
        auto_rebuild: bool = True,
        rebuild_rate: Optional[float] = None,
    ) -> None:
        if scheme not in SCHEMES:
            raise ValueError(
                f"unknown redundancy scheme {scheme!r}; pick one of {SCHEMES}"
            )
        self.system = system
        self.scheme = scheme
        self.auto_rebuild = auto_rebuild
        self.rebuild_rate = rebuild_rate
        self.failed_slots: Set[int] = set()
        self.files: List[ParityFile] = []  # registered parity files
        self.rebuilds: List[OnlineRebuild] = []
        self.fail_events = 0
        self.repair_events = 0

    # ------------------------------------------------------------------
    # File factory
    # ------------------------------------------------------------------

    def file(self, name: str):
        """A file wrapper appropriate to this system's scheme."""
        if self.scheme == "mirror":
            return MirroredFile(self.system, name)
        if self.scheme == "parity":
            return ParityFile(self.system, name)
        return PlainFile(self.system, name)

    def register(self, parity_file: ParityFile) -> None:
        """Track a parity file for automatic post-repair rebuilds."""
        if parity_file not in self.files:
            self.files.append(parity_file)

    # ------------------------------------------------------------------
    # Fault-injector listener interface
    # ------------------------------------------------------------------

    def on_fail(self, slot: int) -> None:
        self.failed_slots.add(slot)
        self.fail_events += 1

    def on_repair(self, slot: int) -> None:
        self.failed_slots.discard(slot)
        self.repair_events += 1
        if self.scheme == "parity" and self.auto_rebuild:
            self.start_rebuilds(slot)

    # ------------------------------------------------------------------
    # Rebuild orchestration
    # ------------------------------------------------------------------

    def start_rebuilds(self, slot: int, rate: Optional[float] = None):
        """Spawn a rebuild sweep of ``slot`` for every registered parity
        file; returns the spawned simulation processes."""
        processes = []
        for parity_file in self.files:
            if parity_file.file_id is None or parity_file.logical_blocks == 0:
                continue
            rebuild = OnlineRebuild(
                parity_file, slot,
                rate=rate if rate is not None else self.rebuild_rate,
            )
            self.rebuilds.append(rebuild)
            processes.append(rebuild.start())
        return processes

    def degraded(self) -> bool:
        """True while any slot is failed."""
        return bool(self.failed_slots)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RedundancyManager(scheme={self.scheme!r}, "
            f"failed={sorted(self.failed_slots)}, files={len(self.files)})"
        )
