"""Rotating-parity stripe geometry and the parity-protected file (S16).

Section 6 of the paper concedes that interleaved files are "inherently
intolerant of faults" and that replication "helps, but only at very high
cost" — 2x storage and 2x write traffic.  This module implements the
RAID-5-style middle ground over the interleaved Bridge layout: files are
organized into *stripes* of ``p - 1`` data blocks plus one XOR parity
block, and the parity block rotates across the ``p`` LFS nodes (the
parity block of stripe ``s`` lives on slot ``s mod p``) so no single node
becomes a parity hot spot.  Storage overhead drops from 2x to
``p / (p - 1)`` while any single node failure remains survivable.

Two layers live here:

* :class:`ParityGeometry` — pure arithmetic, the redundancy counterpart
  of :class:`repro.core.addressing.InterleaveMap`: it maps *logical*
  (user-visible) block numbers to ``(stripe, slot)`` placements and back.
* :class:`ParityFile` — the read/write layer.  It creates one Bridge
  file of width ``p`` (so every constituent EFS file carries consistent
  Bridge headers) and then, tool-style, talks to the LFS instances
  directly: every stripe contributes exactly one block — data or parity —
  to every constituent, so constituent ``c`` holds the stripe-``s`` block
  at local block number ``s``.  Writes maintain parity with the classic
  read-modify-write: read the old data and old parity, XOR both deltas
  into the parity block, write data and parity (1 extra read + 1 extra
  write per logical write, versus mirroring's write-everything-twice).

Degraded reads (transparent XOR reconstruction after a device failure)
live in :mod:`repro.redundancy.degraded`; the online reconstruction
process that repopulates a repaired node lives in
:mod:`repro.redundancy.rebuild`.

Single-failure semantics: like RAID-5, the scheme guarantees correctness
with at most one failed (or repaired-but-not-yet-rebuilt) slot at a time.
A second concurrent failure loses data, which
:func:`files_lost_fraction_parity` prices analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import DATA_BYTES_PER_BLOCK
from repro.errors import (
    DeviceFailedError,
    EFSBlockNotFoundError,
    EFSError,
)
from repro.machine import gather
from repro.sim import Lock


# ---------------------------------------------------------------------------
# XOR arithmetic
# ---------------------------------------------------------------------------


ZERO_BLOCK = b""


def xor_blocks(*blocks: Optional[bytes]) -> bytes:
    """XOR byte strings of (possibly) unequal length, padding with zeros.

    ``None`` entries count as all-zero blocks, so absent constituents
    (blocks past a constituent's end, or never-written holes) drop out of
    the parity sum naturally.
    """
    present = [b for b in blocks if b]
    if not present:
        return ZERO_BLOCK
    length = max(len(b) for b in present)
    out = bytearray(length)
    for block in present:
        for i, byte in enumerate(block):
            out[i] ^= byte
    return bytes(out)


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParityGeometry:
    """Rotating-parity placement arithmetic for one parity group.

    ``width`` is p, the number of LFS slots in the group.  Logical block
    ``n`` lives in stripe ``n // (p - 1)`` at in-stripe index
    ``n % (p - 1)``; stripe ``s`` keeps its parity block on slot
    ``s mod p`` and its ``p - 1`` data blocks on the remaining slots in
    increasing slot order.  Every stripe therefore touches every slot
    exactly once, which is what makes the per-constituent layout strictly
    sequential (stripe ``s`` is local block ``s`` on *every* slot).
    """

    width: int

    def __post_init__(self) -> None:
        if self.width < 3:
            raise ValueError(
                f"rotating parity needs at least 3 LFS nodes, got "
                f"{self.width} (with 2, parity degenerates to mirroring: "
                "use repro.faults.mirror)"
            )

    @property
    def data_per_stripe(self) -> int:
        """Data blocks per stripe: p - 1."""
        return self.width - 1

    # ------------------------------------------------------------------
    # Logical -> physical
    # ------------------------------------------------------------------

    def stripe_of(self, logical: int) -> int:
        self._check_logical(logical)
        return logical // self.data_per_stripe

    def index_in_stripe(self, logical: int) -> int:
        self._check_logical(logical)
        return logical % self.data_per_stripe

    def parity_slot(self, stripe: int) -> int:
        """The slot carrying stripe ``s``'s parity block: s mod p."""
        if stripe < 0:
            raise ValueError(f"negative stripe {stripe}")
        return stripe % self.width

    def data_slot(self, stripe: int, index: int) -> int:
        """The slot of the ``index``-th data block of ``stripe``.

        Data slots are the non-parity slots in increasing order, so the
        index skips over the rotating parity slot.
        """
        if not 0 <= index < self.data_per_stripe:
            raise ValueError(
                f"data index {index} outside [0, {self.data_per_stripe})"
            )
        parity = self.parity_slot(stripe)
        return index if index < parity else index + 1

    def locate(self, logical: int) -> Tuple[int, int]:
        """``(stripe, slot)`` for a logical block number."""
        stripe = self.stripe_of(logical)
        return stripe, self.data_slot(stripe, self.index_in_stripe(logical))

    # ------------------------------------------------------------------
    # Physical -> logical
    # ------------------------------------------------------------------

    def logical_of(self, stripe: int, slot: int) -> Optional[int]:
        """The logical block stored at ``(stripe, slot)``; ``None`` if the
        slot carries the stripe's parity block."""
        self._check_slot(slot)
        parity = self.parity_slot(stripe)
        if slot == parity:
            return None
        index = slot if slot < parity else slot - 1
        return stripe * self.data_per_stripe + index

    def data_slots(self, stripe: int) -> List[int]:
        """All data slots of a stripe, in in-stripe index order."""
        parity = self.parity_slot(stripe)
        return [s for s in range(self.width) if s != parity]

    # ------------------------------------------------------------------
    # Size arithmetic
    # ------------------------------------------------------------------

    def stripes_for(self, logical_blocks: int) -> int:
        """Stripes needed to hold ``logical_blocks`` data blocks."""
        if logical_blocks < 0:
            raise ValueError(f"negative block count {logical_blocks}")
        return -(-logical_blocks // self.data_per_stripe)

    def physical_blocks(self, logical_blocks: int) -> int:
        """Total blocks consumed (data + parity) across all slots."""
        return self.stripes_for(logical_blocks) * self.width

    def storage_factor(self) -> float:
        """The p/(p-1) storage overhead of full stripes (vs 2.0 for
        mirroring, the paper's priced remedy)."""
        return self.width / self.data_per_stripe

    # ------------------------------------------------------------------

    def _check_logical(self, logical: int) -> None:
        if logical < 0:
            raise ValueError(f"negative logical block {logical}")

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.width:
            raise ValueError(f"slot {slot} outside [0, {self.width})")


# ---------------------------------------------------------------------------
# Survival analysis (companions to repro.faults.injector's fractions)
# ---------------------------------------------------------------------------


def files_lost_fraction_parity(width: int, failed_disks: int = 1) -> float:
    """Fraction of parity-protected files lost: zero for a single failure,
    everything for two or more (every stripe spans every node)."""
    if failed_disks <= 1:
        return 0.0
    return 1.0 if width > 0 else 0.0


def parity_storage_factor(width: int) -> float:
    """p/(p-1): the storage price of rotating parity at width p."""
    return ParityGeometry(width).storage_factor()


# ---------------------------------------------------------------------------
# The parity-protected file
# ---------------------------------------------------------------------------


class ParityFile:
    """RAID-5-style access to one parity-protected interleaved file.

    The file is created through the Bridge Server (so the directory entry
    and per-constituent Bridge headers stay consistent and
    ``efs.fsck``-checkable) but block traffic goes to the LFS instances
    directly, tool-style: stripe ``s`` is local block ``s`` on every
    constituent.  All generator methods must be driven inside a simulated
    process (``yield from``).

    A per-file :class:`~repro.sim.Lock` serializes stripe updates so that
    foreground writes, degraded reconstructions, and the online rebuild
    sweep never interleave mid-stripe (the classic RAID-5 write hole).
    """

    def __init__(self, system, name: str, node=None) -> None:
        self.system = system
        self.name = name
        self.geometry = ParityGeometry(system.width)
        self.node = node or system.client_node
        self.file_id: Optional[int] = None
        self._logical = 0
        self._hints: Dict[int, Optional[int]] = {}
        self._lock = Lock(system.sim, name=f"parity:{name}")
        self.degraded_writes = 0  # data writes deferred to rebuild
        self.parity_rmw_reads = 0  # old-parity / old-data reads
        from repro.redundancy.degraded import DegradedReadStats, DegradedReader

        self.read_stats = DegradedReadStats()
        self._reader = DegradedReader(self)
        manager = getattr(system, "redundancy", None)
        if manager is not None:
            manager.register(self)

    # ------------------------------------------------------------------

    @property
    def logical_blocks(self) -> int:
        """User-visible size in blocks (the data blocks, not parity)."""
        return self._logical

    @property
    def stripes(self) -> int:
        return self.geometry.stripes_for(self._logical)

    def slot_failed(self, slot: int) -> bool:
        """Ground truth from the device (the injector flips this flag)."""
        return self.system.disks[slot].failed

    def _port(self, slot: int):
        return self.system.efs_servers[slot].port

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def create(self):
        """Create the underlying width-p Bridge file (start 0)."""
        client = self.system.naive_client(self.node)
        self.file_id = yield from client.create(
            self.name, width=self.geometry.width, start=0
        )
        return self.file_id

    def _require_created(self) -> None:
        if self.file_id is None:
            raise RuntimeError(f"parity file {self.name!r}: call create() first")

    # ------------------------------------------------------------------
    # Low-level constituent access
    # ------------------------------------------------------------------

    def read_local(self, slot: int, stripe: int):
        """Read the stripe-``stripe`` block of constituent ``slot``.

        Raises :class:`DeviceFailedError` on a failed device and
        :class:`EFSBlockNotFoundError` past the constituent's end.
        """
        self._require_created()
        results = yield from gather(
            self.node,
            [(self._port(slot), "read",
              {"file_number": self.file_id, "block_number": stripe,
               "hint": self._hints.get(slot)}, 0)],
        )
        result = results[0]
        self._hints[slot] = result.next_addr
        return result.data

    def write_local(self, slot: int, stripe: int, data: bytes):
        """Write (in place or append) the stripe block of one constituent."""
        self._require_created()
        results = yield from gather(
            self.node,
            [(self._port(slot), "write",
              {"file_number": self.file_id, "block_number": stripe,
               "data": data, "hint": self._hints.get(slot)},
              DATA_BYTES_PER_BLOCK)],
        )
        self._hints[slot] = results[0].addr
        return results[0]

    # ------------------------------------------------------------------
    # Writes (parity read-modify-write)
    # ------------------------------------------------------------------

    def write_block(self, logical: int, data: bytes):
        """Write one logical block, maintaining the stripe's parity.

        Healthy path: read old data (omitted for appends), read old
        parity, write new data, write ``parity ^ old ^ new``.  Degraded
        path (the data slot's device is down or the block is a write hole
        awaiting rebuild): skip the data write but fold the new value
        into the parity block so the online rebuild — or any degraded
        read — reconstructs the *new* contents.  Writing while both the
        data and parity slots are down is a double failure and raises
        :class:`DeviceFailedError`.
        """
        if len(data) > DATA_BYTES_PER_BLOCK:
            raise ValueError(
                f"write of {len(data)} bytes exceeds data area "
                f"{DATA_BYTES_PER_BLOCK}"
            )
        if not 0 <= logical <= self._logical:
            raise ValueError(
                f"{self.name!r}: logical block {logical} outside writable "
                f"range [0, {self._logical}]"
            )
        stripe, slot = self.geometry.locate(logical)
        parity_slot = self.geometry.parity_slot(stripe)
        yield self._lock.acquire()
        try:
            old: Optional[bytes] = None
            wrote_data = False
            if not self.slot_failed(slot):
                try:
                    if logical < self._logical:
                        old = yield from self.read_local(slot, stripe)
                        self.parity_rmw_reads += 1
                    yield from self.write_local(slot, stripe, data)
                    wrote_data = True
                except (DeviceFailedError, EFSBlockNotFoundError):
                    old = None  # fall through to the degraded path
            if wrote_data:
                yield from self._update_parity_delta(
                    stripe, parity_slot, old, data
                )
            else:
                # Degraded write: the device is down (or the slot is a
                # repaired-but-unrebuilt write hole).  Recompute parity
                # from the surviving data blocks plus the new value.
                self.degraded_writes += 1
                if self.slot_failed(parity_slot):
                    raise DeviceFailedError(
                        f"{self.name!r} stripe {stripe}: data slot {slot} "
                        f"and parity slot {parity_slot} both unavailable "
                        "(double failure)"
                    )
                yield from self._recompute_parity(stripe, slot, data)
            self._logical = max(self._logical, logical + 1)
        finally:
            self._lock.release()
        return logical

    def _update_parity_delta(self, stripe: int, parity_slot: int,
                             old: Optional[bytes], new: bytes):
        """Classic read-modify-write: parity ^= old ^ new."""
        if self.slot_failed(parity_slot):
            return  # parity slot down: the rebuild sweep will recompute it
        try:
            current = yield from self.read_local(parity_slot, stripe)
            self.parity_rmw_reads += 1
        except EFSBlockNotFoundError:
            current = None  # first block of a fresh stripe
        except DeviceFailedError:
            return
        parity = xor_blocks(current, old, new)
        yield from self.write_local(parity_slot, stripe, parity)

    def _recompute_parity(self, stripe: int, skip_slot: int, new: bytes):
        """Full-stripe parity rebuild: XOR of every surviving data block
        plus the value being written to the unavailable ``skip_slot``."""
        parts: List[Optional[bytes]] = [new]
        for peer in self.geometry.data_slots(stripe):
            if peer == skip_slot:
                continue
            try:
                parts.append((yield from self.read_local(peer, stripe)))
                self.parity_rmw_reads += 1
            except EFSBlockNotFoundError:
                parts.append(None)  # unwritten tail of a partial stripe
        parity_slot = self.geometry.parity_slot(stripe)
        yield from self.write_local(parity_slot, stripe, xor_blocks(*parts))

    def write_all(self, chunks):
        """Append every chunk in logical order; returns the count."""
        count = 0
        for chunk in chunks:
            yield from self.write_block(self._logical, chunk)
            count += 1
        return count

    def write_all_batched(self, chunks):
        """Append chunks as *full stripes* through the batched EFS path.

        The bulk-load fast path: because whole stripes are written at
        once, parity is computed client-side as the XOR of each stripe's
        new data — no read-modify-write reads at all — and every
        constituent receives its entire column as **one** batched
        ``write_blocks`` request (p EFS requests total, versus roughly
        ``2 n (1 + 1/(p-1))`` single-block requests via
        :meth:`write_all`).  Requires a healthy array and a file ending
        on a stripe boundary (otherwise the tail stripe would need an
        RMW to fold into its existing parity; use :meth:`write_all` for
        that).  Returns the number of chunks written.
        """
        self._require_created()
        chunks = list(chunks)
        for chunk in chunks:
            if len(chunk) > DATA_BYTES_PER_BLOCK:
                raise ValueError(
                    f"write of {len(chunk)} bytes exceeds data area "
                    f"{DATA_BYTES_PER_BLOCK}"
                )
        if not chunks:
            return 0
        dps = self.geometry.data_per_stripe
        if self._logical % dps != 0:
            raise ValueError(
                f"{self.name!r}: batched append must start on a stripe "
                f"boundary (size {self._logical} is mid-stripe; "
                "use write_all)"
            )
        first_stripe = self._logical // dps
        yield self._lock.acquire()
        try:
            per_slot: Dict[int, List[Tuple[int, bytes]]] = {}
            for offset in range(0, len(chunks), dps):
                stripe = first_stripe + offset // dps
                stripe_chunks = chunks[offset:offset + dps]
                for index, data in enumerate(stripe_chunks):
                    slot = self.geometry.data_slot(stripe, index)
                    per_slot.setdefault(slot, []).append((stripe, data))
                parity_slot = self.geometry.parity_slot(stripe)
                per_slot.setdefault(parity_slot, []).append(
                    (stripe, xor_blocks(*stripe_chunks))
                )
            calls = [
                (self._port(slot), "write_blocks",
                 {"file_number": self.file_id, "writes": writes,
                  "hint": self._hints.get(slot)},
                 DATA_BYTES_PER_BLOCK * len(writes))
                for slot, writes in sorted(per_slot.items())
            ]
            results = yield from gather(self.node, calls)
            for (slot, _writes), batch in zip(sorted(per_slot.items()), results):
                self._hints[slot] = batch.results[-1].addr
            self._logical += len(chunks)
        finally:
            self._lock.release()
        return len(chunks)

    # ------------------------------------------------------------------
    # Reads (delegated to the degraded-mode reader)
    # ------------------------------------------------------------------

    def read_block(self, logical: int):
        """Read one logical block, reconstructing transparently if its
        home device is down (see :mod:`repro.redundancy.degraded`)."""
        return (yield from self._reader.read_block(logical))

    def read_all(self):
        """Read the whole file; returns ``(chunks, DegradedReadStats)``."""
        chunks = []
        for logical in range(self._logical):
            chunks.append((yield from self.read_block(logical)))
        return chunks, self.read_stats

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def storage_blocks(self):
        """Total blocks on disk across all constituents (data + parity).

        Requires all devices healthy (it asks every LFS for its size)."""
        self._require_created()
        infos = yield from gather(
            self.node,
            [(self._port(slot), "info", {"file_number": self.file_id}, 0)
             for slot in range(self.geometry.width)],
        )
        return sum(info.size_blocks for info in infos)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParityFile({self.name!r}, p={self.geometry.width}, "
            f"blocks={self._logical})"
        )
