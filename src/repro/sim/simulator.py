"""The discrete-event simulation core.

:class:`Simulator` owns the virtual clock and the event heap.  Simulated
activities are generator-based :class:`Process` objects (see
:mod:`repro.sim.process`); the simulator advances time by popping the
earliest scheduled callback and invoking it.

The kernel is deliberately small and allocation-light: one heap entry per
scheduled resume, ``__slots__`` on all hot classes, and no per-event object
beyond the heap tuple itself.  On a stock CPython it sustains several
hundred thousand events per second, enough to run the paper's 10 MB
copy/sort experiments in seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import DeadlockError
from repro.sim.process import Process
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer


class Simulator:
    """A discrete-event simulator with a floating-point clock (seconds).

    Parameters
    ----------
    seed:
        Seed for the simulator's deterministic named random streams
        (see :class:`repro.sim.rand.RandomStreams`).
    trace:
        Optional :class:`repro.sim.trace.Tracer`; when ``None`` tracing is
        disabled and costs nothing.
    obs:
        Optional :class:`repro.obs.Observability` (S19).  When ``None``
        (the default) observability is disabled; instrumented layers
        guard every touch point with ``if sim.obs is not None``, and an
        attached instance records synchronously — the simulation event
        sequence is identical either way.
    """

    def __init__(self, seed: int = 0, trace: Optional[Tracer] = None,
                 obs=None) -> None:
        self.now: float = 0.0
        self.trace = trace
        if trace is not None:
            trace.attach(self)
        self.obs = obs
        if obs is not None:
            obs.attach(self)
        self.random = RandomStreams(seed)
        self._heap: List[Tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._processes: List[Process] = []
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` to run ``delay`` seconds from now."""
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    def call_at(self, time: float, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._schedule(time - self.now, fn, arg)

    def call_later(self, delay: float, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._schedule(delay, fn, arg)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, generator, name: str = "process", daemon: bool = False) -> Process:
        """Create a process from a generator and schedule its first step.

        Daemon processes (servers that loop forever on a mailbox) are
        excluded from deadlock detection and need not finish for
        :meth:`run` to succeed.
        """
        process = Process(self, generator, name=name, daemon=daemon)
        if self.obs is not None:
            # spawn() runs synchronously inside the spawner's step, so the
            # current span is the causal parent of the new process's work
            # (covers Detached handlers and prefetch workers).
            process.obs_ctx = self.obs.current
        self._processes.append(process)
        self._schedule(0.0, process._resume, None)
        if self.trace is not None:
            self.trace.record("spawn", process=name, daemon=daemon)
        return process

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        check_deadlock: bool = False,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation.

        Runs until the event heap drains, or until the clock passes
        ``until`` (events at exactly ``until`` still execute).  Returns the
        final clock value.

        With ``check_deadlock=True`` a :class:`~repro.errors.DeadlockError`
        is raised if the heap drains while non-daemon processes remain
        blocked.  ``max_events`` guards against runaway simulations.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        if until is None and max_events is None:
            # Run-to-drain fast path: no horizon or budget checks inside
            # the loop.  An open-loop traffic run executes ~10^5 events
            # per simulated second, so the per-event constant matters.
            while heap:
                time, _seq, fn, arg = pop(heap)
                self.now = time
                fn(arg)
                executed += 1
        else:
            while heap:
                time, _seq, fn, arg = heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                pop(heap)
                self.now = time
                fn(arg)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        if until is not None and not heap and self.now < until:
            # The heap drained before the horizon (or was empty to begin
            # with): advance the clock to ``until`` just as the non-empty
            # path does when the next event lies beyond it.  A
            # ``max_events`` break leaves work pending, so it keeps the
            # clock at the last executed event.
            self.now = until
        self._events_executed += executed
        if check_deadlock and not heap:
            blocked = [p for p in self._processes if not p.done and not p.daemon]
            if blocked:
                raise DeadlockError(blocked)
        return self.now

    def run_process(self, generator, name: str = "main", **run_kwargs) -> Any:
        """Spawn ``generator``, run until it completes, and return its result.

        Convenience wrapper used heavily by tests and the harness.  Raises
        :class:`~repro.errors.SimulationError` if the simulation drains
        before the process finishes.
        """
        process = self.spawn(generator, name=name)
        self.run(**run_kwargs)
        if not process.done:
            raise DeadlockError([process])
        return process.result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (monotone counter)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently waiting in the heap."""
        return len(self._heap)

    def live_processes(self) -> List[Process]:
        """All spawned processes that have not yet terminated."""
        return [p for p in self._processes if not p.done]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now:.6f}, pending={len(self._heap)}, "
            f"processes={len(self._processes)})"
        )
