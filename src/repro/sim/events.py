"""Waitable primitives for the discrete-event kernel.

A simulated process is a Python generator.  Whatever it ``yield``\\ s must be
a *waitable*: an object with a ``_wait(process)`` method that arranges for
the process to be resumed later.  The kernel resumes the process by calling
``process._step(value)``; ``value`` becomes the result of the ``yield``
expression inside the generator.

The waitables defined here are deliberately small (``__slots__`` everywhere)
because a large simulation allocates millions of them.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional


class Timeout:
    """Wait for a fixed amount of simulated time.

    ``yield Timeout(0.015)`` suspends the current process for 15 simulated
    milliseconds.  A zero delay is allowed and yields control for one
    scheduling round (useful for fairness).
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay!r}")
        self.delay = delay
        self.value = value

    def _wait(self, process) -> None:
        process.sim._schedule(self.delay, process._resume, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class Signal:
    """A one-shot event that any number of processes can wait on.

    ``fire(value)`` wakes every waiter (and all future waiters immediately).
    This is the building block for process join and barrier-style
    coordination in the tools.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List[Any] = []

    def fire(self, value: Any = None) -> None:
        """Trigger the signal, waking all current waiters with ``value``."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule(0.0, process._resume, value)

    def _wait(self, process) -> None:
        if self.fired:
            process.sim._schedule(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else "pending"
        return f"Signal({state})"


class AllOf:
    """Wait until every waitable in a collection has completed.

    The yielded value is a list with one entry per child, in order.  Only
    :class:`Signal`-like children (things exposing ``fired``/``value`` and
    accepting an internal watcher) are supported; in practice this is used
    to join many processes: ``yield AllOf([p.completion for p in workers])``.
    """

    __slots__ = ("signals", "_remaining", "_process")

    def __init__(self, signals: Iterable[Signal]) -> None:
        self.signals = list(signals)
        self._remaining = 0
        self._process = None

    def _wait(self, process) -> None:
        self._process = process
        pending = [s for s in self.signals if not s.fired]
        self._remaining = len(pending)
        if not self._remaining:
            process.sim._schedule(0.0, process._resume, self._values())
            return
        for signal in pending:
            signal._waiters.append(_AllOfWatcher(self))

    def _child_done(self) -> None:
        self._remaining -= 1
        if not self._remaining:
            process = self._process
            process.sim._schedule(0.0, process._resume, self._values())

    def _values(self) -> List[Any]:
        return [s.value for s in self.signals]


class _AllOfWatcher:
    """Adapter so an :class:`AllOf` can sit in a signal's waiter list."""

    __slots__ = ("allof",)

    def __init__(self, allof: AllOf) -> None:
        self.allof = allof

    def _step(self, _value: Any) -> None:
        self.allof._child_done()

    # Watchers sit in signal waiter lists next to real processes, which
    # resume through their cached ``_resume`` binding.
    _resume = _step

    @property
    def sim(self):
        return self.allof._process.sim


class AnyOf:
    """Wait until at least one of the given signals has fired.

    The yielded value is ``(index, value)`` of the first signal to fire
    (ties broken by list order).
    """

    __slots__ = ("signals", "_process", "_done", "_watchers")

    def __init__(self, signals: Iterable[Signal]) -> None:
        self.signals = list(signals)
        self._process = None
        self._done = False
        self._watchers: List[Any] = []

    def _wait(self, process) -> None:
        self._process = process
        for index, signal in enumerate(self.signals):
            if signal.fired:
                process.sim._schedule(0.0, process._resume, (index, signal.value))
                return
        for index, signal in enumerate(self.signals):
            watcher = _AnyOfWatcher(self, index)
            self._watchers.append((signal, watcher))
            signal._waiters.append(watcher)

    def _child_done(self, index: int, value: Any) -> None:
        if self._done:
            return
        self._done = True
        # Detach from the signals that did not win, so long-lived signals
        # don't accumulate dead watchers (the winner's waiter list was
        # already swapped out by Signal.fire).
        watchers, self._watchers = self._watchers, []
        for signal, watcher in watchers:
            try:
                signal._waiters.remove(watcher)
            except ValueError:
                pass
        self._process.sim._schedule(0.0, self._process._resume, (index, value))


class _AnyOfWatcher:
    """Adapter so an :class:`AnyOf` can sit in a signal's waiter list."""

    __slots__ = ("anyof", "index")

    def __init__(self, anyof: AnyOf, index: int) -> None:
        self.anyof = anyof
        self.index = index

    def _step(self, value: Any) -> None:
        self.anyof._child_done(self.index, value)

    _resume = _step

    @property
    def sim(self):
        return self.anyof._process.sim
