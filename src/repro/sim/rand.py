"""Deterministic named random streams.

Every stochastic component of the simulation (disk latency jitter, workload
key generation, fault injection) draws from its own named stream so that
adding randomness to one component never perturbs another — a standard
requirement for reproducible discrete-event experiments.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """A family of independent :class:`random.Random` streams keyed by name.

    Streams are derived deterministically from ``(seed, name)`` using a
    CRC of the name, so the same seed always yields the same sequence per
    stream regardless of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        stream = self._streams.get(name)
        if stream is None:
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2**63)
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def reset(self) -> None:
        """Forget all streams; next use re-derives them from the seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
