"""Statistics collectors for simulation experiments.

These are the measurement instruments the harness attaches to disks,
servers, and tools: plain counters, time-weighted averages (queue lengths,
utilization), and streaming summaries (operation latencies).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Summary:
    """Streaming summary of a series: count / mean / min / max / stddev.

    Uses Welford's algorithm so it is single-pass and numerically stable.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "total")

    def __init__(self, name: str = "summary") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if not self.count:
            return f"Summary({self.name!r}, empty)"
        return (
            f"Summary({self.name!r}, n={self.count}, mean={self.mean:.6g}, "
            f"min={self.min:.6g}, max={self.max:.6g})"
        )


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Feed it level changes with :meth:`set`; query :meth:`average` at the
    end of the run.  Used for queue lengths and outstanding-request counts.
    """

    __slots__ = ("sim", "name", "_level", "_last_time", "_area")

    def __init__(self, sim, name: str = "level", initial: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self._level = initial
        self._last_time = sim.now
        self._area = 0.0

    def set(self, level: float) -> None:
        now = self.sim.now
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level

    def adjust(self, delta: float) -> None:
        self.set(self._level + delta)

    @property
    def current(self) -> float:
        return self._level

    def average(self, until: Optional[float] = None) -> float:
        end = self.sim.now if until is None else until
        area = self._area + self._level * (end - self._last_time)
        return area / end if end > 0 else 0.0


class StatsRegistry:
    """A named bag of collectors, for attaching to system components."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.summaries: Dict[str, Summary] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = Counter(name)
            self.counters[name] = counter
        return counter

    def summary(self, name: str) -> Summary:
        summary = self.summaries.get(name)
        if summary is None:
            summary = Summary(name)
            self.summaries[name] = summary
        return summary

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counter values and summary means, for reports."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, summary in self.summaries.items():
            out[f"{name}.mean"] = summary.mean
            out[f"{name}.count"] = summary.count
        return out
