"""Mailboxes: the message-passing primitive of the simulated machine.

The Butterfly implementation of Bridge passes messages through atomic
queues in shared memory; on an Ethernet it would use datagrams.  Either
way the abstraction is the same: a :class:`Mailbox` is an unbounded FIFO
of messages that processes can block on.

Delivery latency is *not* a mailbox concern — the network model
(:mod:`repro.machine.network`) computes a latency and calls
:meth:`Mailbox.deliver` at the right simulated time.  ``deliver`` itself
is instantaneous.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional


class Mailbox:
    """An unbounded FIFO message queue with blocking receive."""

    __slots__ = ("sim", "name", "_queue", "_waiters", "messages_delivered")

    def __init__(self, sim, name: str = "mailbox") -> None:
        self.sim = sim
        self.name = name
        self._queue: Deque[Any] = deque()
        self._waiters: Deque[Any] = deque()
        self.messages_delivered = 0

    # ------------------------------------------------------------------

    def deliver(self, message: Any) -> None:
        """Make ``message`` available now (called by the network model).

        If a process is blocked in :meth:`recv`, it is resumed immediately;
        otherwise the message queues until someone asks for it.
        """
        self.messages_delivered += 1
        if self._waiters:
            process = self._waiters.popleft()
            process.sim._schedule(0.0, process._resume, message)
        else:
            self._queue.append(message)

    def recv(self) -> "_Recv":
        """Waitable receive: ``message = yield mailbox.recv()``."""
        return _Recv(self)

    def poll(self) -> Optional[Any]:
        """Non-blocking receive: pop the next queued message, or ``None``.

        Used by servers that front their mailbox with an admission queue
        (S21): drain everything that has already arrived, hand it to the
        scheduler, then fall back to a blocking :meth:`recv` only when
        nothing is pending."""
        queue = self._queue
        return queue.popleft() if queue else None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of queued (undelivered-to-receiver) messages."""
        return len(self._queue)

    @property
    def has_waiters(self) -> bool:
        """True if at least one process is blocked waiting to receive."""
        return bool(self._waiters)

    def peek(self) -> Optional[Any]:
        """The next queued message without consuming it, or ``None``."""
        return self._queue[0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Mailbox({self.name!r}, queued={len(self._queue)})"


class _Recv:
    """Waitable produced by :meth:`Mailbox.recv`."""

    __slots__ = ("mailbox",)

    def __init__(self, mailbox: Mailbox) -> None:
        self.mailbox = mailbox

    def _wait(self, process) -> None:
        queue = self.mailbox._queue
        if queue:
            process.sim._schedule(0.0, process._resume, queue.popleft())
        else:
            self.mailbox._waiters.append(process)
