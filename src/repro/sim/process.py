"""Generator-based simulated processes.

A process body is a plain Python generator function.  Each ``yield`` hands
the kernel a *waitable* (:class:`~repro.sim.events.Timeout`, a mailbox
receive, a resource acquire, another process's completion signal, ...);
the process resumes when the waitable completes, with the waitable's value
as the result of the ``yield`` expression.

Processes that ``return value`` deliver that value to joiners.  A process
that raises an unhandled exception fails the whole simulation immediately
(fail-fast), wrapped in :class:`~repro.errors.ProcessError` — silent loss
of a simulated actor is never acceptable in an experiment.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import InvalidYieldError, ProcessError
from repro.sim.events import Signal


class Process:
    """A running simulated process.  Created via :meth:`Simulator.spawn`."""

    __slots__ = (
        "sim", "gen", "name", "daemon", "done", "result", "completion",
        "obs_ctx", "_resume",
    )

    def __init__(self, sim, gen, name: str = "process", daemon: bool = False) -> None:
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.gen = gen
        self.name = name
        self.daemon = daemon
        self.done = False
        self.result: Any = None
        self.completion = Signal(sim)
        # Observability span context (S19): the span this process's work
        # belongs to.  Restored into sim.obs.current at every step so the
        # "current span" survives interleaved process execution.
        self.obs_ctx = None
        # Cached bound method so waitables can schedule a resume without
        # allocating a fresh bound-method object per event (S21 hot path:
        # an open-loop traffic run schedules hundreds of thousands).
        self._resume = self._step

    # ------------------------------------------------------------------

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield.  Called by the kernel only."""
        obs = self.sim.obs
        if obs is not None:
            obs.current = self.obs_ctx
            obs.current_process = self
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except ProcessError:
            raise
        except Exception as exc:
            raise ProcessError(self.name, str(exc)) from exc
        try:
            wait = target._wait
        except AttributeError:
            raise InvalidYieldError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            ) from None
        wait(self)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        if self.sim.trace is not None:
            self.sim.trace.record("exit", process=self.name)
        self.completion.fire(result)

    # ------------------------------------------------------------------

    def join(self) -> Signal:
        """Waitable that completes (with the process result) on termination.

        Usage inside another process: ``result = yield worker.join()``.
        """
        return self.completion

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


def join_all(processes) -> "Signal":
    """Waitable for the completion of every process in ``processes``.

    Yields a list of their results, in order.  Implemented with
    :class:`~repro.sim.events.AllOf` over the completion signals.
    """
    from repro.sim.events import AllOf

    return AllOf([p.completion for p in processes])
