"""Discrete-event simulation kernel.

This package replaces the BBN Butterfly / Chrysalis runtime the paper ran
on: generator-based processes, simulated time, mailboxes for message
passing, and counted resources for device contention.

Public surface::

    sim = Simulator(seed=42)
    box = Mailbox(sim, "requests")

    def server():
        while True:
            msg = yield box.recv()
            yield Timeout(0.015)          # 15 ms of simulated work
            msg["reply_to"].deliver("ok")

    sim.spawn(server(), name="server", daemon=True)
    sim.run()
"""

from repro.sim.channel import Mailbox
from repro.sim.events import AllOf, AnyOf, Signal, Timeout
from repro.sim.process import Process, join_all
from repro.sim.rand import RandomStreams
from repro.sim.resources import Lock, Resource
from repro.sim.simulator import Simulator
from repro.sim.stats import Counter, StatsRegistry, Summary, TimeWeighted
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Lock",
    "Mailbox",
    "Process",
    "RandomStreams",
    "Resource",
    "Signal",
    "Simulator",
    "StatsRegistry",
    "Summary",
    "TimeWeighted",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "join_all",
]
