"""Lightweight event tracing for debugging and instrumentation.

A :class:`Tracer` records ``(time, kind, fields)`` tuples.  Tracing is
opt-in: the simulator carries ``trace=None`` by default and every hot path
guards with ``if sim.trace is not None`` so disabled tracing is free.

Traces are bounded by ``capacity`` (a ring buffer) so a long simulation
cannot exhaust memory; set ``capacity=None`` for unbounded capture in
short tests.

Accounting semantics: ``counts`` tallies every ``record()`` call by kind
— including kind-filtered records and records the ring buffer has since
evicted — so ``counts`` totals can legitimately exceed
``len(records())``.  ``dropped`` counts exactly the records that were
appended and later evicted by the ring; the invariant is::

    sum(counts.values()) == len(tracer) + tracer.dropped + filtered

where ``filtered`` is the number of calls rejected by the ``kinds``
filter (never appended, hence never "dropped").
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, Iterable, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    """A single trace entry."""

    time: float
    kind: str
    fields: Dict[str, Any]


class Tracer:
    """Collects simulation trace records, optionally filtered by kind."""

    def __init__(
        self,
        capacity: Optional[int] = 100_000,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._capacity = capacity
        self._kinds = set(kinds) if kinds is not None else None
        self.counts: Counter = Counter()
        #: Records evicted by the ring buffer (appended, then displaced).
        self.dropped: int = 0
        self._sim = None

    def attach(self, sim) -> "Tracer":
        """Bind to a simulator so records are stamped with its clock."""
        self._sim = sim
        return self

    def record(self, kind: str, **fields: Any) -> None:
        """Record one event; kind-filtered records still count in `counts`."""
        self.counts[kind] += 1
        if self._kinds is not None and kind not in self._kinds:
            return
        time = self._sim.now if self._sim is not None else 0.0
        if self._capacity is not None and len(self._records) == self._capacity:
            self.dropped += 1
        self._records.append(TraceRecord(time, kind, fields))

    # ------------------------------------------------------------------

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """All captured records, optionally restricted to one kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def clear(self) -> None:
        """Drop captured records (counters are kept)."""
        self._records.clear()

    def format(self, limit: Optional[int] = 50) -> str:
        """Human-readable dump of the most recent ``limit`` records."""
        records = list(self._records)
        if limit is not None:
            records = records[-limit:]
        lines = []
        for rec in records:
            fields = " ".join(f"{k}={v!r}" for k, v in rec.fields.items())
            lines.append(f"{rec.time * 1e3:12.3f}ms  {rec.kind:<12} {fields}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._records)
