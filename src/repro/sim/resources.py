"""Counted resources and locks for simulated contention.

Disk arms, server CPUs, and bounded buffer pools are all modeled as
:class:`Resource` instances: a fixed number of slots with a FIFO queue of
waiting processes.  Utilization is tracked so experiments can report how
busy each device was — the paper's scaling argument is exactly "all the
disks are busy all the time".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class Resource:
    """A counted resource with FIFO granting.

    Usage::

        yield disk_arm.acquire()
        try:
            yield Timeout(latency)
        finally:
            disk_arm.release()
    """

    __slots__ = (
        "sim",
        "name",
        "capacity",
        "in_use",
        "_waiters",
        "total_acquires",
        "total_wait_time",
        "_busy_since",
        "busy_time",
    )

    def __init__(self, sim, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque = deque()
        self.total_acquires = 0
        self.total_wait_time = 0.0
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0

    # ------------------------------------------------------------------

    def acquire(self) -> "_Acquire":
        """Waitable that completes when a slot is granted to the caller."""
        return _Acquire(self)

    def release(self) -> None:
        """Return a slot; the longest-waiting process (if any) gets it."""
        if self.in_use <= 0:
            raise RuntimeError(f"release of non-acquired resource {self.name!r}")
        if self._waiters:
            process, enqueued_at = self._waiters.popleft()
            self.total_wait_time += self.sim.now - enqueued_at
            self.total_acquires += 1
            if self.sim.obs is not None:
                self.sim.obs.timeline.record_queue_depth(
                    self.name, self.sim.now, len(self._waiters)
                )
            process.sim._schedule(0.0, process._resume, None)
        else:
            self.in_use -= 1
            if self.in_use == 0 and self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None

    # ------------------------------------------------------------------

    def _grant_now(self, process) -> None:
        if self.in_use == 0:
            self._busy_since = self.sim.now
        self.in_use += 1
        self.total_acquires += 1
        process.sim._schedule(0.0, process._resume, None)

    @property
    def queue_length(self) -> int:
        """Number of processes currently waiting for a slot."""
        return len(self._waiters)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time at least one slot was held, over ``elapsed``.

        ``elapsed`` defaults to the current simulation clock.
        """
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        total = self.sim.now if elapsed is None else elapsed
        return busy / total if total > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} held, "
            f"{len(self._waiters)} waiting)"
        )


class _Acquire:
    """Waitable produced by :meth:`Resource.acquire`."""

    __slots__ = ("resource",)

    def __init__(self, resource: Resource) -> None:
        self.resource = resource

    def _wait(self, process) -> None:
        resource = self.resource
        if resource.in_use < resource.capacity:
            resource._grant_now(process)
        else:
            resource._waiters.append((process, resource.sim.now))
            if resource.sim.obs is not None:
                resource.sim.obs.timeline.record_queue_depth(
                    resource.name, resource.sim.now, len(resource._waiters)
                )


class Lock(Resource):
    """A single-slot resource (mutual exclusion)."""

    def __init__(self, sim, name: str = "lock") -> None:
        super().__init__(sim, capacity=1, name=name)
