"""Exception hierarchy for the Bridge reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch one base class.  The hierarchy mirrors the layering of the
system: simulation-kernel errors, storage errors, local-file-system (EFS)
errors, and Bridge-level errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class ProcessError(SimulationError):
    """A simulated process terminated with an unhandled exception.

    The original exception is available as ``__cause__``; the failing
    process name is stored in :attr:`process_name`.
    """

    def __init__(self, process_name: str, message: str = "") -> None:
        self.process_name = process_name
        detail = message or "simulated process failed"
        super().__init__(f"{detail} (process {process_name!r})")


class DeadlockError(SimulationError):
    """The event queue drained while non-daemon processes were still blocked."""

    def __init__(self, blocked: list) -> None:
        self.blocked = list(blocked)
        names = ", ".join(sorted(str(p) for p in self.blocked))
        super().__init__(f"deadlock: event queue empty, blocked processes: {names}")


class NotAProcessError(SimulationError):
    """An operation requiring a process context ran outside of one."""


class InvalidYieldError(SimulationError):
    """A simulated process yielded an object the kernel cannot wait on."""


# ---------------------------------------------------------------------------
# Machine model
# ---------------------------------------------------------------------------


class MachineError(ReproError):
    """Base class for machine/topology configuration errors."""


class NoSuchNodeError(MachineError):
    """A message or spawn targeted a node id that does not exist."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for simulated-device errors."""


class BadBlockAddressError(StorageError):
    """A block address fell outside the device's capacity."""


class DeviceFailedError(StorageError):
    """The device has been failed by fault injection and cannot serve I/O."""


# ---------------------------------------------------------------------------
# EFS (local file system)
# ---------------------------------------------------------------------------


class EFSError(ReproError):
    """Base class for local-file-system errors."""


class EFSFileNotFoundError(EFSError):
    """The requested EFS file number is not present in the directory."""


class EFSFileExistsError(EFSError):
    """Attempted to create an EFS file number that already exists."""


class EFSBlockNotFoundError(EFSError):
    """The requested block number is beyond the end of the EFS file."""


class EFSOutOfSpaceError(EFSError):
    """The free list is exhausted; no block can be allocated."""


class EFSCorruptionError(EFSError):
    """An on-disk structure failed a consistency check (bad link, bad header)."""


# ---------------------------------------------------------------------------
# Bridge (parallel file system)
# ---------------------------------------------------------------------------


class BridgeError(ReproError):
    """Base class for Bridge-server and Bridge-client errors."""


class BridgeFileNotFoundError(BridgeError):
    """The named interleaved file is not in the Bridge directory."""


class BridgeFileExistsError(BridgeError):
    """Attempted to create an interleaved file name that already exists."""


class BridgeBadRequestError(BridgeError):
    """A malformed or unsupported command reached the Bridge Server."""


class BridgeJobError(BridgeError):
    """A parallel-open job was misused (unknown job, wrong worker count...)."""


class BridgeAdmissionError(BridgeError):
    """Base class for requests refused by an admission policy (S21).

    These are *load-management* outcomes, not failures: the file system
    is healthy but chose not to serve this request right now.  Clients
    under open-loop traffic treat them as first-class results.
    """


class BridgeThrottledError(BridgeAdmissionError):
    """Rejected by a token-bucket rate limit; retry-after semantics."""


class BridgeOverloadError(BridgeAdmissionError):
    """Shed by a bounded admission queue past its depth threshold."""


# ---------------------------------------------------------------------------
# Tools
# ---------------------------------------------------------------------------


class ToolError(ReproError):
    """Base class for errors raised by Bridge tools."""


class SortProtocolError(ToolError):
    """The token-passing merge protocol reached an inconsistent state."""
