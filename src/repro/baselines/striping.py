"""Disk striping baseline (Salem & Garcia-Molina, paper section 2).

"Conventional devices are joined logically at the level of the file
system software.  Consecutive blocks are located on different disk
drives, so the file system can initiate I/O operations on several blocks
in parallel.  Striped files are not limited by disk or channel speed,
but...  they are limited by the throughput of the file system software."

Model: one file-system *process* on one node owns ``d`` disks.  Batch
reads/writes fan out to the disks concurrently, but every block still
passes through the single server (per-block CPU) and across the single
node's link to the client — the two serialization points Bridge removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import BLOCK_SIZE, DEFAULT_CONFIG, SystemConfig
from repro.errors import EFSFileExistsError, EFSFileNotFoundError
from repro.machine import Client, Machine, Response, Server
from repro.sim import Simulator, Timeout
from repro.storage import BlockStoreABC, make_driver, storage_specs


class _StripedFile:
    __slots__ = ("name", "size", "placements")

    def __init__(self, name: str) -> None:
        self.name = name
        self.size = 0
        self.placements: List[int] = []  # per-block physical address


class StripedServer(Server):
    """The single FS process fronting a stripe set of ``d`` disks."""

    def __init__(self, node, disks: List[BlockStoreABC],
                 config: SystemConfig) -> None:
        super().__init__(node, "striped-fs")
        if not disks:
            raise ValueError("striping needs at least one disk")
        self.disks = disks
        self.config = config
        self.files: Dict[str, _StripedFile] = {}
        self._next_addr = [0] * len(disks)

    # ------------------------------------------------------------------

    def op_create(self, name):
        yield Timeout(self.config.cpu.efs_request)
        if name in self.files:
            raise EFSFileExistsError(f"striped file {name!r} exists")
        self.files[name] = _StripedFile(name)
        return name

    def op_append_batch(self, name, blocks):
        """Write a batch: one block per disk in flight at a time."""
        stripe = self._file(name)
        d = len(self.disks)
        for group_start in range(0, len(blocks), d):
            group = blocks[group_start : group_start + d]
            collectors = []
            for data in group:
                yield Timeout(self.config.cpu.efs_request)  # serial software
                disk_index = stripe.size % d
                address = self._next_addr[disk_index]
                self._next_addr[disk_index] += 1
                stripe.placements.append(address)
                stripe.size += 1
                collectors.append(
                    self._spawn_io(self.disks[disk_index].write(address, data))
                )
            for process in collectors:
                yield process.join()
        return stripe.size

    def op_read_batch(self, name, start, count):
        """Read ``count`` consecutive blocks starting at ``start``."""
        stripe = self._file(name)
        end = min(start + count, stripe.size)
        datas: List[Optional[bytes]] = [None] * max(0, end - start)
        d = len(self.disks)
        for group_start in range(start, end, d):
            group = range(group_start, min(group_start + d, end))
            collectors = []
            for block in group:
                yield Timeout(self.config.cpu.efs_request)  # serial software
                disk_index = block % d
                address = stripe.placements[block]
                collectors.append(
                    (block, self._spawn_io(self.disks[disk_index].read(address)))
                )
            for block, process in collectors:
                data = yield process.join()
                datas[block - start] = data
        payload = [data for data in datas if data is not None]
        return Response(value=payload, size=len(payload) * BLOCK_SIZE)

    def op_info(self, name):
        yield Timeout(self.config.cpu.efs_request)
        return self._file(name).size

    # ------------------------------------------------------------------

    def _file(self, name: str) -> _StripedFile:
        stripe = self.files.get(name)
        if stripe is None:
            raise EFSFileNotFoundError(f"striped file {name!r} not found")
        return stripe

    def _spawn_io(self, generator):
        return self.node.machine.sim.spawn(generator, name="stripe-io")


class StripedSystem:
    """Client node + FS node with ``d`` striped disks."""

    def __init__(
        self,
        disk_count: int,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        disk_capacity_blocks: int = 65_536,
        disk_latency=None,
        storage=None,
    ) -> None:
        self.config = config or DEFAULT_CONFIG
        self.sim = Simulator(seed=seed)
        self.machine = Machine(self.sim, 2, config=self.config)
        self.fs_node = self.machine.node(0)
        self.client_node = self.machine.node(1)
        self.disks = [
            make_driver(
                spec, self.sim, name=f"stripe{i}",
                capacity_blocks=disk_capacity_blocks,
                default_latency=disk_latency,
            )
            for i, spec in enumerate(storage_specs(storage, disk_count))
        ]
        self.server = StripedServer(self.fs_node, self.disks, self.config)

    def run(self, generator, name: str = "main"):
        return self.sim.run_process(generator, name=name)

    def build_file(self, name: str, chunks: List[bytes], batch: int = 64) -> None:
        rpc = Client(self.client_node, "stripe-client")

        def body():
            yield from rpc.call(self.server.port, "create", name=name)
            for start in range(0, len(chunks), batch):
                yield from rpc.call(
                    self.server.port,
                    "append_batch",
                    size=BLOCK_SIZE * len(chunks[start : start + batch]),
                    name=name,
                    blocks=chunks[start : start + batch],
                )

        self.run(body(), name="stripe-build")

    def copy_file(self, src: str, dst: str, batch: int = 64):
        """Copy through the client, batch by batch (the striped-FS
        equivalent of the conventional copy: every block crosses to the
        client and back, and every block pays the single FS process).

        Returns ``(blocks, elapsed)``.
        """
        from repro.config import BLOCK_SIZE

        rpc = Client(self.client_node, "stripe-copy")

        def body():
            size = yield from rpc.call(self.server.port, "info", name=src)
            start_time = self.sim.now
            yield from rpc.call(self.server.port, "create", name=dst)
            position = 0
            copied = 0
            while position < size:
                data = yield from rpc.call(
                    self.server.port, "read_batch",
                    name=src, start=position, count=batch,
                )
                if data:
                    yield from rpc.call(
                        self.server.port, "append_batch",
                        size=BLOCK_SIZE * len(data),
                        name=dst, blocks=data,
                    )
                position += batch
                copied += len(data)
            return copied, self.sim.now - start_time

        return self.run(body(), name="stripe-copy")

    def read_throughput(self, name: str, batch: int = 64):
        """Sequentially read the whole file; returns (blocks, elapsed)."""
        rpc = Client(self.client_node, "stripe-client")

        def body():
            size = yield from rpc.call(self.server.port, "info", name=name)
            start_time = self.sim.now
            position = 0
            blocks = 0
            while position < size:
                data = yield from rpc.call(
                    self.server.port, "read_batch",
                    name=name, start=position, count=batch,
                )
                position += batch
                blocks += len(data)
            return blocks, self.sim.now - start_time

        return self.run(body(), name="stripe-read")
