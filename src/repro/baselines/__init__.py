"""Baseline systems the paper compares against (sections 2-3)."""

from repro.baselines.distribution import (
    PLACEMENTS,
    ChunkedPlacement,
    HashedPlacement,
    RoundRobinPlacement,
    expected_distinct_nodes_hashed,
    measured_batch_parallelism,
    prob_all_distinct_hashed,
    sequential_window_rounds,
)
from repro.baselines.sequential_fs import SequentialCopyResult, SequentialSystem
from repro.baselines.striping import StripedServer, StripedSystem

__all__ = [
    "PLACEMENTS",
    "ChunkedPlacement",
    "HashedPlacement",
    "RoundRobinPlacement",
    "SequentialCopyResult",
    "SequentialSystem",
    "StripedServer",
    "StripedSystem",
    "expected_distinct_nodes_hashed",
    "measured_batch_parallelism",
    "prob_all_distinct_hashed",
    "sequential_window_rounds",
]
