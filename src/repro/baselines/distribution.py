"""Block-distribution strategies (paper section 3's design argument).

Three ways to place the blocks of a file on p nodes:

* **round robin** (Bridge's choice) — block n on node (n + k) mod p.
  Guarantees any p consecutive blocks occupy p distinct nodes.
* **chunking** (Gamma's option) — the file is split into exactly p
  contiguous chunks.  Requires a-priori knowledge of the file size;
  growing the file forces a global reorganization.
* **hashing** (Gamma's other option) — node = hash(n) mod p.  Randomizes
  placement, but "the probability that p consecutive blocks would be on
  p different processors would be extremely low".

The analytic functions quantify that argument (they back the E9 ablation
bench): expected distinct nodes touched by a window of p consecutive
blocks, the exact probability all p are distinct (the birthday bound
p!/p^p), and the reorganization cost of appending to a chunked file.
"""

from __future__ import annotations

import math
import zlib
from typing import List

# ---------------------------------------------------------------------------
# Placements
# ---------------------------------------------------------------------------


class RoundRobinPlacement:
    """Bridge's strategy: block n -> node (n + start) mod p."""

    name = "round-robin"

    def __init__(self, nodes: int, start: int = 0) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        self.nodes = nodes
        self.start = start % nodes

    def node_of(self, block: int, file_size: int) -> int:
        return (block + self.start) % self.nodes

    def supports_append(self) -> bool:
        return True

    def append_moves(self, old_size: int, new_size: int) -> int:
        """Blocks that must move when growing from old_size to new_size."""
        return 0


class ChunkedPlacement:
    """Gamma-style chunking: p equal contiguous chunks of the final size."""

    name = "chunked"

    def __init__(self, nodes: int) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        self.nodes = nodes

    def node_of(self, block: int, file_size: int) -> int:
        if file_size <= 0:
            return 0
        chunk = math.ceil(file_size / self.nodes)
        return min(block // chunk, self.nodes - 1)

    def supports_append(self) -> bool:
        return False  # requires a-priori size; growth reorganizes

    def append_moves(self, old_size: int, new_size: int) -> int:
        """Blocks whose home changes when the file grows (the "global
        reorganization involving every LFS")."""
        moves = 0
        for block in range(old_size):
            if self.node_of(block, old_size) != self.node_of(block, new_size):
                moves += 1
        return moves


class HashedPlacement:
    """Gamma-style hashing on the block number."""

    name = "hashed"

    def __init__(self, nodes: int, salt: int = 0) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        self.nodes = nodes
        self.salt = salt

    def node_of(self, block: int, file_size: int) -> int:
        digest = zlib.crc32(
            (block * 0x9E3779B97F4A7C15 + self.salt).to_bytes(16, "little")
        )
        return digest % self.nodes

    def supports_append(self) -> bool:
        return True

    def append_moves(self, old_size: int, new_size: int) -> int:
        return 0


PLACEMENTS = {
    "round-robin": RoundRobinPlacement,
    "chunked": ChunkedPlacement,
    "hashed": HashedPlacement,
}


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def prob_all_distinct_hashed(p: int, window: int) -> float:
    """P[`window` hashed blocks hit distinct nodes] = p!/(p-w)!/p^w."""
    if window > p:
        return 0.0
    probability = 1.0
    for i in range(window):
        probability *= (p - i) / p
    return probability


def expected_distinct_nodes_hashed(p: int, window: int) -> float:
    """E[distinct nodes touched by `window` hashed blocks]
    = p(1 - (1-1/p)^window)."""
    return p * (1.0 - (1.0 - 1.0 / p) ** window)


def measured_batch_parallelism(placement, file_size: int, window: int) -> float:
    """Average distinct nodes over all aligned windows of a real placement.

    This is the *effective parallelism* of lock-step multi-block access:
    a window hitting only d distinct nodes moves its blocks in ceil(w/d)
    rounds at best.
    """
    if file_size < window or window < 1:
        return 0.0
    totals = 0
    count = 0
    for base in range(0, file_size - window + 1, window):
        nodes = {placement.node_of(base + i, file_size) for i in range(window)}
        totals += len(nodes)
        count += 1
    return totals / count


def sequential_window_rounds(placement, file_size: int, window: int) -> float:
    """Average lock-step rounds needed per window (collision penalty).

    Round-robin achieves the ideal 1.0; hashing pays for collisions; a
    chunked file degenerates to `window` rounds whenever a window falls
    inside one chunk.
    """
    if file_size < window or window < 1:
        return 0.0
    total_rounds = 0
    count = 0
    for base in range(0, file_size - window + 1, window):
        per_node: dict = {}
        for i in range(window):
            node = placement.node_of(base + i, file_size)
            per_node[node] = per_node.get(node, 0) + 1
        total_rounds += max(per_node.values())
        count += 1
    return total_rounds / count
