"""The conventional-file-system baseline: one processor, one disk.

This is the system the paper's O(n) copy claim refers to: everything —
directory, block lists, data — lives behind a single EFS instance on a
single node, and every block crosses the interconnect to the client.
Built from the same EFS/disk substrates as Bridge so comparisons isolate
exactly one variable: parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.efs import EFSClient, EFSServer
from repro.machine import Machine
from repro.sim import Simulator
from repro.storage import make_driver


@dataclass
class SequentialCopyResult:
    blocks: int
    elapsed: float

    @property
    def blocks_per_second(self) -> float:
        return self.blocks / self.elapsed if self.elapsed > 0 else 0.0


class SequentialSystem:
    """A single-LFS installation with a remote client node."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        disk_capacity_blocks: int = 65_536,
        disk_latency=None,
        storage=None,
    ) -> None:
        self.config = config or DEFAULT_CONFIG
        self.sim = Simulator(seed=seed)
        self.machine = Machine(self.sim, 2, config=self.config)
        self.fs_node = self.machine.node(0)
        self.client_node = self.machine.node(1)
        self.disk = make_driver(
            storage, self.sim, name="disk0",
            capacity_blocks=disk_capacity_blocks, default_latency=disk_latency,
        )
        self.efs = EFSServer(self.fs_node, self.disk, self.config)
        self._next_file = 1

    # ------------------------------------------------------------------

    def client(self, node=None) -> EFSClient:
        return EFSClient(node or self.client_node, self.efs.port)

    def allocate_file_number(self) -> int:
        number = self._next_file
        self._next_file += 1
        return number

    def run(self, generator, name: str = "main"):
        return self.sim.run_process(generator, name=name)

    # ------------------------------------------------------------------

    def build_file(self, chunks: List[bytes]) -> int:
        """Create and populate a file; returns its number."""
        number = self.allocate_file_number()
        client = self.client()

        def body():
            yield from client.create(number)
            yield from client.write_file(number, chunks)

        self.run(body(), name="seq-build")
        return number

    def copy_file(self, src_number: int) -> SequentialCopyResult:
        """The O(n) conventional copy: every block through the client."""
        dst_number = self.allocate_file_number()
        client = self.client()

        def body():
            start = self.sim.now
            yield from client.create(dst_number)
            info = yield from client.info(src_number)
            hint = info.head_addr
            for block in range(info.size_blocks):
                result = yield from client.read(src_number, block, hint=hint)
                hint = result.next_addr
                yield from client.append(dst_number, result.data)
            return SequentialCopyResult(
                blocks=info.size_blocks, elapsed=self.sim.now - start
            )

        return self.run(body(), name="seq-copy")

    def read_file(self, number: int) -> List[bytes]:
        client = self.client()

        def body():
            return (yield from client.read_file(number))

        return self.run(body(), name="seq-read")
