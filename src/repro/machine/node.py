"""Nodes: the processors of the simulated multiprocessor.

A :class:`Node` is a location.  Processes run *on* a node, mailboxes are
*owned by* a node, and the network model charges latency based on the
source and destination nodes of each message.  This is the machinery that
lets Bridge tools "export code to the data": a worker spawned on the node
that owns a disk exchanges only cheap local messages with that disk's LFS.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim import Mailbox, Process


class Port:
    """A mailbox bound to its owning node — the unit of addressability.

    Ports are what get passed around in messages (reply ports, server
    addresses, worker lists).  Sending to a port goes through the machine's
    network model, which uses ``port.node`` for latency.
    """

    __slots__ = ("node", "mailbox")

    def __init__(self, node: "Node", mailbox: Mailbox) -> None:
        self.node = node
        self.mailbox = mailbox

    @property
    def name(self) -> str:
        return self.mailbox.name

    def recv(self):
        """Waitable receive on the underlying mailbox."""
        return self.mailbox.recv()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.mailbox.name!r}@node{self.node.index})"


class Node:
    """One processor (with optional attached disk) of the machine."""

    def __init__(self, machine, index: int, name: Optional[str] = None) -> None:
        self.machine = machine
        self.index = index
        self.name = name or f"node{index}"
        self.processes: List[Process] = []
        #: Set by the storage layer if a disk is attached to this node.
        self.disk = None
        #: Set by the EFS layer if an LFS instance runs on this node.
        self.lfs_port: Optional[Port] = None
        self._port_seq = 0

    # ------------------------------------------------------------------

    def port(self, name: Optional[str] = None) -> Port:
        """Create a fresh port (mailbox owned by this node)."""
        self._port_seq += 1
        label = name or f"{self.name}.port{self._port_seq}"
        return Port(self, Mailbox(self.machine.sim, label))

    def spawn(self, generator, name: str = "proc", daemon: bool = False) -> Process:
        """Run a process on this node (no spawn latency: local fork)."""
        process = self.machine.sim.spawn(
            generator, name=f"{self.name}/{name}", daemon=daemon
        )
        self.processes.append(process)
        return process

    # ------------------------------------------------------------------

    def send(self, port: Port, message: Any, size: int = 0) -> None:
        """Send ``message`` from this node to ``port`` (fire and forget)."""
        self.machine.send(self, port, message, size=size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.index}, {self.name!r})"
