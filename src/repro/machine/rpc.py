"""Request/reply messaging on top of the machine's network model.

All Bridge components (EFS servers, the Bridge Server, tool workers) speak
the same envelope protocol: a :class:`Request` names a method, carries
arguments and a reply port; the server answers with a :class:`Response`
that either holds a value or an error to be re-raised at the caller.

Servers are *single simulated processes* handling one request at a time —
deliberately, because the serialization of a centralized server is one of
the phenomena the paper measures (section 4.1: "if requests to the server
are frequent enough to cause a bottleneck...").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.machine.node import Node, Port
from repro.obs.spans import SpanContext
from repro.sim import Timeout


@dataclass
class Request:
    """A method invocation envelope."""

    method: str
    args: Dict[str, Any] = field(default_factory=dict)
    reply_to: Optional[Port] = None
    size: int = 0  # payload bytes carried with the request
    # S19 trace context (repro.obs.SpanContext).  Stamped by the sender —
    # explicitly by instrumented call sites, or automatically by the
    # interconnect hook for raw Request sends — and read by Server._loop
    # to link the handler span to its caller.  Always None when
    # observability is disabled.
    trace_ctx: Optional[Any] = None
    # S21 traffic class ("naive", "tool", "parallel", "meta", ...).
    # Stamped by clients created with a ``traffic_class``; ``None`` (the
    # default, and everything outside the traffic subsystem) classifies
    # server-side by method name.  Admission policies and per-class SLO
    # accounting key off this.
    traffic_class: Optional[str] = None
    # S21 send timestamp (simulated seconds).  Admission queues measure
    # a request's wait from here, so time spent in the server mailbox
    # while the server was busy counts — that sojourn is what the
    # queueing models in repro.analysis predict.
    sent_at: Optional[float] = None


@dataclass
class Response:
    """The server's answer: exactly one of ``value`` / ``error`` is set."""

    value: Any = None
    error: Optional[Exception] = None
    size: int = 0  # payload bytes carried with the response
    # S19 trace context, stamped by the interconnect hook at send time
    # (the server loop has restored the caller's span by then).  Lets
    # shared-medium networks report the response frame's exact drain
    # time, so reply transit splits into net vs. queue like requests do.
    trace_ctx: Optional[Any] = None


class Detached:
    """Handler result meaning: finish this request in a side process.

    The server loop spawns ``generator`` and immediately returns to its
    mailbox; the side process produces the eventual response (a plain
    value or a :class:`Response`) which is then sent to the caller.  Use
    for slow operations that must not serialize unrelated requests behind
    a single server (e.g. Bridge Delete, whose LFS walk is O(n/p))."""

    __slots__ = ("generator",)

    def __init__(self, generator) -> None:
        self.generator = generator


class Server:
    """Base class for simulated RPC servers.

    Subclasses implement generator methods named ``op_<method>`` taking the
    request's ``args`` as keyword arguments and returning the result value
    (they may ``yield`` to wait on disks, other servers, ...).  To attach a
    byte size to the response (block payloads crossing the network), return
    a :class:`Response` directly; plain return values are wrapped with
    ``size=0``.

    Application-level errors derived from :class:`Exception` raised by a
    handler are shipped back to the caller and re-raised there; they do not
    kill the server.
    """

    def __init__(self, node: Node, name: str) -> None:
        self.node = node
        self.name = name
        self.port = node.port(name)
        self.requests_served = 0
        self.busy_time = 0.0
        # S21: optional admission-queue front-end.  When installed (see
        # repro.traffic.admission) the loop drains its mailbox into the
        # scheduler and lets it pick the next request — bounded-depth
        # shedding and weighted fair queueing live there.  ``None`` (the
        # default) is the plain FIFO mailbox, byte-identical to the seed.
        self.scheduler = None
        # The request currently being dispatched; the pipeline admission
        # stage reads this to classify and count without re-plumbing the
        # envelope through every handler signature.
        self._active_request: Optional[Request] = None
        # S22 live migration: per-name redirects installed by the elastic
        # resizer.  A request whose ``name`` argument maps here is
        # re-sent to the mapped port (original envelope, original
        # ``reply_to``) instead of dispatched — the double-read
        # forwarding window that keeps in-flight requests correct while
        # an entry is between partitions.  Empty dict = seed hot path
        # (one falsy check per request).
        self.forward_to: Dict[str, Port] = {}
        self.forwarded = 0
        self._forward_cost = 0.0  # subclasses charge their routing CPU
        self._forward_exempt: frozenset = frozenset()
        # S24 heat accounting: when a HeatMap is installed (see
        # repro.rebalance.heat) every served request's busy time is
        # attributed to this server's partition and to the request's
        # ``name``/``names`` argument.  ``None`` (the default) is one
        # falsy check per request — no events scheduled, so the seed
        # event sequence is untouched.
        self.heat = None
        self.heat_partition = 0
        self.process = node.spawn(self._loop(), name=name, daemon=True)

    # ------------------------------------------------------------------

    def _next_request(self):
        """Yield the next request to serve (generator, kernel-driven).

        Default: block on the port like any mailbox server.  With a
        scheduler installed, drain every message that has already arrived
        into it (a non-blocking sweep — arrivals during service queued in
        the mailbox), then let the scheduler pick; only when it holds
        nothing do we fall back to a blocking receive."""
        scheduler = self.scheduler
        if scheduler is None:
            request = yield self.port.recv()
            return request
        mailbox = self.port.mailbox
        now = self.node.machine.sim.now
        while True:
            message = mailbox.poll()
            if message is None:
                break
            scheduler.enqueue(message, now)
        if not len(scheduler):
            message = yield self.port.recv()
            scheduler.enqueue(message, self.node.machine.sim.now)
        return scheduler.pick(self.node.machine.sim.now)

    def _loop(self):
        sim = self.node.machine.sim
        while True:
            request = yield from self._next_request()
            if self.forward_to and request.method not in self._forward_exempt:
                target = self.forward_to.get(request.args.get("name"))
                if target is not None:
                    yield from self._forward(sim, request, target)
                    continue
            self._active_request = request
            started = sim.now
            obs = sim.obs
            server_span = None
            if obs is not None:
                server_span = self._begin_request(obs, request)
            handler = getattr(self, "op_" + request.method, None)
            if handler is None:
                response = Response(
                    error=NotImplementedError(
                        f"{self.name}: unknown method {request.method!r}"
                    )
                )
            else:
                try:
                    result = yield from handler(**request.args)
                except Exception as exc:  # ship application errors back
                    response = Response(error=exc)
                else:
                    if isinstance(result, Detached):
                        self.node.spawn(
                            self._finish_detached(
                                result.generator, request, server_span, started
                            ),
                            name=f"{self.name}.detached",
                        )
                        self.requests_served += 1
                        self.busy_time += sim.now - started
                        if self.heat is not None:
                            self.heat.record(self.heat_partition, request,
                                             sim.now - started, sim.now)
                        if obs is not None:
                            obs.set_current(None)
                        continue
                    if isinstance(result, Response):
                        response = result
                    else:
                        response = Response(value=result)
            self.requests_served += 1
            self.busy_time += sim.now - started
            if self.heat is not None:
                self.heat.record(self.heat_partition, request,
                                 sim.now - started, sim.now)
            if obs is not None:
                self._end_request(obs, request, server_span, started)
            if request.reply_to is not None:
                self.node.send(request.reply_to, response, size=response.size)
            if obs is not None:
                obs.set_current(None)

    def _forward(self, sim, request: Request, target: Port):
        """Redirect a misrouted request (S22 double-read window): charge
        the routing CPU and re-send the original envelope — same args,
        same ``reply_to``, same trace context — to the entry's current
        home.  The reply flows straight from there to the caller."""
        obs = sim.obs
        span = None
        if obs is not None:
            ctx = request.trace_ctx
            span = obs.begin(
                f"{self.name}.forward", "server",
                parent=ctx.span if ctx is not None else None,
                inherit=False, node=self.node.index,
            )
        if self._forward_cost > 0.0:
            yield Timeout(self._forward_cost)
            self.busy_time += self._forward_cost
        self.forwarded += 1
        self.requests_served += 1
        if obs is not None:
            obs.end(span, method=request.method, target=target.name)
        self.node.send(target, request, size=request.size)

    # -- S19 per-request instrumentation -------------------------------

    def _begin_request(self, obs, request: Request):
        """Open the handler span (plus a mailbox-wait span when the
        request sat queued) and make it the loop's current context."""
        ctx = request.trace_ctx
        parent = ctx.span if ctx is not None else None
        started = obs.now
        if ctx is not None:
            queued_from = ctx.deliver_at if ctx.deliver_at is not None else ctx.sent_at
            if queued_from is not None and started - queued_from > 1e-12:
                wait_span = obs.begin(
                    "mailbox_wait", "queue", parent=parent, inherit=False,
                    node=self.node.index, start=queued_from,
                )
                obs.end(wait_span, end=started)
        span = obs.begin(
            f"{self.name}.{request.method}", "server",
            parent=parent, inherit=False, node=self.node.index,
        )
        obs.set_current(span)
        obs.metrics.counter(f"{self.name}.op.{request.method}").inc()
        return span

    def _end_request(self, obs, request: Request, span, started: float) -> None:
        """Close the handler span; response transit (sent next) parents
        under the *caller's* span so its partition stays exact."""
        obs.end(span)
        obs.metrics.histogram(
            f"{self.name}.op.{request.method}.latency"
        ).observe(obs.now - started)
        ctx = request.trace_ctx
        obs.current = ctx.span if ctx is not None else None

    def _finish_detached(self, generator, request: Request, span=None,
                         started: float = 0.0):
        try:
            value = yield from generator
        except Exception as exc:
            response = Response(error=exc)
        else:
            response = value if isinstance(value, Response) else Response(value=value)
        obs = self.node.machine.sim.obs
        if obs is not None:
            self._end_request(obs, request, span, started)
        if request.reply_to is not None:
            self.node.send(request.reply_to, response, size=response.size)
        if obs is not None:
            obs.set_current(None)

    def utilization(self) -> float:
        """Fraction of simulated time this server spent handling requests."""
        now = self.node.machine.sim.now
        return self.busy_time / now if now > 0 else 0.0


class Client:
    """Client-side helper for sequential RPC.

    One :class:`Client` supports one outstanding call at a time (it owns a
    single reply port).  Components that need parallel outstanding requests
    create one client per in-flight call or collect replies on a shared
    port manually (see the Bridge Server's parallel read).
    """

    def __init__(self, node: Node, name: str = "client",
                 traffic_class: Optional[str] = None) -> None:
        self.node = node
        self.reply_port = node.port(f"{name}.reply")
        # S21: stamped onto every outgoing request so admission policies
        # and SLO recording can account per class.  None = untagged.
        self.traffic_class = traffic_class

    def call(self, port: Port, method: str, size: int = 0, **args):
        """Generator performing one call: ``value = yield from client.call(...)``."""
        request = Request(method=method, args=args, reply_to=self.reply_port,
                          size=size, traffic_class=self.traffic_class,
                          sent_at=self.node.machine.sim.now)
        obs = self.node.machine.sim.obs
        span = None
        prev = None
        if obs is not None:
            prev = obs.current
            span = obs.begin(f"call.{method}", "client", node=self.node.index)
            request.trace_ctx = SpanContext(span)
            obs.set_current(span)
        self.node.send(port, request, size=size)
        response = yield self.reply_port.recv()
        if obs is not None:
            obs.end(span, target=port.name)
            obs.set_current(prev)
        if response.error is not None:
            raise response.error
        return response.value

    def send_async(self, port: Port, method: str, size: int = 0, **args) -> None:
        """Fire a request whose reply will arrive on :attr:`reply_port`.

        Use with a matching number of ``yield client.reply_port.recv()``;
        replies are not matched to requests, so this is only safe when all
        outstanding requests are homogeneous (e.g. a barrier of creates).
        """
        request = Request(method=method, args=args, reply_to=self.reply_port,
                          size=size, traffic_class=self.traffic_class,
                          sent_at=self.node.machine.sim.now)
        self.node.send(port, request, size=size)

    def collect(self, count: int):
        """Generator collecting ``count`` async replies, raising any error."""
        values = []
        for _ in range(count):
            response = yield self.reply_port.recv()
            if response.error is not None:
                raise response.error
            values.append(response.value)
        return values


def gather(node: Node, calls, max_in_flight: Optional[int] = None):
    """Issue many requests in parallel and collect replies in call order.

    ``calls`` is a list of ``(port, method, args_dict, size)`` tuples.
    Each call gets its own one-shot reply port, so replies stay associated
    with their requests regardless of arrival order.  The generator
    completes when the *slowest* reply arrives; any error response is
    re-raised.  This is the fan-out primitive behind the Bridge Server's
    parallel Create/Delete/Open/Read/Write and the list-I/O batch fan-out.

    ``max_in_flight`` bounds the fan-out: at most that many requests are
    outstanding at once, issued in windows (a wide machine can otherwise
    flood a server's mailbox with hundreds of block requests at once).
    ``None`` (the default) issues everything immediately.

    A failed sub-call re-raises the server's error *with the originating
    call attached*: the exception gains ``gather_port`` / ``gather_method``
    / ``gather_index`` attributes (and a traceback note on Pythons that
    support ``add_note``), so "disk failed" surfaces as "disk failed while
    calling read on efs3@node3 (call #5 of 8)" instead of a bare error
    with no hint which fan-out leg died.
    """
    if max_in_flight is not None and max_in_flight < 1:
        raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
    calls = list(calls)
    if not calls:
        return []
    window = len(calls) if max_in_flight is None else max_in_flight
    obs = node.machine.sim.obs
    prev = obs.current if obs is not None else None
    values = []
    for window_start in range(0, len(calls), window):
        batch = calls[window_start:window_start + window]
        reply_ports = []
        legs = []
        for port, method, args, size in batch:
            reply_port = node.port()
            request = Request(method, args, reply_port, size,
                              sent_at=node.machine.sim.now)
            leg = None
            if obs is not None:
                # One client-side span per fan-out leg; sends don't yield,
                # so flipping obs.current around the send needs no sticky
                # process-context update.
                leg = obs.begin(f"gather.{method}", "client",
                                parent=prev, inherit=False, node=node.index)
                request.trace_ctx = SpanContext(leg)
                obs.current = leg
            node.send(port, request, size=size)
            if obs is not None:
                obs.current = prev
            reply_ports.append(reply_port)
            legs.append(leg)
        for offset, reply_port in enumerate(reply_ports):
            response = yield reply_port.recv()
            if obs is not None:
                obs.end(legs[offset])
            if response.error is not None:
                index = window_start + offset
                port, method, _args, _size = calls[index]
                raise _annotate_gather_error(
                    response.error, port, method, index, len(calls)
                )
            values.append(response.value)
    return values


def gather_settled(node: Node, calls, max_in_flight: Optional[int] = None):
    """Like :func:`gather`, but per-call errors are returned, not raised.

    Returns a list of ``(value, error)`` pairs in call order — exactly
    one of the two is set per pair.  The S23 batched metadata handlers
    use this to chase names caught in a migration's forwarding window:
    each chased name must settle independently (a deleted name's
    not-found is *that name's* outcome), so the fail-fast semantics of
    :func:`gather` are exactly wrong here.  Windowing and per-leg span
    accounting match :func:`gather`.
    """
    if max_in_flight is not None and max_in_flight < 1:
        raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
    calls = list(calls)
    if not calls:
        return []
    window = len(calls) if max_in_flight is None else max_in_flight
    obs = node.machine.sim.obs
    prev = obs.current if obs is not None else None
    settled = []
    for window_start in range(0, len(calls), window):
        batch = calls[window_start:window_start + window]
        reply_ports = []
        legs = []
        for port, method, args, size in batch:
            reply_port = node.port()
            request = Request(method, args, reply_port, size,
                              sent_at=node.machine.sim.now)
            leg = None
            if obs is not None:
                leg = obs.begin(f"gather.{method}", "client",
                                parent=prev, inherit=False, node=node.index)
                request.trace_ctx = SpanContext(leg)
                obs.current = leg
            node.send(port, request, size=size)
            if obs is not None:
                obs.current = prev
            reply_ports.append(reply_port)
            legs.append(leg)
        for offset, reply_port in enumerate(reply_ports):
            response = yield reply_port.recv()
            if obs is not None:
                obs.end(legs[offset])
            if response.error is not None:
                settled.append((None, response.error))
            else:
                settled.append((response.value, None))
    return settled


def _annotate_gather_error(error: Exception, port: Port, method: str,
                           index: int, total: int) -> Exception:
    """Attach the originating call to a gathered error, preserving type."""
    error.gather_port = port
    error.gather_method = method
    error.gather_index = index
    note = (
        f"while calling {method!r} on {port.name}@node{port.node.index} "
        f"(gather call #{index} of {total})"
    )
    if hasattr(error, "add_note"):  # Python >= 3.11
        error.add_note(note)
    return error


def oneway(node: Node, port: Port, method: str, size: int = 0, **args) -> None:
    """Send a request that expects no reply (completion notifications)."""
    node.send(port, Request(method=method, args=args, reply_to=None, size=size), size=size)
