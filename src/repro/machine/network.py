"""Interconnect models.

The prototype ran on a BBN Butterfly, whose switch gives near-uniform
latency between any pair of nodes (messages are atomic queues in shared
memory).  The paper notes the design "could be realized equally well on
any local area network", so an Ethernet-style shared-bus model is provided
too — it serializes all transmissions and makes the paper's remark about
communication bottlenecks on broadcast networks measurable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Tuple

from repro.config import MessageCosts
from repro.sim import Mailbox, Timeout


class ButterflyNetwork:
    """Uniform-latency switch: latency depends only on locality and size."""

    def __init__(self, costs: MessageCosts) -> None:
        self.costs = costs
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, sim, src_node, port, message: Any, size: int = 0):
        """Deliver ``message`` to ``port`` after the modeled latency.

        Returns the latency charged, so instrumentation layered above
        (:class:`repro.obs.Observability`) can price the transit without
        re-deriving the network model.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        same_node = src_node is port.node
        latency = self.costs.latency(same_node, size)
        sim.call_later(latency, port.mailbox.deliver, message)
        return latency


class ZeroLatencyNetwork:
    """Instant delivery — for unit tests that isolate higher layers."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, sim, src_node, port, message: Any, size: int = 0):
        self.messages_sent += 1
        self.bytes_sent += size
        sim.call_later(0.0, port.mailbox.deliver, message)
        return 0.0


class EthernetNetwork:
    """A shared broadcast bus: one transmission at a time, per-byte cost.

    Local (same-node) messages bypass the bus.  Remote messages queue at a
    single transmitter process, which models the medium's serialization —
    the reason the paper insists on moving computation to the data when
    aggregate I/O bandwidth exceeds network bandwidth.
    """

    def __init__(
        self,
        sim,
        bandwidth_bytes_per_s: float = 1_250_000.0,  # 10 Mb/s Ethernet
        frame_overhead: float = 0.2e-3,
        local_latency: float = 0.1e-3,
    ) -> None:
        self.sim = sim
        self.bandwidth = bandwidth_bytes_per_s
        self.frame_overhead = frame_overhead
        self.local_latency = local_latency
        self.messages_sent = 0
        self.bytes_sent = 0
        self._queue: Deque[Tuple[Any, Any, int]] = deque()
        self._wakeup = Mailbox(sim, "ethernet.wakeup")
        sim.spawn(self._transmitter(), name="ethernet", daemon=True)

    def send(self, sim, src_node, port, message: Any, size: int = 0):
        self.messages_sent += 1
        self.bytes_sent += size
        if src_node is port.node:
            sim.call_later(self.local_latency, port.mailbox.deliver, message)
            return self.local_latency
        self._queue.append((port, message, size))
        self._wakeup.deliver(None)
        # Remote messages queue behind the shared bus; the arrival time is
        # unknown until the transmitter gets to them.
        return None

    def _transmitter(self):
        while True:
            yield self._wakeup.recv()
            while self._queue:
                port, message, size = self._queue.popleft()
                started = self.sim.now
                yield Timeout(self.frame_overhead + size / self.bandwidth)
                port.mailbox.deliver(message)
                # Transit is priced only now that the frame has cleared
                # the shared medium; tell the observability layer so the
                # net vs. queue split is exact (no scheduling happens
                # here — the event sequence is unchanged).
                obs = self.sim.obs
                if obs is not None:
                    obs.on_bus_drain(message, started, self.sim.now)

    @property
    def backlog(self) -> int:
        """Messages waiting for the bus right now."""
        return len(self._queue)
