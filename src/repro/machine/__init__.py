"""Machine model: nodes, interconnect, remote process creation, RPC.

Replaces the BBN Butterfly / Chrysalis substrate of the paper's prototype.
"""

from repro.machine.machine import Machine
from repro.machine.network import ButterflyNetwork, EthernetNetwork, ZeroLatencyNetwork
from repro.machine.node import Node, Port
from repro.machine.rpc import (
    Client,
    Request,
    Response,
    Server,
    gather,
    gather_settled,
    oneway,
)

__all__ = [
    "ButterflyNetwork",
    "Client",
    "EthernetNetwork",
    "gather",
    "gather_settled",
    "Machine",
    "Node",
    "Port",
    "Request",
    "Response",
    "Server",
    "ZeroLatencyNetwork",
    "oneway",
]
