"""The simulated multiprocessor: nodes + interconnect + remote spawn."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.errors import NoSuchNodeError
from repro.machine.network import ButterflyNetwork
from repro.machine.node import Node, Port
from repro.sim import Process, Signal, Simulator, Timeout


class Machine:
    """A collection of nodes joined by a network model.

    This replaces the BBN Butterfly: processors are :class:`Node` objects,
    Chrysalis message passing is :meth:`send` through the network model,
    and creating a process on another node costs ``config.cpu.spawn``.
    """

    def __init__(
        self,
        sim: Simulator,
        node_count: int,
        config: SystemConfig = DEFAULT_CONFIG,
        network=None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"machine needs at least one node, got {node_count}")
        self.sim = sim
        self.config = config
        self.network = network or ButterflyNetwork(config.messages)
        self.nodes: List[Node] = [Node(self, i) for i in range(node_count)]

    # ------------------------------------------------------------------

    def node(self, index: int) -> Node:
        """The node with the given index, or :class:`NoSuchNodeError`."""
        if not 0 <= index < len(self.nodes):
            raise NoSuchNodeError(f"node {index} (machine has {len(self.nodes)})")
        return self.nodes[index]

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------

    def send(self, src_node: Node, port: Port, message: Any, size: int = 0) -> None:
        """Send a message between nodes through the network model."""
        latency = self.network.send(self.sim, src_node, port, message, size=size)
        if self.sim.obs is not None:
            self.sim.obs.on_send(src_node, port, message, size, latency)

    def spawn_remote(
        self, dst_node: Node, generator, name: str = "worker"
    ) -> "_RemoteSpawn":
        """Waitable that creates a process on ``dst_node`` after spawn cost.

        Usage from a tool process::

            worker = yield machine.spawn_remote(lfs_node, body(), "ecopy")

        The yielded value is the new :class:`~repro.sim.Process`.
        """
        return _RemoteSpawn(self, dst_node, generator, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Machine({len(self.nodes)} nodes, {type(self.network).__name__})"


class _RemoteSpawn:
    """Waitable for :meth:`Machine.spawn_remote`."""

    __slots__ = ("machine", "dst_node", "generator", "name")

    def __init__(self, machine: Machine, dst_node: Node, generator, name: str) -> None:
        self.machine = machine
        self.dst_node = dst_node
        self.generator = generator
        self.name = name

    def _wait(self, process) -> None:
        # The spawn callback runs outside any process step, where the
        # observability "current span" is stale; capture the requester's
        # context now so the remote process inherits the right parent.
        obs = self.machine.sim.obs
        ctx = obs.current if obs is not None else None

        def do_spawn(_arg):
            if obs is not None:
                obs.current = ctx
            new_process = self.dst_node.spawn(self.generator, name=self.name)
            process._step(new_process)

        delay = self.machine.config.cpu.spawn
        self.machine.sim.call_later(delay, do_spawn)
