"""Interleaved-file addressing (paper section 3).

An interleaved file is a two-dimensional array of blocks in row-major
order: "with p instances of the LFS, the nth block of an interleaved file
will be block (n div p) in the constituent file on LFS (n mod p)...  If
the round-robin distribution can start on any node, then the nth block
will be found on processor ((n + k) mod p), where block zero belongs to
LFS k."

This module is pure arithmetic — no simulation — and is exercised by
property-based tests: the round trip ``global -> (slot, local) -> global``
must be the identity, and any p consecutive global blocks must land on p
distinct slots (the guarantee that makes round-robin "optimal for parallel
execution of sequential file operations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class InterleaveMap:
    """Block-address arithmetic for one interleaved file.

    ``width`` is p, the number of constituent local file systems;
    ``start`` is k, the LFS slot holding global block zero.  *Slots* are
    positions ``0..p-1`` in the file's constituent list (which the Bridge
    directory maps to machine nodes).
    """

    width: int
    start: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"interleave width must be >= 1, got {self.width}")
        if not 0 <= self.start < self.width:
            raise ValueError(
                f"start slot {self.start} outside [0, {self.width})"
            )

    # ------------------------------------------------------------------
    # Global -> local
    # ------------------------------------------------------------------

    def slot_of(self, global_block: int) -> int:
        """The LFS slot holding the given global block: (n + k) mod p."""
        self._check_global(global_block)
        return (global_block + self.start) % self.width

    def local_block(self, global_block: int) -> int:
        """The block number within the constituent file: n div p."""
        self._check_global(global_block)
        return global_block // self.width

    def locate(self, global_block: int) -> Tuple[int, int]:
        """``(slot, local_block)`` for a global block number."""
        return self.slot_of(global_block), self.local_block(global_block)

    # ------------------------------------------------------------------
    # Local -> global
    # ------------------------------------------------------------------

    def column_of_slot(self, slot: int) -> int:
        """The interleave column a slot serves: (slot - k) mod p.

        Column c holds global blocks with ``n mod p == c``.
        """
        self._check_slot(slot)
        return (slot - self.start) % self.width

    def global_block(self, slot: int, local_block: int) -> int:
        """Inverse of :meth:`locate`."""
        self._check_slot(slot)
        if local_block < 0:
            raise ValueError(f"negative local block {local_block}")
        return local_block * self.width + self.column_of_slot(slot)

    # ------------------------------------------------------------------
    # Size arithmetic
    # ------------------------------------------------------------------

    def blocks_on_slot(self, slot: int, total_blocks: int) -> int:
        """How many of ``total_blocks`` land on ``slot``."""
        self._check_slot(slot)
        if total_blocks < 0:
            raise ValueError(f"negative file size {total_blocks}")
        column = self.column_of_slot(slot)
        full_rows, remainder = divmod(total_blocks, self.width)
        return full_rows + (1 if column < remainder else 0)

    def constituent_sizes(self, total_blocks: int) -> List[int]:
        """Per-slot block counts, indexed by slot."""
        return [self.blocks_on_slot(s, total_blocks) for s in range(self.width)]

    def total_from_sizes(self, sizes_by_slot: List[int]) -> int:
        """Reconstruct (and validate) the global size from per-slot sizes.

        Raises ``ValueError`` if the sizes are not a legal round-robin
        prefix (columns may differ by at most one, in column order).
        """
        if len(sizes_by_slot) != self.width:
            raise ValueError(
                f"expected {self.width} sizes, got {len(sizes_by_slot)}"
            )
        total = sum(sizes_by_slot)
        if sizes_by_slot != self.constituent_sizes(total):
            raise ValueError(
                f"sizes {sizes_by_slot} are not a round-robin prefix "
                f"(expected {self.constituent_sizes(total)} for total {total})"
            )
        return total

    # ------------------------------------------------------------------

    def _check_global(self, global_block: int) -> None:
        if global_block < 0:
            raise ValueError(f"negative global block {global_block}")

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.width:
            raise ValueError(f"slot {slot} outside [0, {self.width})")
