"""Sequential-stream detection and striped read-ahead for the Bridge
Server (S18).

The naive view's hot loop is strictly serial: the client asks for one
block, the Bridge forwards one EFS request, one disk works while the
other ``p - 1`` sit idle.  Once the :class:`SequentialDetector`
recognizes a stream, the :class:`Prefetcher` issues *asynchronous* EFS
reads for the next ``window * p`` blocks — one outstanding block per
constituent per window step — and installs the results into the Bridge
block cache (:mod:`repro.core.cache`).  The client's next requests then
hit the cache, so the observed latency collapses to the Bridge
round-trip while all ``p`` disks stream in parallel underneath: the
classic server-side read-ahead pipeline of PVFS/ViPIOS applied to the
paper's architecture.

Correctness guards:

* at most one in-flight fetch per ``(name, block)``; a demand read that
  misses the cache but finds an in-flight fetch *waits on it* instead of
  issuing a duplicate EFS read;
* every fetch captures the file's cache generation when issued and drops
  its result (waking waiters with ``None`` so they re-read) if a write
  invalidated the file meanwhile — prefetched data can never resurrect
  overwritten bytes;
* fetch errors (e.g. a failed device) are swallowed by the prefetch
  process — read-ahead is a hint, and the demand path re-raises the real
  error in the caller's context.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from repro.sim import Signal


class SequentialDetector:
    """Per-file access-pattern tracker for the naive read path.

    ``observe`` records one read and returns ``True`` once the stream
    has produced ``threshold`` consecutive block numbers (the default
    threshold of 2 recognizes a stream on its second block).  A
    non-consecutive access resets the run — random traffic never
    triggers read-ahead.
    """

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError("detector threshold must be >= 1")
        self.threshold = threshold
        self._streams: Dict[str, Tuple[int, int]] = {}  # name -> (last, run)
        self.recognitions = 0

    def observe(self, name: str, block: int) -> bool:
        last_run = self._streams.get(name)
        if last_run is not None and block == last_run[0] + 1:
            run = last_run[1] + 1
        else:
            run = 1
        self._streams[name] = (block, run)
        if run == self.threshold:
            self.recognitions += 1
        return run >= self.threshold

    def forget(self, name: str) -> None:
        self._streams.pop(name, None)


class Prefetcher:
    """Asynchronous striped read-ahead feeding the Bridge block cache.

    Owned by a :class:`~repro.core.server.BridgeServer`; ``window`` is
    the read-ahead depth in *stripes* (window 1 keeps one block per
    constituent in flight for a width-p file, the default the paper's
    geometry suggests).
    """

    def __init__(self, server, cache, window: int,
                 threshold: int = 2) -> None:
        if window < 1:
            raise ValueError("prefetch window must be >= 1")
        self.server = server
        self.cache = cache
        self.window = window
        self.detector = SequentialDetector(threshold=threshold)
        self._inflight: Dict[Tuple[str, int], Signal] = {}
        # Per-(name, slot) fetch queues: each constituent's prefetches
        # run *serially* so every EFS request carries a fresh disk-address
        # hint (concurrent requests to one LFS would race the hint and
        # force expensive link walks); the p slots still run in parallel.
        self._queues: Dict[Tuple[str, int], Deque] = {}
        self._busy: Set[Tuple[str, int]] = set()
        self.issued = 0
        self.completed = 0
        self.stale_drops = 0
        self.error_drops = 0

    # ------------------------------------------------------------------
    # Server-facing API
    # ------------------------------------------------------------------

    def observe(self, entry, name: str, block: int) -> None:
        """Record a naive-view read; top up the pipeline on a stream."""
        if self.detector.observe(name, block):
            self.top_up(entry, name, block + 1)

    def top_up(self, entry, name: str, start: int,
               depth: Optional[int] = None) -> None:
        """Issue fetches for ``[start, start + depth)`` not already
        cached or in flight (``depth`` defaults to ``window * width``)."""
        if depth is None:
            depth = self.window * entry.width
        end = min(start + depth, entry.total_blocks)
        for block in range(max(start, 0), end):
            if self.cache.contains(name, block):
                continue
            if (name, block) in self._inflight:
                continue
            self._issue(entry, name, block)

    def inflight_signal(self, name: str, block: int) -> Optional[Signal]:
        """The in-flight fetch for a block, if any (demand reads wait on
        it rather than duplicating the EFS request).  Fires with the
        block's data, or ``None`` if the fetch was dropped."""
        return self._inflight.get((name, block))

    def forget(self, name: str) -> None:
        self.detector.forget(name)

    # ------------------------------------------------------------------

    def _issue(self, entry, name: str, block: int) -> None:
        node = self.server.node
        sim = node.machine.sim
        signal = Signal(sim)
        self._inflight[(name, block)] = signal
        generation = self.cache.generation(name)
        self.issued += 1
        span = None
        if sim.obs is not None:
            # The fetch span parents under the demand op that triggered
            # the read-ahead, but is background: it appears in exports as
            # a prefetch child without polluting the op's latency
            # partition (it overlaps and outlives the demand path).
            span = sim.obs.begin(
                f"prefetch[{block}]", "server", node=node.index,
                background=True,
            )
            sim.obs.metrics.counter(f"{self.server.name}.prefetch.issued").inc()
        slot, local = entry.locate_block(block)
        key = (name, slot)
        queue = self._queues.setdefault(key, deque())
        queue.append((entry, block, local, signal, generation, span))
        if key not in self._busy:
            self._busy.add(key)
            node.spawn(
                self._slot_worker(key),
                name=f"{self.server.name}.prefetch[{slot}]",
            )

    def _slot_worker(self, key: Tuple[str, int]):
        """Drain one constituent's fetch queue, one EFS read at a time."""
        from repro.machine import gather

        name, slot = key
        server = self.server
        obs = server.node.machine.sim.obs
        queue = self._queues[key]
        while queue:
            entry, block, local, signal, generation, span = queue.popleft()
            if obs is not None:
                # Route this worker's causality (the gather legs, EFS
                # server work, disk access) under the fetch span.
                obs.set_current(span)
            try:
                results = yield from gather(
                    server.node,
                    [(server._slot_port(entry, slot), "read",
                      {"file_number": entry.efs_file_numbers[slot],
                       "block_number": local,
                       "hint": server._hints.get((name, slot))}, 0)],
                )
                result = results[0]
            except Exception:
                # Read-ahead is advisory: swallow the error, let the
                # demand path surface it with proper context if the
                # block is actually read.
                self.error_drops += 1
                self._inflight.pop((name, block), None)
                if obs is not None:
                    obs.end(span, outcome="error")
                signal.fire(None)
                continue
            self._inflight.pop((name, block), None)
            self.completed += 1
            if self.cache.generation(name) != generation:
                self.stale_drops += 1  # a write landed while we read
                if obs is not None:
                    obs.end(span, outcome="stale")
                signal.fire(None)
                continue
            server._hints[(name, slot)] = result.next_addr
            self.cache.install(name, block, result.data, prefetched=True)
            if obs is not None:
                obs.end(span, outcome="installed")
            signal.fire(result.data)
        if obs is not None:
            obs.set_current(None)
        self._queues.pop(key, None)
        self._busy.discard(key)

    # ------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Fetches whose results were discarded (stale or errored)."""
        return self.stale_drops + self.error_drops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Prefetcher(window={self.window}, issued={self.issued}, "
            f"inflight={len(self._inflight)})"
        )
