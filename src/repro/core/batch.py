"""S23 batched-metadata result types.

The batched ops (``mopen`` / ``mstat`` / ``mcreate`` / ``mdelete``)
return one :class:`NameOutcome` per requested name, in request order —
success carries the op's value (an ``OpenResult``, a :class:`FileStat`,
a file id, freed blocks), failure carries the application exception that
the singleton op would have raised.  One bad name never fails the batch;
this mirrors ``op_list_read``'s per-call error annotation at the
name granularity.

:class:`FileStat` is the directory-only metadata probe backing ``stat``
and ``mstat``: everything the Bridge Server knows about a file without
touching the LFS level.  Sizes are as of the last open/write through
the server — Open is "interpreted as a hint" (section 4.1), so a stat
is the cheap hint-refresh a parallel utility wants when walking
thousands of names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Bucket upper bounds for the ``bridge.batch.names`` histogram: batch
#: sizes are counts, not latencies, so the S19 default (seconds-oriented)
#: bounds would put every batch in the first bucket.
BATCH_SIZE_BOUNDS: Tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
)


@dataclass
class FileStat:
    """Directory-resident metadata of one Bridge file."""

    name: str
    file_id: int
    width: int
    start: int
    total_blocks: int
    disordered: bool


@dataclass
class NameOutcome:
    """Per-name result of a batched metadata op: value xor error."""

    name: str
    value: Any = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The value, re-raising the per-name error like the singleton
        op would have (for callers that do want fail-fast semantics)."""
        if self.error is not None:
            raise self.error
        return self.value
