"""Disordered files and off-line reorganization (paper section 3).

"Our prototype implementation supports an explicit linked-list
representation of files that permits arbitrary scattering of blocks at
the expense of very slow random access.  ...  We are considering the
relaxation of interleaving rules for a limited class of files, possibly
with off-line reorganization."

Disordered files are created with ``client.create(name, disordered=True)``:
the Bridge Server scatters appended blocks across arbitrary slots and
keeps the global->local map.  :func:`reorganize` is the off-line step:
it rewrites a disordered file into a fresh, strictly interleaved one,
restoring round-robin's consecutive-blocks-on-distinct-nodes guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.client import BridgeClient


@dataclass
class ReorganizeResult:
    """Outcome of one off-line reorganization."""

    source: str
    dest: str
    blocks: int
    elapsed: float


def reorganize(client: BridgeClient, source: str, dest: str,
               delete_source: bool = True):
    """Rewrite ``source`` (disordered) into a strictly interleaved ``dest``.

    Generator; drive with ``system.run(reorganize(client, "a", "b"))``.
    This is deliberately the simple off-line procedure: read the file in
    global order (paying the disordered layout's poor locality) and
    append each block to a fresh strict file.
    """
    sim = client.node.machine.sim
    started = sim.now
    opened = yield from client.open(source)
    yield from client.create(dest, width=opened.width)
    for block in range(opened.total_blocks):
        data = yield from client.random_read(source, block)
        yield from client.seq_write(dest, data)
    if delete_source:
        yield from client.delete(source)
    return ReorganizeResult(
        source=source,
        dest=dest,
        blocks=opened.total_blocks,
        elapsed=sim.now - started,
    )


def scatter_quality(block_map, width: int) -> float:
    """Fraction of width-sized windows of a disordered map that touch all
    ``width`` distinct slots (1.0 = as good as strict interleaving)."""
    if width < 1 or len(block_map) < width:
        return 0.0
    good = 0
    windows = 0
    for base in range(0, len(block_map) - width + 1, width):
        slots = {block_map[base + i][0] for i in range(width)}
        windows += 1
        if len(slots) == width:
            good += 1
    return good / windows if windows else 0.0
