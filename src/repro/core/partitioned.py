"""A distributed collection of Bridge Servers (paper section 4.1).

"In our implementation the Bridge Server is a single centralized
process, though this need not be the case.  If requests to the server
are frequent enough to cause a bottleneck, the same functionality could
be provided by a distributed collection of processes."

This module provides exactly that: the file namespace is hash-partitioned
across several :class:`~repro.core.server.BridgeServer` instances, each a
full server over the same LFS set but owning a disjoint slice of names.
No cross-server coordination is needed because every file belongs to
exactly one partition — the simplest correct realization of the paper's
remark, and enough to remove the central-server ceiling the E17 bench
measures.
"""

from __future__ import annotations

import zlib
from typing import List

from repro.core.client import BridgeClient
from repro.core.server import BridgeServer
from repro.machine import Port


def partition_of(name: str, partitions: int) -> int:
    """Deterministic partition index for a file name."""
    if partitions < 1:
        raise ValueError("need at least one partition")
    return zlib.crc32(name.encode()) % partitions


class PartitionedBridge:
    """Routes each file name to its owning Bridge Server."""

    def __init__(self, servers: List[BridgeServer]) -> None:
        if not servers:
            raise ValueError("need at least one Bridge Server")
        self.servers = list(servers)

    def server_for(self, name: str) -> BridgeServer:
        return self.servers[partition_of(name, len(self.servers))]

    def port_for(self, name: str) -> Port:
        return self.server_for(name).port

    def __len__(self) -> int:
        return len(self.servers)


class PartitionedClient:
    """Naive-view client over a partitioned server collection.

    One underlying :class:`BridgeClient` per partition; every operation
    routes by file name, so callers use it exactly like a plain client.
    """

    def __init__(self, node, bridge: PartitionedBridge,
                 name: str = "pclient") -> None:
        self.node = node
        self.bridge = bridge
        self._clients = [
            BridgeClient(node, server.port, name=f"{name}.{index}")
            for index, server in enumerate(bridge.servers)
        ]

    def _client(self, name: str) -> BridgeClient:
        return self._clients[partition_of(name, len(self._clients))]

    # ------------------------------------------------------------------
    # Routed operations (same surface as BridgeClient)
    # ------------------------------------------------------------------

    def create(self, name, **kwargs):
        return (yield from self._client(name).create(name, **kwargs))

    def delete(self, name):
        return (yield from self._client(name).delete(name))

    def open(self, name):
        return (yield from self._client(name).open(name))

    def seq_read(self, name):
        return (yield from self._client(name).seq_read(name))

    def seq_write(self, name, data):
        return (yield from self._client(name).seq_write(name, data))

    def random_read(self, name, block_number):
        return (yield from self._client(name).random_read(name, block_number))

    def random_write(self, name, block_number, data):
        return (
            yield from self._client(name).random_write(name, block_number, data)
        )

    def read_all(self, name):
        return (yield from self._client(name).read_all(name))

    def write_all(self, name, chunks):
        return (yield from self._client(name).write_all(name, chunks))

    def get_info(self):
        """Get Info from partition 0 (all partitions share the LFS set)."""
        return (yield from self._clients[0].get_info())
