"""A distributed collection of Bridge Servers (paper section 4.1).

"In our implementation the Bridge Server is a single centralized
process, though this need not be the case.  If requests to the server
are frequent enough to cause a bottleneck, the same functionality could
be provided by a distributed collection of processes."

This module provides exactly that: the file namespace is hash-partitioned
across several :class:`~repro.core.server.BridgeServer` instances, each a
full server over the same LFS set but owning a disjoint slice of names.
No cross-server coordination is needed because every file belongs to
exactly one partition — the simplest correct realization of the paper's
remark, and enough to remove the central-server ceiling the E17 bench
measures.

Since S20 the partitioned namespace is a first-class *fabric*, not a
naive-view shim: :class:`PartitionedBridge` is the router every surface
accepts — :class:`PartitionedClient` carries the complete
:class:`~repro.core.client.BridgeClient` API (naive ops, list I/O,
block maps, cross-partition ``Get Info``),
:class:`~repro.core.parallel.JobController` and the tool framework
resolve their owning partition at open/create time, and the S16
redundancy wrappers plus the S18 cache/prefetcher (one instance per
partition) work unchanged at ``bridge_server_count > 1``.  S19 spans
propagate through every routed call, so one trace renders per-partition
server rows with cross-partition fan-out edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.client import BridgeClient
from repro.core.info import SystemInfo
from repro.core.server import BridgeServer
from repro.elastic.ring import ModuloRing
from repro.errors import BridgeBadRequestError
from repro.machine import Port, gather


class PartitionedBridge:
    """Routes each file name to its owning Bridge Server.

    This is the fabric handle: anything that accepts a server ``Port``
    for per-name operations can accept one of these instead and resolve
    the partition with :meth:`port_for` (the tool framework and
    :class:`~repro.core.parallel.JobController` do exactly that).

    Since S22 the routing map is a *ring* object (see
    :mod:`repro.elastic.ring`): ``servers`` is the provisioned set and
    the ring decides how many of them are active and which names they
    own.  The default ring is the seed's mod-k map over every
    provisioned server — byte-identical to the pre-elastic fabric — and
    :meth:`set_ring` is the (atomic, non-yielding) seam the S22 resizer
    flips during a live migration.
    """

    def __init__(self, servers: List[BridgeServer], ring=None) -> None:
        if not servers:
            raise ValueError("need at least one Bridge Server")
        self.servers = list(servers)
        if ring is None:
            ring = ModuloRing(len(self.servers))
        if ring.partitions > len(self.servers):
            raise ValueError(
                f"ring wants {ring.partitions} partitions but only "
                f"{len(self.servers)} servers are provisioned"
            )
        self.ring = ring

    @property
    def partitions(self) -> int:
        """Active partition count (the ring's, not the provisioned)."""
        return self.ring.partitions

    @property
    def active_servers(self) -> List[BridgeServer]:
        """The servers the ring currently routes to (a prefix of the
        provisioned set: partition ids are stable server indexes)."""
        return self.servers[: self.ring.partitions]

    @property
    def ports(self) -> List[Port]:
        """Every active partition's request port, in partition order."""
        return [server.port for server in self.active_servers]

    def set_ring(self, ring) -> None:
        """Swap the routing map (the S22 resize flip).  Synchronous and
        non-yielding by design: the resizer installs its forwarding net
        and flips in one atomic step."""
        if ring.partitions > len(self.servers):
            raise ValueError(
                f"ring wants {ring.partitions} partitions but only "
                f"{len(self.servers)} servers are provisioned"
            )
        self.ring = ring

    def partition_of(self, name: str) -> int:
        return self.ring.partition_of(name)

    def server_for(self, name: str) -> BridgeServer:
        return self.servers[self.partition_of(name)]

    def port_for(self, name: str) -> Port:
        return self.server_for(name).port

    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Aggregate S18 cache/prefetch counters across active partitions
        (``None`` when every partition runs cache-off)."""
        per_partition = [
            server.bridge_cache_stats() for server in self.active_servers
        ]
        live = [stats for stats in per_partition if stats is not None]
        if not live:
            return None
        totals: Dict[str, object] = {}
        for stats in live:
            for key, value in stats.items():
                if isinstance(value, (int, float)) and key != "hit_rate":
                    totals[key] = totals.get(key, 0) + value
        probes = (totals.get("hits", 0) or 0) + (totals.get("misses", 0) or 0)
        totals["hit_rate"] = (totals.get("hits", 0) / probes) if probes else 0.0
        totals["partitions"] = self.partitions
        totals["partitions_with_cache"] = len(live)
        return totals

    def __len__(self) -> int:
        return self.partitions


class PartitionedClient:
    """The complete client surface over a partitioned server collection.

    One underlying :class:`BridgeClient` per partition; every per-name
    operation routes by file name, so callers use it exactly like a
    plain client — the API-parity test asserts the surfaces match
    signature-for-signature.  ``Get Info`` is the one cross-partition
    operation: it fans out to every partition in a single windowed
    gather and aggregates the package.
    """

    def __init__(self, node, bridge: PartitionedBridge,
                 name: str = "pclient", traffic_class=None) -> None:
        self.node = node
        self.bridge = bridge
        self._clients = [
            BridgeClient(node, server.port, name=f"{name}.{index}",
                         traffic_class=traffic_class)
            for index, server in enumerate(bridge.servers)
        ]

    def _client(self, name: str) -> BridgeClient:
        return self._clients[self.bridge.partition_of(name)]

    # ------------------------------------------------------------------
    # Routed operations (same surface as BridgeClient)
    # ------------------------------------------------------------------

    def create(self, name, width=None, node_slots=None, start=0,
               disordered=False):
        return (
            yield from self._client(name).create(
                name, width=width, node_slots=node_slots, start=start,
                disordered=disordered,
            )
        )

    def get_block_map(self, name):
        return (yield from self._client(name).get_block_map(name))

    def delete(self, name):
        return (yield from self._client(name).delete(name))

    def open(self, name):
        return (yield from self._client(name).open(name))

    def stat(self, name):
        return (yield from self._client(name).stat(name))

    def seq_read(self, name):
        return (yield from self._client(name).seq_read(name))

    def seq_write(self, name, data):
        return (yield from self._client(name).seq_write(name, data))

    def random_read(self, name, block_number):
        return (yield from self._client(name).random_read(name, block_number))

    def random_write(self, name, block_number, data):
        return (
            yield from self._client(name).random_write(name, block_number, data)
        )

    def list_read(self, name, pattern):
        return (yield from self._client(name).list_read(name, pattern))

    def list_write(self, name, pattern, chunks=None):
        return (
            yield from self._client(name).list_write(name, pattern, chunks=chunks)
        )

    def read_all(self, name):
        return (yield from self._client(name).read_all(name))

    def write_all(self, name, chunks):
        return (yield from self._client(name).write_all(name, chunks))

    # ------------------------------------------------------------------
    # Cross-partition operations
    # ------------------------------------------------------------------

    def _window(self) -> int:
        """The fabric's fan-out window (``bridge_fanout_limit``; 0 =
        unbounded).  Every cross-partition fan-out below respects it."""
        return self.bridge.servers[0].config.bridge_fanout_limit

    def _fanout(self, label, calls, **attrs):
        """One windowed cross-partition gather under a single client
        span — the shared fan-out path behind the batched metadata ops,
        ``find``, and ``get_info``.  A count-4 trace shows one
        ``pclient.<label>`` span with legs to four server rows."""
        obs = self.node.machine.sim.obs
        span = None
        prev = None
        if obs is not None:
            prev = obs.current
            span = obs.begin(f"pclient.{label}", "client",
                             node=self.node.index)
            obs.set_current(span)
        try:
            results = yield from gather(
                self.node, calls, max_in_flight=self._window() or None
            )
        finally:
            if obs is not None:
                obs.end(span, **attrs)
                obs.set_current(prev)
        return results

    def _mop(self, method, names, args_of):
        """One batched metadata op across the fabric (S23).

        Buckets ``names`` by the live ring, splits each partition's
        bucket into window-sized sub-batches, and issues them all as one
        windowed gather — ``sum(ceil(k_i / window))`` RPCs for ``k_i``
        names on partition ``i`` instead of one per name (see
        ``repro.analysis.batched_rpc_count`` for the exact model).
        Outcomes are re-assembled in input order; duplicates keep
        per-occurrence outcomes.  Elastic-safe: the ring is consulted at
        issue time and the owning server chases any name caught in a
        migration's forwarding window.
        """
        names = list(names)
        if not names:
            return []
        buckets: Dict[int, List[int]] = {}
        for index, name in enumerate(names):
            buckets.setdefault(self.bridge.partition_of(name), []).append(index)
        window = self._window()
        calls = []
        slices = []
        for partition in sorted(buckets):
            indexes = buckets[partition]
            step = window if window > 0 else len(indexes)
            port = self.bridge.servers[partition].port
            for lo in range(0, len(indexes), step):
                chunk = indexes[lo:lo + step]
                calls.append(
                    (port, method, args_of([names[i] for i in chunk]), 0)
                )
                slices.append(chunk)
        batches = yield from self._fanout(
            method, calls, names=len(names), rpcs=len(calls)
        )
        outcomes = [None] * len(names)
        for chunk, batch in zip(slices, batches):
            for index, outcome in zip(chunk, batch):
                outcomes[index] = outcome
        return outcomes

    def mopen(self, names):
        """Batched Open; one windowed RPC per partition sub-batch."""
        return (
            yield from self._mop("mopen", names,
                                 lambda chunk: {"names": chunk})
        )

    def mstat(self, names):
        """Batched directory-only stat across the fabric."""
        return (
            yield from self._mop("mstat", names,
                                 lambda chunk: {"names": chunk})
        )

    def mcreate(self, names, width=None, node_slots=None, start=0,
                disordered=False):
        """Batched create; the shape parameters apply to every name."""
        return (
            yield from self._mop(
                "mcreate", names,
                lambda chunk: {"names": chunk, "width": width,
                               "node_slots": node_slots, "start": start,
                               "disordered": disordered},
            )
        )

    def mdelete(self, names):
        """Batched delete across the fabric."""
        return (
            yield from self._mop("mdelete", names,
                                 lambda chunk: {"names": chunk})
        )

    def find(self, prefix=""):
        """Union of every partition's prefix listing, sorted — the
        fabric's "recursive directory listing" under the parallel
        utilities."""
        calls = [(port, "find", {"prefix": prefix}, 0)
                 for port in self.bridge.ports]
        listings = yield from self._fanout("find", calls,
                                           partitions=len(calls))
        merged = []
        for listing in listings:
            merged.extend(listing)
        return sorted(merged)

    def get_info(self):
        """Aggregate ``Get Info`` across every partition.

        One fan-out through the shared windowed path (so a count-4 trace
        shows one client span with legs to four server rows); the
        partitions must agree on the LFS set — they always do in a
        well-formed fabric, and disagreement is a wiring bug worth
        failing loudly on.  The merged package carries every partition's
        request port in ``server_ports``.
        """
        calls = [(port, "get_info", {}, 0) for port in self.bridge.ports]
        infos = yield from self._fanout("get_info", calls,
                                        partitions=len(calls))
        first = infos[0]
        layout = [handle.node_index for handle in first.lfs]
        for index, info in enumerate(infos[1:], start=1):
            if [handle.node_index for handle in info.lfs] != layout:
                raise BridgeBadRequestError(
                    f"partition {index} disagrees on the LFS set "
                    f"(expected nodes {layout})"
                )
        return SystemInfo(
            lfs=list(first.lfs),
            server_port=first.server_port,
            server_ports=[info.server_port for info in infos],
        )
