"""Structural information packages returned by the Bridge Server.

``Get Info`` (Table 1) hands a program "a package of information...
sufficient to allow the new program to find the processors attached to
the disks" — that package is :class:`SystemInfo`.  ``Open`` returns the
"LFS file ids" — per-constituent facts collected in :class:`OpenResult`.
Holding an :class:`OpenResult` (plus :class:`SystemInfo`) is exactly what
makes a program a *tool*: it can thereafter talk to the LFS instances
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.addressing import InterleaveMap


@dataclass
class ConstituentInfo:
    """One column of an interleaved file, as stored on one LFS."""

    slot: int
    column: int
    node_index: int
    lfs_port: object  # machine Port of the EFS server
    efs_file_number: int
    size_blocks: int = 0
    head_addr: int = -1


@dataclass
class OpenResult:
    """Everything a client learns by opening an interleaved file."""

    name: str
    file_id: int
    width: int
    start: int
    total_blocks: int
    constituents: List[ConstituentInfo] = field(default_factory=list)

    @property
    def interleave(self) -> InterleaveMap:
        return InterleaveMap(self.width, self.start)

    def constituent_for_global(self, global_block: int) -> ConstituentInfo:
        """The constituent holding a given global block."""
        return self.constituents[self.interleave.slot_of(global_block)]


@dataclass
class LFSHandle:
    """One local file system instance: where it is and how to reach it."""

    node_index: int
    port: object


@dataclass
class SystemInfo:
    """The Get Info package: the middle-layer structure of the system.

    ``server_ports`` is populated by the partitioned fabric's aggregated
    Get Info: every partition's request port, in partition order (empty
    for a single centralized server, whose port is ``server_port``).
    """

    lfs: List[LFSHandle] = field(default_factory=list)
    server_port: Optional[object] = None
    server_ports: List[object] = field(default_factory=list)

    @property
    def width(self) -> int:
        return len(self.lfs)
