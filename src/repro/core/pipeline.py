"""S20: the staged Bridge request pipeline.

Every Bridge Server operation used to hand-roll the same sequence —
resolve the name, consult the S18 cache, forward to the right LFS
instances, gather, thread disk-address hints back.  This module makes
those stages explicit; the ``op_*`` handlers in
:mod:`repro.core.server` are thin declarative compositions of them.

The stages, in request order:

1. **admission & resolution** — :meth:`RequestPipeline.admit` charges
   the server CPU (``bridge_request``, plus the directory probe for
   monitor operations); :meth:`resolve` consults the Bridge directory;
   :meth:`commit` charges the directory-update cost after a mutation.
2. **cache** — :meth:`probe` is the synchronous Bridge-cache lookup
   (with S18 stream observation); :meth:`invalidate` is the
   invalidate-before-issue write guard; :meth:`demand_read` is the
   detached fill path with its generation-guarded install.
3. **redundancy interposition** — :meth:`interpose_read` /
   :meth:`interpose_write` walk the :attr:`interposers` chain, letting a
   redundancy scheme serve a read (degraded XOR reconstruction) or
   absorb a write (parity read-modify-write) before the plain fan-out.
   The default chain is empty, which is byte-for-byte the unprotected
   seed path.
4. **fan-out/gather** — every EFS message leaves through
   :meth:`fanout`, windowed by ``config.bridge_fanout_limit``;
   :meth:`spawn_staged` (sequential initiation, overlapped completion —
   the paper's section 4.5 create) and :meth:`spawn_tree` (relay-tree
   broadcast) are the two non-gather spawn shapes.
5. **prefetch feedback** — :meth:`feedback` threads next-block disk
   addresses from completed transfers into the hint table; the
   read-ahead top-up and inflight-wait coupling live on the demand and
   parallel delivery paths.

Adding an op handler means composing these stages, not re-implementing
them; adding a redundancy scheme means appending an interposer, not
editing seven handlers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import BLOCK_SIZE, DATA_BYTES_PER_BLOCK
from repro.core.directory import BridgeFileEntry
from repro.core.parallel import BlockDelivery, Deposit
from repro.errors import BridgeBadRequestError, BridgeJobError
from repro.machine import gather, gather_settled
from repro.machine.rpc import Detached, Request
from repro.sim import Timeout


class RequestPipeline:
    """The staged request engine of one Bridge Server instance."""

    __slots__ = ("server", "interposers")

    def __init__(self, server) -> None:
        self.server = server
        #: Redundancy interposition chain (stage 3).  Each entry may
        #: implement ``read(entry, name, block) -> generator | None``
        #: and/or ``write(entry, name, block, data) -> generator | None``;
        #: returning a generator claims the access.
        self.interposers: List[object] = []

    # ------------------------------------------------------------------
    # Stage 1: admission & resolution
    # ------------------------------------------------------------------

    def admit(self, probe: bool = False):
        """Charge the per-request server CPU; monitor operations (the
        directory mutators and Open) also pay the directory probe.

        When an S21 admission control is installed it is consulted
        first: a token-bucket refusal or a queue-depth shed charges only
        ``bridge_fast_reject`` and raises a typed
        :class:`~repro.errors.BridgeAdmissionError`, which ships back to
        the caller like any application error — the server never does
        directory or EFS work for a refused request."""
        server = self.server
        control = server.admission
        if control is not None:
            yield from control.admit(server, server._active_request)
        cpu = server.config.cpu
        yield Timeout(
            cpu.bridge_request + (cpu.bridge_directory_probe if probe else 0)
        )

    def admit_batch(self, count: int):
        """Stage-1 admission for an S23 multi-name metadata batch.

        The request decode (``bridge_request``) and the directory probe
        are paid *once* — a single sweep of the server's metadata
        storage fetches every requested entry — plus a per-name
        hash/entry charge (``bridge_batch_name``).  This amortization is
        the whole point of the batched surface: a singleton metadata op
        is dominated by the fixed 71 ms decode+probe, so n names in one
        batch cost a fraction of n singleton requests.  Admission
        control sees the batch as one request (it carries one envelope).
        """
        server = self.server
        control = server.admission
        if control is not None:
            yield from control.admit(server, server._active_request)
        cpu = server.config.cpu
        yield Timeout(
            cpu.bridge_request + cpu.bridge_directory_probe
            + cpu.bridge_batch_name * count
        )

    def resolve(self, name: str) -> BridgeFileEntry:
        """Name -> directory entry (raises BridgeFileNotFoundError)."""
        return self.server.directory.lookup(name)

    def commit(self):
        """Charge the directory-update cost after a monitor mutation."""
        yield Timeout(self.server.config.cpu.bridge_directory_update)

    # ------------------------------------------------------------------
    # Stage 2: cache
    # ------------------------------------------------------------------

    def probe(self, name: str, block: Optional[int] = None):
        """Synchronous Bridge-cache lookup ahead of request admission.

        ``block=None`` probes at the sequential cursor (advancing it on
        a hit).  Returns a complete hit :class:`Response` — charged at
        ``bridge_cache_hit`` instead of the full request decode — or
        ``None`` to fall through to the full pipeline.  Misses also feed
        the S18 stream detector (prefetch feedback starts here).
        """
        from repro.machine import Response

        server = self.server
        if server._cache is None:
            return None
        entry = server.directory.lookup(name)
        sequential = block is None
        target = server._cursors.get(name, 0) if sequential else block
        if 0 <= target < entry.total_blocks:
            if server._prefetcher is not None:
                server._prefetcher.observe(entry, name, target)
            data = server._cache.lookup(name, target)
            if data is not None:
                if sequential:
                    server._cursors[name] = target + 1
                yield Timeout(server.config.cpu.bridge_cache_hit)
                value = (target, data) if sequential else data
                return Response(value=value, size=len(data))
        return None

    def invalidate(self, name: str, *blocks: int) -> None:
        """Invalidate-before-issue: drop cached copies *before* the EFS
        write leaves so an in-flight read of the old value can never
        install stale data later."""
        if self.server._cache is not None:
            for block in blocks:
                self.server._cache.invalidate_block(name, block)

    def evict_file(self, name: str) -> None:
        """Full per-file eviction (create-over-delete, delete)."""
        if self.server._cache is not None:
            self.server._cache.invalidate_file(name)
        if self.server._prefetcher is not None:
            self.server._prefetcher.forget(name)

    def cached_or_inflight(self, name: str, block: int):
        """Cache lookup that also waits on an in-flight prefetch instead
        of duplicating its EFS request (parallel delivery path)."""
        server = self.server
        if server._cache is None:
            return None
        data = server._cache.lookup(name, block)
        if data is None and server._prefetcher is not None:
            signal = server._prefetcher.inflight_signal(name, block)
            if signal is not None:
                data = yield signal
                if data is not None:
                    server._cache.mark_used(name, block)
        return data

    # ------------------------------------------------------------------
    # Stage 3: redundancy interposition
    # ------------------------------------------------------------------

    def interpose_read(self, entry: BridgeFileEntry, name: str, block: int):
        """First interposer claiming the read serves it (degraded
        reconstruction); returns its data, or ``None`` when unclaimed."""
        for interposer in self.interposers:
            hook = getattr(interposer, "read", None)
            handler = hook(entry, name, block) if hook is not None else None
            if handler is not None:
                data = yield from handler
                return data
        return None

    def interpose_write(self, entry: BridgeFileEntry, name: str, block: int,
                        data: bytes):
        """First interposer claiming the write absorbs it (parity RMW);
        returns its result, or ``None`` when unclaimed."""
        for interposer in self.interposers:
            hook = getattr(interposer, "write", None)
            handler = hook(entry, name, block, data) if hook is not None else None
            if handler is not None:
                result = yield from handler
                return result
        return None

    # ------------------------------------------------------------------
    # Stage 4: fan-out / gather
    # ------------------------------------------------------------------

    def fanout(self, calls):
        """Windowed gather: every EFS message the server sends leaves
        through here, at most ``bridge_fanout_limit`` in flight (0 =
        unbounded, the seed default)."""
        results = yield from gather(
            self.server.node, calls,
            max_in_flight=self.server.config.bridge_fanout_limit or None,
        )
        return results

    def fanout_settled(self, calls):
        """Windowed gather whose per-call errors come back as values
        (``(value, error)`` pairs): the S23 batch handlers' fan-out for
        legs that must settle independently — chasing names through a
        migration's forwarding window — where one name's failure is that
        name's outcome, not the batch's."""
        results = yield from gather_settled(
            self.server.node, calls,
            max_in_flight=self.server.config.bridge_fanout_limit or None,
        )
        return results

    def spawn_staged(self, calls):
        """Paper create behavior (section 4.5): initiation and
        termination are sequential, the LFS work itself overlaps."""
        server = self.server
        reply_ports = []
        for port, method, args in calls:
            yield Timeout(server.config.cpu.bridge_create_dispatch)
            reply_port = server.node.port()
            server.node.send(port, Request(method, args, reply_port))
            reply_ports.append(reply_port)
        for reply_port in reply_ports:
            response = yield reply_port.recv()
            if response.error is not None:
                raise response.error

    def spawn_tree(self, entries, relay_method: str):
        """Improved create behavior: one message to the first relay,
        which fans out through an embedded binary tree (O(log p))."""
        yield Timeout(self.server.config.cpu.bridge_create_dispatch)
        results = yield from self.fanout(
            [(entries[0]["relay_port"], "relay",
              {"entries": entries, "relay_method": relay_method}, 0)],
        )
        return results[0]

    def read_call(self, entry: BridgeFileEntry, name: str, slot: int,
                  local: int):
        """One single-block EFS read leg, hint-threaded."""
        server = self.server
        return (server._slot_port(entry, slot), "read",
                {"file_number": entry.efs_file_numbers[slot],
                 "block_number": local,
                 "hint": server._hints.get((name, slot))}, 0)

    def write_call(self, entry: BridgeFileEntry, slot: int, local: int,
                   data: bytes, hint=None):
        """One single-block EFS write leg."""
        return (self.server._slot_port(entry, slot), "write",
                {"file_number": entry.efs_file_numbers[slot],
                 "block_number": local,
                 "data": data,
                 "hint": hint}, BLOCK_SIZE)

    # ------------------------------------------------------------------
    # Composed single-block paths (stages 2+3+4+5)
    # ------------------------------------------------------------------

    def demand_read(self, entry: BridgeFileEntry, name: str, block: int):
        """The detached half of a naive-view read whose synchronous
        probe missed: re-check the cache (a prefetch may have landed
        meanwhile), wait on an in-flight fetch instead of duplicating
        its EFS request, otherwise read from the source and install the
        result under the generation guard."""
        server = self.server
        if server._cache is None:
            data = yield from self._read_source(entry, name, block)
            return data
        data = server._cache.peek(name, block)
        if data is not None:
            return data
        if server._prefetcher is not None:
            signal = server._prefetcher.inflight_signal(name, block)
            if signal is not None:
                data = yield signal
                if data is not None:
                    server._cache.mark_used(name, block)
                    return data
                # The fetch was dropped (stale or errored): fall through
                # to a direct read so the demand path sees real state.
        generation = server._cache.generation(name)
        data = yield from self._read_source(entry, name, block)
        if server._cache.generation(name) == generation:
            server._cache.install(name, block, data)
        return data

    def _read_source(self, entry: BridgeFileEntry, name: str, block: int):
        """Stage 3 then stage 4: interposed or plain single-block read,
        with the hint feedback of stage 5."""
        data = yield from self.interpose_read(entry, name, block)
        if data is not None:
            return data
        slot, local = entry.locate_block(block)
        results = yield from self.fanout(
            [self.read_call(entry, name, slot, local)]
        )
        self.feedback(name, slot, results[0].next_addr)
        return results[0].data

    def place(self, entry: BridgeFileEntry, block: int) -> Tuple[int, int]:
        """Block placement: strict interleave, or the section-3
        disordered scatter (any slot will do) on append."""
        if entry.disordered and block == len(entry.block_map):
            rng = self.server.node.machine.sim.random.stream("bridge.disorder")
            slot = rng.randrange(entry.width)
            local = sum(1 for s, _l in entry.block_map if s == slot)
            entry.block_map.append((slot, local))
            return slot, local
        return entry.locate_block(block)

    def commit_write(self, entry: BridgeFileEntry, name: str, block: int,
                     data: bytes):
        """Interposed or plain single-block write."""
        result = yield from self.interpose_write(entry, name, block, data)
        if result is not None:
            return result
        slot, local = self.place(entry, block)
        results = yield from self.fanout(
            [self.write_call(entry, slot, local, data)]
        )
        return results[0]

    # ------------------------------------------------------------------
    # Composed batched paths (list I/O)
    # ------------------------------------------------------------------

    def decompose(self, entry: BridgeFileEntry, name: str,
                  blocks: List[int]) -> Dict[int, List[int]]:
        """Split a global block list per constituent, validating range."""
        per_slot: Dict[int, List[int]] = {}
        for block in blocks:
            if not 0 <= block < entry.total_blocks:
                raise BridgeBadRequestError(
                    f"{name!r}: block {block} outside file of "
                    f"{entry.total_blocks} blocks"
                )
            slot, local = entry.locate_block(block)
            per_slot.setdefault(slot, []).append(local)
        return per_slot

    def gather_batches(self, entry: BridgeFileEntry, name: str,
                       per_slot: Dict[int, List[int]]):
        """One batched ``read_blocks`` per touched LFS; returns the
        ``(slot, local) -> data`` map with hints fed back."""
        server = self.server
        slots = sorted(per_slot)
        calls = [
            (server._slot_port(entry, slot), "read_blocks",
             {"file_number": entry.efs_file_numbers[slot],
              "block_numbers": sorted(set(per_slot[slot])),
              "hint": server._hints.get((name, slot))}, 0)
            for slot in slots
        ]
        batches = yield from self.fanout(calls)
        by_location: Dict[Tuple[int, int], bytes] = {}
        for slot, batch in zip(slots, batches):
            for result in batch.results:
                by_location[(slot, result.block_number)] = result.data
            if batch.results:
                self.feedback(name, slot, batch.results[-1].next_addr)
        return by_location

    def validate_list_write(self, entry: BridgeFileEntry, name: str,
                            writes) -> int:
        """File-level no-sparse rule: in-place updates may scatter;
        appended blocks must form a dense run from the current end.
        Returns the file's new total size in blocks."""
        if entry.disordered:
            raise BridgeBadRequestError(
                f"{name!r}: list write is not supported on disordered "
                "files (use the naive view)"
            )
        targets = {block for block, _data in writes}
        new_total = max(entry.total_blocks, max(targets) + 1)
        missing = [
            block for block in range(entry.total_blocks, new_total)
            if block not in targets
        ]
        if missing:
            raise BridgeBadRequestError(
                f"{name!r}: list write appends must be dense; blocks "
                f"{missing[:4]}{'...' if len(missing) > 4 else ''} between "
                f"the current end ({entry.total_blocks}) and "
                f"{new_total - 1} are not covered"
            )
        for block, data in writes:
            if block < 0:
                raise BridgeBadRequestError(
                    f"{name!r}: negative block {block} in list write"
                )
            if len(data) > DATA_BYTES_PER_BLOCK:
                raise BridgeBadRequestError(
                    f"{name!r}: write of {len(data)} bytes exceeds data "
                    f"area {DATA_BYTES_PER_BLOCK}"
                )
        return new_total

    def scatter_batches(self, entry: BridgeFileEntry, name: str, writes):
        """One batched ``write_blocks`` per touched LFS."""
        server = self.server
        per_slot: Dict[int, List[Tuple[int, bytes]]] = {}
        for block, data in writes:
            slot, local = entry.interleave.locate(block)
            per_slot.setdefault(slot, []).append((local, data))
        calls = [
            (server._slot_port(entry, slot), "write_blocks",
             {"file_number": entry.efs_file_numbers[slot],
              "writes": slot_writes,
              "hint": server._hints.get((name, slot))},
             BLOCK_SIZE * len(slot_writes))
            for slot, slot_writes in sorted(per_slot.items())
        ]
        yield from self.fanout(calls)

    # ------------------------------------------------------------------
    # Composed parallel-view paths (lock-step delivery / collection)
    # ------------------------------------------------------------------

    def lockstep_groups(self, job):
        """Yield groups of at most p in-range ``(worker_index, block)``
        pairs; workers past EOF get their eof delivery as the group
        forms (lazily, preserving the lock-step interleaving)."""
        entry = job.entry
        t = len(job.worker_ports)
        for group_start in range(0, t, entry.width):
            group = []
            for index in range(group_start, min(group_start + entry.width, t)):
                block = job.cursor + index
                if block < entry.total_blocks:
                    group.append((index, block))
                else:
                    self.server.node.send(
                        job.worker_ports[index],
                        BlockDelivery(job.job_id, index, block, None, eof=True),
                    )
            if group:
                yield group

    def deliver_group(self, job, group):
        """Deliver one lock-step group: cache/in-flight hits ship
        immediately; the misses fan out as one gather."""
        server = self.server
        entry = job.entry
        delivered = 0
        pending = []
        for index, block in group:
            data = yield from self.cached_or_inflight(entry.name, block)
            if data is not None:
                if server.config.cpu.bridge_cache_hit:
                    yield Timeout(server.config.cpu.bridge_cache_hit)
                server.node.send(
                    job.worker_ports[index],
                    BlockDelivery(job.job_id, index, block, data),
                    size=len(data),
                )
                delivered += 1
            else:
                pending.append((index, block))
        if not pending:
            return delivered
        calls = []
        for _index, block in pending:
            slot, local = entry.locate_block(block)
            calls.append(self.read_call(entry, entry.name, slot, local))
        results = yield from self.fanout(calls)
        for (index, block), result in zip(pending, results):
            slot, _local = entry.locate_block(block)
            self.feedback(entry.name, slot, result.next_addr)
            server.node.send(
                job.worker_ports[index],
                BlockDelivery(job.job_id, index, block, result.data),
                size=len(result.data),
            )
            delivered += 1
        return delivered

    def collect_deposits(self, job) -> Dict[int, bytes]:
        """Wait for one deposit per worker on the job port."""
        t = len(job.worker_ports)
        deposits: Dict[int, bytes] = {}
        while len(deposits) < t:
            message = yield job.port.recv()
            if not isinstance(message, Deposit) or message.job_id != job.job_id:
                raise BridgeJobError(
                    f"job {job.job_id}: unexpected message {message!r}"
                )
            if message.worker_index in deposits:
                raise BridgeJobError(
                    f"job {job.job_id}: duplicate deposit from worker "
                    f"{message.worker_index}"
                )
            deposits[message.worker_index] = message.data
        return deposits

    def append_groups(self, entry: BridgeFileEntry, base: int,
                      chunks: Dict[int, bytes]):
        """Append t collected blocks in lock-step groups of p."""
        t = len(chunks)
        for group_start in range(0, t, entry.width):
            calls = []
            for index in range(group_start, min(group_start + entry.width, t)):
                block = base + index
                slot, local = entry.interleave.locate(block)
                calls.append(
                    self.write_call(entry, slot, local, chunks[index])
                )
            yield from self.fanout(calls)

    # ------------------------------------------------------------------
    # Stage 5: prefetch feedback / detachment
    # ------------------------------------------------------------------

    def feedback(self, name: str, slot: int, next_addr) -> None:
        """Thread a completed transfer's next-block disk address back
        into the hint table (the "optimized path" of section 4.1)."""
        self.server._hints[(name, slot)] = next_addr

    def top_up(self, entry: BridgeFileEntry, name: str, frontier: int,
               depth: int) -> None:
        """S18 double buffering: start fetching the next stripe while
        the current one is read and shipped.

        Skipped for names this partition migrated out (S22): a parallel
        job still pinned here may keep reading through the shared LFS
        set, but nothing of the departed file may be re-installed into
        this cache — the new owner's writes would never invalidate it.
        """
        server = self.server
        if server._prefetcher is not None and name not in server.migrated_out:
            server._prefetcher.top_up(entry, name, frontier, depth=depth)

    def detach(self, generator) -> Detached:
        """Hand the transfer half of an op to a side process so the
        central server only spends routing time per request."""
        return Detached(generator)
