"""The naive client view of Bridge.

"Users who want to access data without bothering with the interleaved
structure of files can use this simple interface" (section 4.1).  All
methods are generators to be driven with ``yield from`` inside simulated
processes.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE
from repro.machine import Client, Port


class BridgeClient:
    """Sequential-file-system-style access through the Bridge Server."""

    def __init__(self, node, server_port: Port, name: str = "bridge-client",
                 traffic_class=None) -> None:
        self.node = node
        self.server_port = server_port
        self._rpc = Client(node, name, traffic_class=traffic_class)

    # ------------------------------------------------------------------
    # File management
    # ------------------------------------------------------------------

    def create(self, name: str, width=None, node_slots=None, start: int = 0,
               disordered: bool = False):
        """Create an interleaved file; returns its file id.

        ``disordered=True`` creates a section-3 disordered file whose
        blocks scatter arbitrarily (see :mod:`repro.core.disorder`).
        """
        return (
            yield from self._rpc.call(
                self.server_port,
                "create",
                name=name,
                width=width,
                node_slots=node_slots,
                start=start,
                disordered=disordered,
            )
        )

    def get_block_map(self, name: str):
        """The global->local map of a disordered file."""
        return (yield from self._rpc.call(self.server_port, "get_block_map",
                                          name=name))

    def delete(self, name: str):
        """Delete a file; returns the total number of blocks freed."""
        return (yield from self._rpc.call(self.server_port, "delete", name=name))

    def open(self, name: str):
        """Open (a hint, per section 4.1); returns an OpenResult."""
        return (yield from self._rpc.call(self.server_port, "open", name=name))

    def stat(self, name: str):
        """Directory-only metadata probe; returns a FileStat (no LFS
        round trip — sizes are as of the last open/write)."""
        return (yield from self._rpc.call(self.server_port, "stat", name=name))

    def find(self, prefix: str = ""):
        """All file names with the given prefix, sorted (the flat
        namespace's "recursive directory listing")."""
        return (yield from self._rpc.call(self.server_port, "find",
                                          prefix=prefix))

    def get_info(self):
        """The Get Info package for tool construction."""
        return (yield from self._rpc.call(self.server_port, "get_info"))

    # ------------------------------------------------------------------
    # Batched metadata ops (S23)
    # ------------------------------------------------------------------
    #
    # Each issues ONE request carrying the whole name list and returns
    # one NameOutcome per name, in input order; a bad name is that
    # name's outcome, never an exception.  Against a partitioned fabric
    # use PartitionedClient, which buckets names by the live ring and
    # windows the per-partition batches.

    def mopen(self, names):
        """Batched Open; returns ``[NameOutcome(value=OpenResult)]``."""
        return (yield from self._rpc.call(self.server_port, "mopen",
                                          names=list(names)))

    def mstat(self, names):
        """Batched stat; returns ``[NameOutcome(value=FileStat)]``."""
        return (yield from self._rpc.call(self.server_port, "mstat",
                                          names=list(names)))

    def mcreate(self, names, width=None, node_slots=None, start: int = 0,
                disordered: bool = False):
        """Batched create (shared shape parameters); returns
        ``[NameOutcome(value=file_id)]``."""
        return (
            yield from self._rpc.call(
                self.server_port,
                "mcreate",
                names=list(names),
                width=width,
                node_slots=node_slots,
                start=start,
                disordered=disordered,
            )
        )

    def mdelete(self, names):
        """Batched delete; returns ``[NameOutcome(value=blocks_freed)]``."""
        return (yield from self._rpc.call(self.server_port, "mdelete",
                                          names=list(names)))

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------

    def seq_read(self, name: str):
        """Next block as ``(block_number, data)``; ``(None, None)`` at EOF."""
        return (yield from self._rpc.call(self.server_port, "seq_read", name=name))

    def seq_write(self, name: str, data: bytes):
        """Append one block; returns its global block number."""
        return (
            yield from self._rpc.call(
                self.server_port, "seq_write", size=BLOCK_SIZE, name=name, data=data
            )
        )

    def random_read(self, name: str, block_number: int):
        return (
            yield from self._rpc.call(
                self.server_port, "random_read", name=name, block_number=block_number
            )
        )

    def random_write(self, name: str, block_number: int, data: bytes):
        return (
            yield from self._rpc.call(
                self.server_port,
                "random_write",
                size=BLOCK_SIZE,
                name=name,
                block_number=block_number,
                data=data,
            )
        )

    # ------------------------------------------------------------------
    # List I/O (noncontiguous access)
    # ------------------------------------------------------------------

    def list_read(self, name: str, pattern):
        """Noncontiguous read through the Bridge Server's list-I/O path.

        ``pattern`` is a :class:`~repro.collective.ListIORequest` or any
        iterable of global block numbers.  Returns the data chunks in the
        pattern's request order; the server issues at most one batched
        EFS message per constituent LFS.
        """
        blocks = list(pattern.blocks()) if hasattr(pattern, "blocks") else list(pattern)
        return (
            yield from self._rpc.call(
                self.server_port, "list_read", name=name, blocks=blocks
            )
        )

    def list_write(self, name: str, pattern, chunks=None):
        """Noncontiguous write; returns the file's new size in blocks.

        Either pass ``pattern`` as a list of ``(global_block, data)``
        pairs, or as a :class:`~repro.collective.ListIORequest` / block
        iterable zipped against ``chunks`` in request order.
        """
        if chunks is None:
            writes = list(pattern)
        else:
            blocks = (
                list(pattern.blocks()) if hasattr(pattern, "blocks")
                else list(pattern)
            )
            chunks = list(chunks)
            if len(blocks) != len(chunks):
                raise ValueError(
                    f"pattern covers {len(blocks)} blocks but "
                    f"{len(chunks)} chunks were supplied"
                )
            writes = list(zip(blocks, chunks))
        return (
            yield from self._rpc.call(
                self.server_port,
                "list_write",
                size=BLOCK_SIZE * len(writes),
                name=name,
                writes=writes,
            )
        )

    # ------------------------------------------------------------------
    # Whole-file conveniences
    # ------------------------------------------------------------------

    def read_all(self, name: str):
        """Open and sequentially read the whole file; returns data chunks."""
        yield from self.open(name)
        chunks = []
        while True:
            block_number, data = yield from self.seq_read(name)
            if block_number is None:
                return chunks
            chunks.append(data)

    def write_all(self, name: str, chunks):
        """Append every chunk in order; returns the number written."""
        count = 0
        for chunk in chunks:
            yield from self.seq_write(name, chunk)
            count += 1
        return count
