"""Embedded-binary-tree broadcast relays (section 4.5).

The paper notes Create's "almost linear increase in overhead for
additional processors" and that "performance could be improved somewhat
by sending startup and completion messages through an embedded binary
tree."  A :class:`RelayServer` on each LFS node makes that improvement
real: the Bridge Server hands the whole per-slot work list to the first
relay, each relay performs its own slot's call against its local EFS and
forwards the two halves of the remainder to the relays heading them.
Completion acks flow back up the same tree, so both start-up and
completion are O(log p) deep.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.machine import Port, Server, gather
from repro.sim import Timeout


class RelayServer(Server):
    """Per-node broadcast relay for tree-structured file management."""

    def __init__(self, node, efs_port: Port, config: SystemConfig,
                 name: Optional[str] = None) -> None:
        super().__init__(node, name or f"relay{node.index}")
        self.efs_port = efs_port
        self.config = config

    def op_relay(self, entries, relay_method):
        """Handle ``entries[0]`` locally, forward halves of the rest.

        Each entry is ``{"efs_port", "relay_port", "args"}``; returns the
        list of per-entry results in entry order.
        """
        if not entries:
            return []
        mine, rest = entries[0], entries[1:]
        mid = len(rest) // 2
        halves = [half for half in (rest[:mid], rest[mid:]) if half]
        calls = [(mine["efs_port"], relay_method, mine["args"], 0)]
        for half in halves:
            yield Timeout(self.config.cpu.bridge_create_dispatch)
            calls.append(
                (half[0]["relay_port"], "relay",
                 {"entries": half, "relay_method": relay_method}, 0)
            )
        results = yield from gather(self.node, calls)
        own_result, child_results = results[0], results[1:]
        ordered = [own_result]
        for child in child_results:
            ordered.extend(child)
        return ordered
