"""Bridge core: the paper's primary contribution.

Interleaved-file addressing, the Bridge directory, the Bridge Server with
its three user views (naive, parallel-open, tool), and the parallel-job
machinery.
"""

from repro.core.addressing import InterleaveMap
from repro.core.batch import BATCH_SIZE_BOUNDS, FileStat, NameOutcome
from repro.core.cache import BridgeBlockCache
from repro.core.client import BridgeClient
from repro.core.directory import BridgeDirectory, BridgeFileEntry
from repro.core.disorder import ReorganizeResult, reorganize, scatter_quality
from repro.core.info import ConstituentInfo, LFSHandle, OpenResult, SystemInfo
from repro.core.parallel import (
    BlockDelivery,
    Deposit,
    JobController,
    JobInfo,
    ParallelWorker,
)
from repro.core.partitioned import PartitionedBridge, PartitionedClient
from repro.core.prefetch import Prefetcher, SequentialDetector
from repro.core.relay import RelayServer
from repro.core.server import BridgeServer

__all__ = [
    "BATCH_SIZE_BOUNDS",
    "BlockDelivery",
    "BridgeBlockCache",
    "BridgeClient",
    "BridgeDirectory",
    "BridgeFileEntry",
    "BridgeServer",
    "ConstituentInfo",
    "Deposit",
    "FileStat",
    "InterleaveMap",
    "JobController",
    "JobInfo",
    "LFSHandle",
    "NameOutcome",
    "PartitionedBridge",
    "PartitionedClient",
    "ReorganizeResult",
    "OpenResult",
    "ParallelWorker",
    "Prefetcher",
    "RelayServer",
    "SequentialDetector",
    "SystemInfo",
    "reorganize",
    "scatter_quality",
]
