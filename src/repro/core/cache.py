"""The Bridge Server's block cache (S18).

The paper's naive view pays one synchronous Bridge->LFS round trip per
block, which is why Table 2's sequential reads trail the parallel-open
and tool views even though all p disks sit idle between requests.  Later
parallel file systems closed this gap with *server-side* caching and
streaming (PVFS services noncontiguous requests ahead of the client;
ViPIOS overlaps disk access with transfer).  This module is the cache
half of that remedy: an LRU of recently-read (and read-ahead) blocks,
keyed by ``(file name, global block number)``, held by the Bridge Server
itself so repeat and prefetched reads are served without an EFS round
trip.

Coherence protocol (write-through invalidation):

* every write routed through the Bridge Server (``seq_write`` /
  ``random_write`` / ``list_write``) invalidates the written blocks and
  bumps the file's *generation* counter **before** the EFS write is
  issued, so a concurrently in-flight read or prefetch of the old value
  can never install stale data afterwards (installs are guarded by the
  generation captured at issue time);
* Delete and Create drop every cached block of the name;
* tool-view traffic goes straight to the LFS instances by design (the
  paper's explicit coherence trade), so it is outside the cache's
  domain — exactly as it is outside the Bridge directory's size
  bookkeeping.  Parity files do *both* their reads and writes
  tool-style, so they never observe the Bridge cache at all.

Cached payloads are always the 960-byte data areas exactly as an EFS
read returns them, so a cache hit is byte-identical to the uncached
system by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.obs.metrics import Counter


class BridgeBlockCache:
    """LRU block cache keyed by ``(file name, global block number)``.

    Purely synchronous (the Bridge Server charges its own CPU cost for
    hits); all I/O stays in the server/prefetcher.  Counters distinguish
    demand-installed from prefetched entries so the ablation bench and
    :mod:`repro.analysis.report` can price read-ahead waste: a
    prefetched block that is evicted, invalidated, or dropped stale
    before any read uses it counts as ``prefetch_wasted``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("bridge cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int], Tuple[bytes, bool]]" = (
            OrderedDict()
        )
        self._generations: Dict[str, int] = {}
        # Counters are repro.obs instruments behind int-returning
        # properties, so the pre-S19 integer-attribute API is unchanged
        # while a MetricsRegistry can adopt the live objects.
        self._hits = Counter()
        self._misses = Counter()
        self._installs = Counter()
        self._evictions = Counter()
        self._invalidations = Counter()
        self._prefetch_installs = Counter()
        self._prefetch_used = Counter()
        self._prefetch_wasted = Counter()

    # ------------------------------------------------------------------
    # Lookup / install
    # ------------------------------------------------------------------

    def lookup(self, name: str, block: int) -> Optional[bytes]:
        """The cached data area for a global block, or ``None`` (counted)."""
        key = (name, block)
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        data, prefetched = entry
        if prefetched:
            self._prefetch_used.inc()
            self._entries[key] = (data, False)
        self._entries.move_to_end(key)
        return data

    def contains(self, name: str, block: int) -> bool:
        """Presence probe with no LRU effect and no hit/miss accounting."""
        return (name, block) in self._entries

    def peek(self, name: str, block: int) -> Optional[bytes]:
        """Like :meth:`lookup` but without hit/miss accounting.

        Used by the detached demand path to re-check the cache after its
        miss was already counted synchronously — each client read counts
        exactly one hit or one miss.
        """
        key = (name, block)
        entry = self._entries.get(key)
        if entry is None:
            return None
        data, prefetched = entry
        if prefetched:
            self._prefetch_used.inc()
            self._entries[key] = (data, False)
        self._entries.move_to_end(key)
        return data

    def mark_used(self, name: str, block: int) -> None:
        """Clear a block's prefetched flag after a demand read consumed
        the in-flight fetch's result directly (a used prefetch even if
        the block is later evicted untouched)."""
        key = (name, block)
        entry = self._entries.get(key)
        if entry is not None and entry[1]:
            self._prefetch_used.inc()
            self._entries[key] = (entry[0], False)
            self._entries.move_to_end(key)

    def install(self, name: str, block: int, data: bytes,
                prefetched: bool = False) -> None:
        """Insert (or refresh) one block, evicting LRU entries as needed."""
        key = (name, block)
        stale = self._entries.pop(key, None)
        if stale is not None and stale[1]:
            self._prefetch_wasted.inc()  # re-fetched before anyone used it
        while len(self._entries) >= self.capacity:
            _victim, (_data, was_prefetched) = self._entries.popitem(last=False)
            self._evictions.inc()
            if was_prefetched:
                self._prefetch_wasted.inc()
        self._entries[key] = (data, prefetched)
        self._installs.inc()
        if prefetched:
            self._prefetch_installs.inc()

    # ------------------------------------------------------------------
    # Invalidation (the write-through protocol) and generations
    # ------------------------------------------------------------------

    def generation(self, name: str) -> int:
        """The file's write generation; bumped by every invalidation.

        Asynchronous readers capture the generation when they *issue* an
        EFS read and install the result only if it is unchanged, which
        makes install-after-invalidate races harmless.
        """
        return self._generations.get(name, 0)

    def bump_generation(self, name: str) -> None:
        self._generations[name] = self._generations.get(name, 0) + 1

    def invalidate_block(self, name: str, block: int) -> None:
        """Drop one block and bump the file's generation."""
        self.bump_generation(name)
        entry = self._entries.pop((name, block), None)
        if entry is not None:
            self._invalidations.inc()
            if entry[1]:
                self._prefetch_wasted.inc()

    def invalidate_file(self, name: str) -> None:
        """Drop every cached block of ``name`` and bump its generation."""
        self.bump_generation(name)
        victims = [key for key in self._entries if key[0] == name]
        for key in victims:
            _data, prefetched = self._entries.pop(key)
            self._invalidations.inc()
            if prefetched:
                self._prefetch_wasted.inc()

    # ------------------------------------------------------------------
    # Counter facade + metrics registration (S19)
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def installs(self) -> int:
        return self._installs.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def prefetch_installs(self) -> int:
        return self._prefetch_installs.value

    @property
    def prefetch_used(self) -> int:
        return self._prefetch_used.value

    @property
    def prefetch_wasted(self) -> int:
        return self._prefetch_wasted.value

    def bind_metrics(self, registry, prefix: str = "bridge.cache") -> None:
        """Adopt this cache's live counters into a MetricsRegistry."""
        registry.adopt(f"{prefix}.hit", self._hits)
        registry.adopt(f"{prefix}.miss", self._misses)
        registry.adopt(f"{prefix}.install", self._installs)
        registry.adopt(f"{prefix}.eviction", self._evictions)
        registry.adopt(f"{prefix}.invalidation", self._invalidations)
        registry.adopt(f"{prefix}.prefetch_install", self._prefetch_installs)
        registry.adopt(f"{prefix}.prefetch_used", self._prefetch_used)
        registry.adopt(f"{prefix}.prefetch_wasted", self._prefetch_wasted)

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BridgeBlockCache({len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
