"""The Bridge Server (paper section 4.1, Table 1).

"The Bridge Server is the interface between the Bridge file system and
user programs.  Its function is to glue the local file systems together
into a single logical structure."  It is a single centralized process
(the paper notes a distributed collection would also work); all directory
mutations (Create, Delete, Open) funnel through it, making it a monitor
around file management.

Three views are implemented:

1. the **naive view** — Create / Delete / Open / Sequential Read /
   Random Read / Sequential Write / Random Write, with the server
   transparently forwarding each block request to the right LFS and
   threading disk-address hints (the "optimized path" set up by Open);
2. the **parallel-open view** — jobs of t workers with lock-step
   multi-block transfers and virtual parallelism when t > p;
3. the **tool view** — Get Info plus the constituent information that
   Open returns, after which tools talk to the LFS instances directly.

Open is "interpreted as a hint...  There is no close operation" — the
server refreshes its cached cursor/size/hint state at every open.

Since S20 every op handler is a thin composition of the staged request
pipeline (:mod:`repro.core.pipeline`): admission/resolution, cache,
redundancy interposition, windowed fan-out/gather, prefetch feedback.
The handlers below own only per-op argument validation and directory
state; all forwarding, caching, and gathering goes through the stages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.batch import BATCH_SIZE_BOUNDS, FileStat, NameOutcome
from repro.core.cache import BridgeBlockCache
from repro.core.directory import BridgeDirectory, BridgeFileEntry
from repro.core.info import ConstituentInfo, LFSHandle, OpenResult, SystemInfo
from repro.core.parallel import JobInfo
from repro.core.pipeline import RequestPipeline
from repro.core.prefetch import Prefetcher
from repro.errors import BridgeBadRequestError, BridgeError, BridgeJobError
from repro.machine import Port, Response, Server
from repro.sim import Timeout


class _Job:
    """Server-side state of one parallel-open job."""

    __slots__ = ("job_id", "entry", "worker_ports", "cursor", "port")

    def __init__(self, job_id: int, entry: BridgeFileEntry,
                 worker_ports: List[Port], port: Port) -> None:
        self.job_id = job_id
        self.entry = entry
        self.worker_ports = worker_ports
        self.cursor = 0
        self.port = port


class BridgeServer(Server):
    """The centralized Bridge Server process."""

    def __init__(
        self,
        node,
        lfs_handles: List[LFSHandle],
        config: SystemConfig,
        relay_ports: Optional[List[Port]] = None,
        name: str = "bridge",
        file_id_start: int = 1,
        file_id_step: int = 1,
    ) -> None:
        if not lfs_handles:
            raise ValueError("Bridge needs at least one LFS instance")
        super().__init__(node, name)
        self.lfs = list(lfs_handles)
        self.config = config
        self.relay_ports = list(relay_ports) if relay_ports else None
        self.directory = BridgeDirectory(
            file_id_start=file_id_start, file_id_step=file_id_step
        )
        self._cursors: Dict[str, int] = {}
        self._hints: Dict[Tuple[str, int], int] = {}
        self._jobs: Dict[int, _Job] = {}
        self._next_job_id = 1
        # S18: server-side block cache + striped read-ahead.  Both off by
        # default (cache-off reproduces the paper's timings exactly); a
        # prefetch window without an explicit cache size auto-sizes the
        # cache to hold a few windows per constituent.
        cache_blocks = config.bridge_cache_blocks
        if config.prefetch_window > 0 and cache_blocks <= 0:
            cache_blocks = 4 * config.prefetch_window * len(self.lfs)
        self._cache: Optional[BridgeBlockCache] = (
            BridgeBlockCache(cache_blocks) if cache_blocks > 0 else None
        )
        self._prefetcher: Optional[Prefetcher] = (
            Prefetcher(self, self._cache, config.prefetch_window)
            if config.prefetch_window > 0 and self._cache is not None
            else None
        )
        # S20: the staged request engine every op composes.
        self.pipeline = RequestPipeline(self)
        # S21: admission control (token bucket / bounded queue / weighted
        # fair queueing).  None — the seed default — admits everything
        # with zero extra branches on the hot path.
        self.admission = None
        # S22 live migration: routing cost of a forwarded request, the
        # methods the base loop must never redirect (the migration RPCs
        # themselves carry ``name`` but must execute where addressed),
        # and the names this partition has migrated *out* — consulted by
        # the prefetcher seam so a still-pinned parallel job cannot
        # re-install blocks of a departed file into this cache.
        self._forward_cost = config.cpu.bridge_forward
        self._forward_exempt = frozenset({"migrate_in", "migrate_out"})
        self.migrated_out: set = set()

    def install_admission(self, control) -> None:
        """Attach an S21 admission control to this server instance.

        Installs the policy at the pipeline admission stage and, when the
        policy carries a queue, fronts the server mailbox with it (the
        base ``Server._next_request`` seam).  Call at any point — e.g.
        after experiment setup so catalog builds are not rate-limited."""
        self.admission = control
        self.scheduler = getattr(control, "queue", None) if control is not None else None
        if control is not None:
            control.bind(self)

    # ==================================================================
    # File management (the monitor)
    # ==================================================================

    def op_create(self, name, width=None, node_slots=None, start=0,
                  disordered=False):
        """Create an interleaved file across ``width`` LFS instances.

        ``node_slots`` optionally picks which LFS handles (by index into
        the system's LFS list) serve slots 0..width-1 — the sort tool uses
        this to build intermediate files on node subsets.  ``disordered``
        creates a section-3 "disordered file": blocks scatter arbitrarily
        (the server keeps the global->local map) at the expense of strict
        interleaving's consecutive-block guarantee.
        """
        yield from self.pipeline.admit(probe=True)
        file_id = yield from self._create_one(
            name, width, node_slots, start, disordered
        )
        yield from self.pipeline.commit()
        return file_id

    def _create_one(self, name, width, node_slots, start, disordered):
        """The create body shared by ``op_create`` and ``op_mcreate``:
        everything between the admission charge and the directory-update
        commit — validation, the staged/tree constituent spawn, and the
        directory insert."""
        if self.directory.exists(name):
            from repro.errors import BridgeFileExistsError

            raise BridgeFileExistsError(f"bridge file {name!r} exists")
        slots = self._resolve_slots(width, node_slots)
        width = len(slots)
        if not 0 <= start < width:
            raise BridgeBadRequestError(f"start {start} outside width {width}")
        file_id = self.directory.allocate_file_id()
        entry = BridgeFileEntry(
            name=name,
            file_id=file_id,
            width=width,
            start=start,
            node_indexes=[self.lfs[s].node_index for s in slots],
            efs_file_numbers=[file_id] * width,
            total_blocks=0,
            disordered=disordered,
            block_map=[] if disordered else None,
        )
        args_per_slot = [
            {
                "file_number": file_id,
                "global_file_id": file_id,
                "width": width,
                "column": entry.interleave.column_of_slot(slot),
            }
            for slot in range(width)
        ]
        if self.config.create_uses_tree and self.relay_ports is not None:
            yield from self.pipeline.spawn_tree(
                [
                    {
                        "efs_port": self.lfs[slot].port,
                        "relay_port": self.relay_ports[slot],
                        "args": args,
                    }
                    for slot, args in zip(slots, args_per_slot)
                ],
                relay_method="create",
            )
        else:
            yield from self.pipeline.spawn_staged(
                [(self.lfs[slot].port, "create", args)
                 for slot, args in zip(slots, args_per_slot)]
            )
        self.directory.insert(entry)
        self._cursors[name] = 0
        # Name reuse after delete: nothing cached may survive.
        self.pipeline.evict_file(name)
        self.migrated_out.discard(name)
        return file_id

    def op_delete(self, name):
        """Delete on all LFS in parallel; each LFS walk is O(n/p).

        Directory removal happens synchronously (the server is the
        monitor around file management), but the LFS walks — seconds for
        big files — run detached so one large delete does not serialize
        every other client behind the central server.
        """
        yield from self.pipeline.admit(probe=True)
        entry = self.pipeline.resolve(name)
        self.directory.remove(name)
        yield from self.pipeline.commit()
        self._cursors.pop(name, None)
        for slot in range(entry.width):
            self._hints.pop((name, slot), None)
        self.pipeline.evict_file(name)

        def reap():
            freed = yield from self.pipeline.fanout(
                [
                    (self._slot_port(entry, slot), "delete",
                     {"file_number": entry.efs_file_numbers[slot]}, 0)
                    for slot in range(entry.width)
                ]
            )
            return sum(freed)

        return self.pipeline.detach(reap())

    def op_open(self, name):
        """Set up the optimized path: refresh sizes and hints, reset the
        sequential cursor, and return the constituent information."""
        yield from self.pipeline.admit(probe=True)
        entry = self.pipeline.resolve(name)
        infos = yield from self.pipeline.fanout(
            [
                (self._slot_port(entry, slot), "info",
                 {"file_number": entry.efs_file_numbers[slot]}, 0)
                for slot in range(entry.width)
            ]
        )
        return self._open_result(name, entry, infos)

    def _open_result(self, name, entry, infos) -> OpenResult:
        """Turn one name's per-constituent ``info`` replies into the open
        package: size reconciliation, hint feedback, cursor reset.
        Shared by ``op_open`` and ``op_mopen`` (synchronous — the fan-out
        already happened)."""
        sizes = [info.size_blocks for info in infos]
        if entry.disordered:
            if sum(sizes) != len(entry.block_map or []):
                raise BridgeBadRequestError(
                    f"{name!r}: disordered map has {len(entry.block_map or [])} "
                    f"entries but the LFS hold {sum(sizes)} blocks (disordered "
                    "files must be written through the Bridge Server)"
                )
            entry.total_blocks = sum(sizes)
        else:
            entry.total_blocks = entry.interleave.total_from_sizes(sizes)
        constituents = []
        for slot, info in enumerate(infos):
            constituents.append(
                ConstituentInfo(
                    slot=slot,
                    column=entry.interleave.column_of_slot(slot),
                    node_index=entry.node_indexes[slot],
                    lfs_port=self._slot_port(entry, slot),
                    efs_file_number=entry.efs_file_numbers[slot],
                    size_blocks=info.size_blocks,
                    head_addr=info.head_addr,
                )
            )
            self.pipeline.feedback(name, slot, info.head_addr)
        self._cursors[name] = 0
        return OpenResult(
            name=name,
            file_id=entry.file_id,
            width=entry.width,
            start=entry.start,
            total_blocks=entry.total_blocks,
            constituents=constituents,
        )

    def op_stat(self, name):
        """Directory-only metadata probe: what the server knows without
        an LFS round trip.  ``total_blocks`` is as of the last open or
        write through this server — Open itself is only "a hint"
        (section 4.1), so a stat is the cheap hint-refresh parallel
        utilities want when walking thousands of names."""
        yield from self.pipeline.admit(probe=True)
        return self._stat_of(self.pipeline.resolve(name))

    def op_find(self, prefix=""):
        """Enumerate directory names with a prefix, sorted.

        The Bridge namespace is flat, so a "deep tree" is a family of
        ``/``-separated name prefixes; one find per partition is the
        enumeration primitive under ``pfind``/``pcp -r``/``prm -r``.
        Names whose migration is in flight at this instant live in
        exactly one partition's directory or in the mover's hands, so a
        cross-partition find during a resize sweep can miss an in-flight
        name — utilities enumerate before or after a sweep, and the
        batched m-ops (which chase forwards per name) are the
        migration-safe surface.
        """
        yield from self.pipeline.admit(probe=True)
        return [name for name in self.directory.names()
                if name.startswith(prefix)]

    def _stat_of(self, entry: BridgeFileEntry) -> FileStat:
        return FileStat(
            name=entry.name,
            file_id=entry.file_id,
            width=entry.width,
            start=entry.start,
            total_blocks=entry.total_blocks,
            disordered=entry.disordered,
        )

    def op_get_info(self):
        """The tool bootstrap package (Table 1: Get Info -> LFS handles)."""
        yield from self.pipeline.admit()
        return SystemInfo(lfs=list(self.lfs), server_port=self.port)

    # ==================================================================
    # S23 batched metadata ops
    # ==================================================================
    #
    # Each handler serves many names in one request: the decode and
    # directory probe are paid once (pipeline.admit_batch), per-name
    # results come back as NameOutcome records in request order, and a
    # bad name is *that name's* outcome, never the batch's.  The base
    # loop's forwarding seam keys on the singular ``name`` argument, so
    # batched requests are never redirected wholesale — instead each
    # handler splits its batch against ``forward_to`` and chases the
    # moved names with singleton ops from a detached side process (the
    # server keeps serving; two partitions chasing into each other can
    # never deadlock the fabric).

    def op_mopen(self, names):
        """Batched Open: one windowed info fan-out covers every
        ``(name, slot)`` leg of the whole batch."""
        names = self._batch_begin("mopen", names)
        yield from self.pipeline.admit_batch(len(names))
        local, moved = self._split_batch(names)
        outcomes: List[Optional[NameOutcome]] = [None] * len(names)
        entries = []
        for index in local:
            name = names[index]
            try:
                entries.append((index, name, self.pipeline.resolve(name)))
            except BridgeError as exc:
                outcomes[index] = NameOutcome(name, error=exc)
        calls = []
        legs = []
        for index, name, entry in entries:
            for slot in range(entry.width):
                calls.append(
                    (self._slot_port(entry, slot), "info",
                     {"file_number": entry.efs_file_numbers[slot]}, 0)
                )
                legs.append(index)
        infos = yield from self.pipeline.fanout(calls)
        per_index: Dict[int, List] = {}
        for index, info in zip(legs, infos):
            per_index.setdefault(index, []).append(info)
        for index, name, entry in entries:
            try:
                outcomes[index] = NameOutcome(
                    name,
                    value=self._open_result(name, entry, per_index.get(index, [])),
                )
            except BridgeError as exc:
                outcomes[index] = NameOutcome(name, error=exc)
        return self._settle(outcomes, moved, "open")

    def op_mstat(self, names):
        """Batched stat: directory-only, no LFS traffic at all — the
        whole batch is served out of the one metadata sweep that
        ``admit_batch`` charges."""
        names = self._batch_begin("mstat", names)
        yield from self.pipeline.admit_batch(len(names))
        local, moved = self._split_batch(names)
        outcomes: List[Optional[NameOutcome]] = [None] * len(names)
        for index in local:
            name = names[index]
            try:
                outcomes[index] = NameOutcome(
                    name, value=self._stat_of(self.pipeline.resolve(name))
                )
            except BridgeError as exc:
                outcomes[index] = NameOutcome(name, error=exc)
        return self._settle(outcomes, moved, "stat")

    def op_mcreate(self, names, width=None, node_slots=None, start=0,
                   disordered=False):
        """Batched create: per-name validation and the staged/tree
        constituent spawns run name by name (the monitor serializes
        directory mutations), but the probe and the directory-update
        commit are paid once for the whole batch.  A duplicate name —
        in the directory or earlier in the same batch — gets the same
        exists error the singleton op raises."""
        names = self._batch_begin("mcreate", names)
        yield from self.pipeline.admit_batch(len(names))
        local, moved = self._split_batch(names)
        outcomes: List[Optional[NameOutcome]] = [None] * len(names)
        for index in local:
            name = names[index]
            try:
                file_id = yield from self._create_one(
                    name, width, node_slots, start, disordered
                )
            except BridgeError as exc:
                outcomes[index] = NameOutcome(name, error=exc)
            else:
                outcomes[index] = NameOutcome(name, value=file_id)
        yield from self.pipeline.commit()
        return self._settle(
            outcomes, moved, "create",
            {"width": width, "node_slots": node_slots, "start": start,
             "disordered": disordered},
        )

    def op_mdelete(self, names):
        """Batched delete: directory removals and cache-generation bumps
        happen synchronously per name — exactly like ``op_delete`` — with
        one commit for the batch; every LFS walk then runs in a single
        detached windowed fan-out, so one big batch never serializes
        unrelated clients behind the server."""
        names = self._batch_begin("mdelete", names)
        yield from self.pipeline.admit_batch(len(names))
        local, moved = self._split_batch(names)
        outcomes: List[Optional[NameOutcome]] = [None] * len(names)
        victims = []
        for index in local:
            name = names[index]
            try:
                entry = self.pipeline.resolve(name)
            except BridgeError as exc:
                outcomes[index] = NameOutcome(name, error=exc)
                continue
            self.directory.remove(name)
            self._cursors.pop(name, None)
            for slot in range(entry.width):
                self._hints.pop((name, slot), None)
            self.pipeline.evict_file(name)
            victims.append((index, name, entry))
        yield from self.pipeline.commit()

        def reap():
            calls = []
            legs = []
            for index, _name, entry in victims:
                for slot in range(entry.width):
                    calls.append(
                        (self._slot_port(entry, slot), "delete",
                         {"file_number": entry.efs_file_numbers[slot]}, 0)
                    )
                    legs.append(index)
            freed = yield from self.pipeline.fanout(calls)
            totals: Dict[int, int] = {}
            for index, count in zip(legs, freed):
                totals[index] = totals.get(index, 0) + count
            for index, name, _entry in victims:
                outcomes[index] = NameOutcome(name, value=totals.get(index, 0))
            if moved:
                yield from self._chase(outcomes, moved, "delete")
            return outcomes

        return self.pipeline.detach(reap())

    # -- batch internals ------------------------------------------------

    def _batch_begin(self, op: str, names) -> List[str]:
        """Validate and count one incoming batch (S19 telemetry: the
        batch-size histogram plus per-op batched counters, so SLO
        dashboards can tell batched from singleton metadata traffic)."""
        names = list(names)
        if not names:
            raise BridgeBadRequestError(f"{op}: empty name batch")
        obs = self.node.machine.sim.obs
        if obs is not None:
            obs.metrics.histogram(
                "bridge.batch.names", BATCH_SIZE_BOUNDS
            ).observe(len(names))
            obs.metrics.counter(f"{self.name}.batch.{op}.batches").inc()
            obs.metrics.counter(f"{self.name}.batch.{op}.names").inc(len(names))
        return names

    def _split_batch(self, names: List[str]):
        """Partition a batch against the S22 forwarding table: indexes
        served locally vs ``(index, name, target)`` entries caught in a
        migration's double-read window."""
        if not self.forward_to:
            return list(range(len(names))), []
        local = []
        moved = []
        for index, name in enumerate(names):
            target = self.forward_to.get(name)
            if target is None:
                local.append(index)
            else:
                moved.append((index, name, target))
        return local, moved

    def _settle(self, outcomes, moved, method, extra_args=None):
        """Finish a batch: complete immediately when nothing was caught
        mid-migration, otherwise chase the moved names from a detached
        side process so this server keeps serving meanwhile."""
        if not moved:
            return outcomes
        return self.pipeline.detach(
            self._chase(outcomes, moved, method, extra_args)
        )

    def _chase(self, outcomes, moved, method, extra_args=None):
        """Forward batch members through the S22 double-read window as
        singleton ops on the entry's new home, settling each name
        independently (the target's own loop forwards any further hop).
        Charges the same per-request routing CPU as a loop-level
        redirect."""
        if self._forward_cost > 0.0:
            yield Timeout(self._forward_cost * len(moved))
        self.forwarded += len(moved)
        calls = []
        for _index, name, target in moved:
            args = {"name": name}
            if extra_args:
                args.update(extra_args)
            calls.append((target, method, args, 0))
        settled = yield from self.pipeline.fanout_settled(calls)
        for (index, name, _target), (value, error) in zip(moved, settled):
            outcomes[index] = NameOutcome(name, value=value, error=error)
        return outcomes

    # ==================================================================
    # S22 live migration (the elastic fabric's entry-move protocol)
    # ==================================================================

    def op_migrate_out(self, name, forward_to=None):
        """Release ``name`` to the partition now owning it.

        Called *by the destination server* (nested inside its
        ``migrate_in``).  Removes the directory entry, cursor, and disk
        hints; bumps the S18 cache generation for the name (evicting
        every cached block and invalidating any in-flight install); and
        leaves a forwarding entry to ``forward_to`` so requests routed
        by the old ring chase the entry to its new home.  Block data
        never moves — every partition serves the same LFS set, so the
        namespace entry *is* the file's location.  Returns ``None`` when
        the entry vanished (deleted mid-sweep): the destination then
        simply retires its redirect.
        """
        yield from self.pipeline.admit(probe=True)
        if not self.directory.exists(name):
            return None
        entry = self.directory.remove(name)
        cursor = self._cursors.pop(name, None)
        for slot in range(entry.width):
            self._hints.pop((name, slot), None)
        self.pipeline.evict_file(name)
        self.migrated_out.add(name)
        if forward_to is not None:
            self.forward_to[name] = forward_to
        yield from self.pipeline.commit()
        return {"entry": entry, "cursor": cursor}

    def op_migrate_in(self, name, src_port):
        """Pull ``name``'s namespace entry from its old partition.

        The destination drives the pull itself so there is no window
        where both sides forward to each other: its redirect for
        ``name`` stays up until the entry has landed, and because the
        server is one simulated process, any request that queued behind
        this handler dispatches only after the insert below.  The entry
        object moves by reference, so a parallel job still pinned to the
        source keeps operating on the same (shared-LFS) file state.
        Returns True if the entry moved, False if it had vanished.
        """
        # Plain admit: the probe happens at the source (which consults
        # its directory); this side's insert is covered by commit().
        yield from self.pipeline.admit()
        states = yield from self.pipeline.fanout(
            [(src_port, "migrate_out",
              {"name": name, "forward_to": self.port}, 0)]
        )
        state = states[0]
        self.forward_to.pop(name, None)
        if state is None:
            yield from self.pipeline.commit()
            return False
        self.directory.insert(state["entry"])
        if state["cursor"] is not None:
            self._cursors[name] = state["cursor"]
        # Defensive coherence: nothing cached locally may survive an
        # ownership change (a prior residency, or a prior migration of a
        # since-recreated name).
        self.pipeline.evict_file(name)
        self.migrated_out.discard(name)
        yield from self.pipeline.commit()
        return True

    # ==================================================================
    # Naive view: sequential and random block access
    # ==================================================================

    def op_seq_read(self, name):
        """Read the block at the cursor; returns (block_number, data) or
        (None, None) at end of file.

        The cursor advances synchronously; the LFS transfer itself is
        *forwarded* (detached), so the central server only spends routing
        time per request — "the Bridge Server transparently forwards
        requests to the appropriate LFS" (section 4.1).

        With the S18 cache/prefetch pipeline enabled, the cursor stream
        is recognized as sequential and the next ``prefetch_window * p``
        blocks are fetched asynchronously from all constituents; cache
        hits are answered in-line for ``bridge_cache_hit`` (a hash probe
        and LRU touch instead of the full request decode + directory
        consult + EFS round trip).
        """
        hit = yield from self.pipeline.probe(name)
        if hit is not None:
            return hit
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        cursor = self._cursors.get(name, 0)
        if cursor >= entry.total_blocks:
            return Response(value=(None, None))
        self._cursors[name] = cursor + 1

        def forward():
            data = yield from self.pipeline.demand_read(entry, name, cursor)
            return Response(value=(cursor, data), size=len(data))

        return self.pipeline.detach(forward())

    def op_seq_write(self, name, data):
        """Append one block at the end of the file."""
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        block = entry.total_blocks
        self.pipeline.invalidate(name, block)
        yield from self.pipeline.commit_write(entry, name, block, data)
        entry.total_blocks = block + 1
        return block

    def op_random_read(self, name, block_number):
        """Random read; the LFS transfer is forwarded like op_seq_read.

        Consecutive random reads count toward stream recognition (S18),
        so a client walking a file with ``random_read`` also triggers
        the striped read-ahead pipeline once the pattern is sequential;
        hits pay ``bridge_cache_hit`` instead of the full request charge.
        """
        hit = yield from self.pipeline.probe(name, block_number)
        if hit is not None:
            return hit
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        if not 0 <= block_number < entry.total_blocks:
            raise BridgeBadRequestError(
                f"{name!r}: block {block_number} outside file of "
                f"{entry.total_blocks} blocks"
            )

        def forward():
            data = yield from self.pipeline.demand_read(
                entry, name, block_number
            )
            return Response(value=data, size=len(data))

        return self.pipeline.detach(forward())

    def op_get_block_map(self, name):
        """The global->local map of a disordered file (tool view)."""
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        if not entry.disordered:
            raise BridgeBadRequestError(f"{name!r} is strictly interleaved")
        return list(entry.block_map or [])

    def op_random_write(self, name, block_number, data):
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        if not 0 <= block_number <= entry.total_blocks:
            raise BridgeBadRequestError(
                f"{name!r}: block {block_number} outside writable range "
                f"[0, {entry.total_blocks}]"
            )
        self.pipeline.invalidate(name, block_number)
        yield from self.pipeline.commit_write(entry, name, block_number, data)
        if block_number == entry.total_blocks:
            entry.total_blocks += 1
        return block_number

    # ==================================================================
    # List I/O (noncontiguous access, S17)
    # ==================================================================

    def op_list_read(self, name, blocks):
        """Noncontiguous read: one batched EFS request per touched LFS.

        ``blocks`` is the global block list of a
        :class:`~repro.collective.ListIORequest` (request order preserved
        in the returned data).  The server decomposes it per constituent
        and ships each LFS *one* ``read_blocks`` message instead of one
        RPC per block; like the other naive-view reads, the fan-out and
        reassembly run detached so a big list read does not serialize
        unrelated clients behind the central server.
        """
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        blocks = list(blocks)
        if not blocks:
            return Response(value=[])
        per_slot = self.pipeline.decompose(entry, name, blocks)

        def reassemble():
            by_location = yield from self.pipeline.gather_batches(
                entry, name, per_slot
            )
            data = [by_location[entry.locate_block(block)] for block in blocks]
            return Response(value=data, size=sum(len(d) for d in data))

        return self.pipeline.detach(reassemble())

    def op_list_write(self, name, writes):
        """Noncontiguous write: one batched EFS request per touched LFS.

        ``writes`` is a list of ``(global_block, data)`` pairs.  In-place
        updates may scatter anywhere in the file; appended blocks must
        form a dense run starting at the current end (the file-level
        no-sparse rule, matching the per-constituent EFS rule).  Returns
        the file's new total size in blocks.
        """
        yield from self.pipeline.admit()
        entry = self.pipeline.resolve(name)
        writes = list(writes)
        if not writes:
            return entry.total_blocks
        new_total = self.pipeline.validate_list_write(entry, name, writes)
        self.pipeline.invalidate(
            name, *(block for block, _data in writes)
        )
        yield from self.pipeline.scatter_batches(entry, name, writes)
        entry.total_blocks = new_total
        return new_total

    # ==================================================================
    # Parallel-open view
    # ==================================================================

    def op_parallel_open(self, name, worker_ports):
        yield from self.pipeline.admit(probe=True)
        if not worker_ports:
            raise BridgeJobError("parallel open needs at least one worker")
        entry = self.pipeline.resolve(name)
        job_id = self._next_job_id
        self._next_job_id += 1
        job = _Job(job_id, entry, list(worker_ports), self.node.port(f"job{job_id}"))
        self._jobs[job_id] = job
        return JobInfo(
            job_id=job_id,
            file_name=name,
            width=entry.width,
            total_blocks=entry.total_blocks,
            worker_count=len(job.worker_ports),
            job_port=job.port,
        )

    def op_parallel_read(self, job_id):
        """Deliver the next t blocks, one per worker, p at a time.

        "Although the performance of parallel operations is limited by
        the number of nodes in the file system (p), the Bridge Server
        will simulate any degree of parallelism" — groups of p accesses
        run in parallel; successive groups are sequential (lock step).
        """
        yield from self.pipeline.admit()
        job = self._job(job_id)
        entry = job.entry
        t = len(job.worker_ports)
        # S18 double buffering: start fetching the *next* delivery's
        # stripe while this one is read and shipped to the workers.
        self.pipeline.top_up(entry, entry.name, job.cursor + t, depth=t)
        delivered = 0
        for group in self.pipeline.lockstep_groups(job):
            delivered += yield from self.pipeline.deliver_group(job, group)
        job.cursor += t
        return delivered

    def op_parallel_write(self, job_id):
        """Collect one deposit per worker and append them in order."""
        yield from self.pipeline.admit()
        job = self._job(job_id)
        entry = job.entry
        if entry.disordered:
            raise BridgeJobError(
                f"{entry.name!r}: parallel write is not supported on "
                "disordered files (use the naive view)"
            )
        deposits = yield from self.pipeline.collect_deposits(job)
        base = entry.total_blocks
        yield from self.pipeline.append_groups(entry, base, deposits)
        entry.total_blocks = base + len(deposits)
        job.cursor = entry.total_blocks
        return entry.total_blocks

    def op_parallel_close(self, job_id):
        yield from self.pipeline.admit()
        self._job(job_id)
        del self._jobs[job_id]
        return None

    # ==================================================================
    # Internals
    # ==================================================================

    def _resolve_slots(self, width, node_slots):
        if node_slots is not None:
            slots = list(node_slots)
            if width is not None and width != len(slots):
                raise BridgeBadRequestError(
                    f"width {width} != len(node_slots) {len(slots)}"
                )
        else:
            slots = list(range(width if width is not None else len(self.lfs)))
        if not slots:
            raise BridgeBadRequestError("file needs at least one slot")
        for slot in slots:
            if not 0 <= slot < len(self.lfs):
                raise BridgeBadRequestError(
                    f"LFS index {slot} outside [0, {len(self.lfs)})"
                )
        return slots

    def _slot_port(self, entry: BridgeFileEntry, slot: int) -> Port:
        node_index = entry.node_indexes[slot]
        for handle in self.lfs:
            if handle.node_index == node_index:
                return handle.port
        raise BridgeBadRequestError(f"no LFS on node {node_index}")

    def _job(self, job_id: int) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise BridgeJobError(f"unknown job {job_id}")
        return job

    def bridge_cache_stats(self) -> Optional[Dict[str, object]]:
        """S18 cache/prefetch counters for reports and benches.

        ``None`` when the cache is disabled (the seed configuration).
        """
        if self._cache is None:
            return None
        cache = self._cache
        stats: Dict[str, object] = {
            "capacity": cache.capacity,
            "cached_blocks": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "installs": cache.installs,
            "evictions": cache.evictions,
            "invalidations": cache.invalidations,
            "prefetch_installs": cache.prefetch_installs,
            "prefetch_used": cache.prefetch_used,
            "prefetch_wasted": cache.prefetch_wasted,
        }
        if self._prefetcher is not None:
            stats.update(
                prefetch_window=self._prefetcher.window,
                prefetch_issued=self._prefetcher.issued,
                prefetch_completed=self._prefetcher.completed,
                prefetch_dropped=self._prefetcher.dropped,
                stream_recognitions=self._prefetcher.detector.recognitions,
            )
        return stats
