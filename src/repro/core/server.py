"""The Bridge Server (paper section 4.1, Table 1).

"The Bridge Server is the interface between the Bridge file system and
user programs.  Its function is to glue the local file systems together
into a single logical structure."  It is a single centralized process
(the paper notes a distributed collection would also work); all directory
mutations (Create, Delete, Open) funnel through it, making it a monitor
around file management.

Three views are implemented:

1. the **naive view** — Create / Delete / Open / Sequential Read /
   Random Read / Sequential Write / Random Write, with the server
   transparently forwarding each block request to the right LFS and
   threading disk-address hints (the "optimized path" set up by Open);
2. the **parallel-open view** — jobs of t workers with lock-step
   multi-block transfers and virtual parallelism when t > p;
3. the **tool view** — Get Info plus the constituent information that
   Open returns, after which tools talk to the LFS instances directly.

Open is "interpreted as a hint...  There is no close operation" — the
server refreshes its cached cursor/size/hint state at every open.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import BLOCK_SIZE, DATA_BYTES_PER_BLOCK, SystemConfig
from repro.core.cache import BridgeBlockCache
from repro.core.directory import BridgeDirectory, BridgeFileEntry
from repro.core.info import ConstituentInfo, LFSHandle, OpenResult, SystemInfo
from repro.core.parallel import BlockDelivery, Deposit, JobInfo
from repro.core.prefetch import Prefetcher
from repro.efs.layout import NULL_ADDR
from repro.errors import BridgeBadRequestError, BridgeJobError
from repro.machine import Port, Response, Server, gather
from repro.sim import Timeout


class _Job:
    """Server-side state of one parallel-open job."""

    __slots__ = ("job_id", "entry", "worker_ports", "cursor", "port")

    def __init__(self, job_id: int, entry: BridgeFileEntry,
                 worker_ports: List[Port], port: Port) -> None:
        self.job_id = job_id
        self.entry = entry
        self.worker_ports = worker_ports
        self.cursor = 0
        self.port = port


class BridgeServer(Server):
    """The centralized Bridge Server process."""

    def __init__(
        self,
        node,
        lfs_handles: List[LFSHandle],
        config: SystemConfig,
        relay_ports: Optional[List[Port]] = None,
        name: str = "bridge",
        file_id_start: int = 1,
        file_id_step: int = 1,
    ) -> None:
        if not lfs_handles:
            raise ValueError("Bridge needs at least one LFS instance")
        super().__init__(node, name)
        self.lfs = list(lfs_handles)
        self.config = config
        self.relay_ports = list(relay_ports) if relay_ports else None
        self.directory = BridgeDirectory(
            file_id_start=file_id_start, file_id_step=file_id_step
        )
        self._cursors: Dict[str, int] = {}
        self._hints: Dict[Tuple[str, int], int] = {}
        self._jobs: Dict[int, _Job] = {}
        self._next_job_id = 1
        # S18: server-side block cache + striped read-ahead.  Both off by
        # default (cache-off reproduces the paper's timings exactly); a
        # prefetch window without an explicit cache size auto-sizes the
        # cache to hold a few windows per constituent.
        cache_blocks = config.bridge_cache_blocks
        if config.prefetch_window > 0 and cache_blocks <= 0:
            cache_blocks = 4 * config.prefetch_window * len(self.lfs)
        self._cache: Optional[BridgeBlockCache] = (
            BridgeBlockCache(cache_blocks) if cache_blocks > 0 else None
        )
        self._prefetcher: Optional[Prefetcher] = (
            Prefetcher(self, self._cache, config.prefetch_window)
            if config.prefetch_window > 0 and self._cache is not None
            else None
        )

    # ==================================================================
    # File management (the monitor)
    # ==================================================================

    def op_create(self, name, width=None, node_slots=None, start=0,
                  disordered=False):
        """Create an interleaved file across ``width`` LFS instances.

        ``node_slots`` optionally picks which LFS handles (by index into
        the system's LFS list) serve slots 0..width-1 — the sort tool uses
        this to build intermediate files on node subsets.  ``disordered``
        creates a section-3 "disordered file": blocks scatter arbitrarily
        (the server keeps the global->local map) at the expense of strict
        interleaving's consecutive-block guarantee.
        """
        yield Timeout(
            self.config.cpu.bridge_request + self.config.cpu.bridge_directory_probe
        )
        if self.directory.exists(name):
            from repro.errors import BridgeFileExistsError

            raise BridgeFileExistsError(f"bridge file {name!r} exists")
        slots = self._resolve_slots(width, node_slots)
        width = len(slots)
        if not 0 <= start < width:
            raise BridgeBadRequestError(f"start {start} outside width {width}")
        file_id = self.directory.allocate_file_id()
        entry = BridgeFileEntry(
            name=name,
            file_id=file_id,
            width=width,
            start=start,
            node_indexes=[self.lfs[s].node_index for s in slots],
            efs_file_numbers=[file_id] * width,
            total_blocks=0,
            disordered=disordered,
            block_map=[] if disordered else None,
        )
        args_per_slot = [
            {
                "file_number": file_id,
                "global_file_id": file_id,
                "width": width,
                "column": entry.interleave.column_of_slot(slot),
            }
            for slot in range(width)
        ]
        if self.config.create_uses_tree and self.relay_ports is not None:
            yield from self._create_tree(slots, args_per_slot)
        else:
            yield from self._create_sequential(slots, args_per_slot)
        self.directory.insert(entry)
        yield Timeout(self.config.cpu.bridge_directory_update)
        self._cursors[name] = 0
        if self._cache is not None:
            # Name reuse after delete: nothing cached may survive.
            self._cache.invalidate_file(name)
        if self._prefetcher is not None:
            self._prefetcher.forget(name)
        return file_id

    def _create_sequential(self, slots, args_per_slot):
        """Paper behavior: initiation and termination are sequential,
        the LFS work itself overlaps (section 4.5)."""
        reply_ports = []
        for slot, args in zip(slots, args_per_slot):
            yield Timeout(self.config.cpu.bridge_create_dispatch)
            reply_port = self.node.port()
            from repro.machine.rpc import Request

            self.node.send(self.lfs[slot].port, Request("create", args, reply_port))
            reply_ports.append(reply_port)
        for reply_port in reply_ports:
            response = yield reply_port.recv()
            if response.error is not None:
                raise response.error

    def _create_tree(self, slots, args_per_slot):
        """Improved behavior: one message to the first relay, which fans
        out through an embedded binary tree (O(log p) critical path)."""
        entries = [
            {
                "efs_port": self.lfs[slot].port,
                "relay_port": self.relay_ports[slot],
                "args": args,
            }
            for slot, args in zip(slots, args_per_slot)
        ]
        yield Timeout(self.config.cpu.bridge_create_dispatch)
        results = yield from gather(
            self.node,
            [(entries[0]["relay_port"], "relay",
              {"entries": entries, "relay_method": "create"}, 0)],
        )
        return results[0]

    def op_delete(self, name):
        """Delete on all LFS in parallel; each LFS walk is O(n/p).

        Directory removal happens synchronously (the server is the
        monitor around file management), but the LFS walks — seconds for
        big files — run detached so one large delete does not serialize
        every other client behind the central server.
        """
        yield Timeout(
            self.config.cpu.bridge_request + self.config.cpu.bridge_directory_probe
        )
        entry = self.directory.lookup(name)
        self.directory.remove(name)
        yield Timeout(self.config.cpu.bridge_directory_update)
        self._cursors.pop(name, None)
        for slot in range(entry.width):
            self._hints.pop((name, slot), None)
        if self._cache is not None:
            self._cache.invalidate_file(name)
        if self._prefetcher is not None:
            self._prefetcher.forget(name)

        def reap():
            calls = [
                (self._slot_port(entry, slot), "delete",
                 {"file_number": entry.efs_file_numbers[slot]}, 0)
                for slot in range(entry.width)
            ]
            freed = yield from gather(self.node, calls)
            return sum(freed)

        from repro.machine.rpc import Detached

        return Detached(reap())

    def op_open(self, name):
        """Set up the optimized path: refresh sizes and hints, reset the
        sequential cursor, and return the constituent information."""
        yield Timeout(
            self.config.cpu.bridge_request + self.config.cpu.bridge_directory_probe
        )
        entry = self.directory.lookup(name)
        calls = [
            (self._slot_port(entry, slot), "info",
             {"file_number": entry.efs_file_numbers[slot]}, 0)
            for slot in range(entry.width)
        ]
        infos = yield from gather(self.node, calls)
        sizes = [info.size_blocks for info in infos]
        if entry.disordered:
            if sum(sizes) != len(entry.block_map or []):
                raise BridgeBadRequestError(
                    f"{name!r}: disordered map has {len(entry.block_map or [])} "
                    f"entries but the LFS hold {sum(sizes)} blocks (disordered "
                    "files must be written through the Bridge Server)"
                )
            entry.total_blocks = sum(sizes)
        else:
            entry.total_blocks = entry.interleave.total_from_sizes(sizes)
        constituents = []
        for slot, info in enumerate(infos):
            constituents.append(
                ConstituentInfo(
                    slot=slot,
                    column=entry.interleave.column_of_slot(slot),
                    node_index=entry.node_indexes[slot],
                    lfs_port=self._slot_port(entry, slot),
                    efs_file_number=entry.efs_file_numbers[slot],
                    size_blocks=info.size_blocks,
                    head_addr=info.head_addr,
                )
            )
            self._hints[(name, slot)] = info.head_addr
        self._cursors[name] = 0
        return OpenResult(
            name=name,
            file_id=entry.file_id,
            width=entry.width,
            start=entry.start,
            total_blocks=entry.total_blocks,
            constituents=constituents,
        )

    def op_get_info(self):
        """The tool bootstrap package (Table 1: Get Info -> LFS handles)."""
        yield Timeout(self.config.cpu.bridge_request)
        return SystemInfo(lfs=list(self.lfs), server_port=self.port)

    # ==================================================================
    # Naive view: sequential and random block access
    # ==================================================================

    def op_seq_read(self, name):
        """Read the block at the cursor; returns (block_number, data) or
        (None, None) at end of file.

        The cursor advances synchronously; the LFS transfer itself is
        *forwarded* (detached), so the central server only spends routing
        time per request — "the Bridge Server transparently forwards
        requests to the appropriate LFS" (section 4.1).

        With the S18 cache/prefetch pipeline enabled, the cursor stream
        is recognized as sequential and the next ``prefetch_window * p``
        blocks are fetched asynchronously from all constituents; cache
        hits are answered in-line for ``bridge_cache_hit`` (a hash probe
        and LRU touch instead of the full request decode + directory
        consult + EFS round trip).
        """
        if self._cache is not None:
            entry = self.directory.lookup(name)
            cursor = self._cursors.get(name, 0)
            if cursor < entry.total_blocks:
                if self._prefetcher is not None:
                    self._prefetcher.observe(entry, name, cursor)
                data = self._cache.lookup(name, cursor)
                if data is not None:
                    self._cursors[name] = cursor + 1
                    yield Timeout(self.config.cpu.bridge_cache_hit)
                    return Response(value=(cursor, data), size=len(data))
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        cursor = self._cursors.get(name, 0)
        if cursor >= entry.total_blocks:
            return Response(value=(None, None))
        self._cursors[name] = cursor + 1

        def forward():
            data = yield from self._read_global_cached(entry, name, cursor)
            return Response(value=(cursor, data), size=len(data))

        from repro.machine.rpc import Detached

        return Detached(forward())

    def op_seq_write(self, name, data):
        """Append one block at the end of the file."""
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        block = entry.total_blocks
        if self._cache is not None:
            # Invalidate *before* the EFS write goes out so an in-flight
            # read of the old value can never install stale data later.
            self._cache.invalidate_block(name, block)
        yield from self._write_global(entry, name, block, data)
        entry.total_blocks = block + 1
        return block

    def op_random_read(self, name, block_number):
        """Random read; the LFS transfer is forwarded like op_seq_read.

        Consecutive random reads count toward stream recognition (S18),
        so a client walking a file with ``random_read`` also triggers
        the striped read-ahead pipeline once the pattern is sequential;
        hits pay ``bridge_cache_hit`` instead of the full request charge.
        """
        if self._cache is not None:
            entry = self.directory.lookup(name)
            if 0 <= block_number < entry.total_blocks:
                if self._prefetcher is not None:
                    self._prefetcher.observe(entry, name, block_number)
                data = self._cache.lookup(name, block_number)
                if data is not None:
                    yield Timeout(self.config.cpu.bridge_cache_hit)
                    return Response(value=data, size=len(data))
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        if not 0 <= block_number < entry.total_blocks:
            raise BridgeBadRequestError(
                f"{name!r}: block {block_number} outside file of "
                f"{entry.total_blocks} blocks"
            )

        def forward():
            data = yield from self._read_global_cached(entry, name, block_number)
            return Response(value=data, size=len(data))

        from repro.machine.rpc import Detached

        return Detached(forward())

    def op_get_block_map(self, name):
        """The global->local map of a disordered file (tool view)."""
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        if not entry.disordered:
            raise BridgeBadRequestError(f"{name!r} is strictly interleaved")
        return list(entry.block_map or [])

    def op_random_write(self, name, block_number, data):
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        if not 0 <= block_number <= entry.total_blocks:
            raise BridgeBadRequestError(
                f"{name!r}: block {block_number} outside writable range "
                f"[0, {entry.total_blocks}]"
            )
        if self._cache is not None:
            self._cache.invalidate_block(name, block_number)
        yield from self._write_global(entry, name, block_number, data)
        if block_number == entry.total_blocks:
            entry.total_blocks += 1
        return block_number

    # ==================================================================
    # List I/O (noncontiguous access, S17)
    # ==================================================================

    def op_list_read(self, name, blocks):
        """Noncontiguous read: one batched EFS request per touched LFS.

        ``blocks`` is the global block list of a
        :class:`~repro.collective.ListIORequest` (request order preserved
        in the returned data).  The server decomposes it per constituent
        and ships each LFS *one* ``read_blocks`` message instead of one
        RPC per block; like the other naive-view reads, the fan-out and
        reassembly run detached so a big list read does not serialize
        unrelated clients behind the central server.
        """
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        blocks = list(blocks)
        if not blocks:
            return Response(value=[])
        per_slot: Dict[int, List[int]] = {}
        for block in blocks:
            if not 0 <= block < entry.total_blocks:
                raise BridgeBadRequestError(
                    f"{name!r}: block {block} outside file of "
                    f"{entry.total_blocks} blocks"
                )
            slot, local = entry.locate_block(block)
            locals_ = per_slot.setdefault(slot, [])
            locals_.append(local)
        calls = []
        slots = sorted(per_slot)
        for slot in slots:
            locals_ = sorted(set(per_slot[slot]))
            calls.append(
                (self._slot_port(entry, slot), "read_blocks",
                 {"file_number": entry.efs_file_numbers[slot],
                  "block_numbers": locals_,
                  "hint": self._hints.get((name, slot))}, 0)
            )

        def forward():
            batches = yield from gather(
                self.node, calls,
                max_in_flight=self.config.bridge_fanout_limit or None,
            )
            by_location: Dict[Tuple[int, int], bytes] = {}
            for slot, batch in zip(slots, batches):
                for result in batch.results:
                    by_location[(slot, result.block_number)] = result.data
                if batch.results:
                    self._hints[(name, slot)] = batch.results[-1].next_addr
            data = [by_location[entry.locate_block(block)] for block in blocks]
            return Response(value=data, size=sum(len(d) for d in data))

        from repro.machine.rpc import Detached

        return Detached(forward())

    def op_list_write(self, name, writes):
        """Noncontiguous write: one batched EFS request per touched LFS.

        ``writes`` is a list of ``(global_block, data)`` pairs.  In-place
        updates may scatter anywhere in the file; appended blocks must
        form a dense run starting at the current end (the file-level
        no-sparse rule, matching the per-constituent EFS rule).  Returns
        the file's new total size in blocks.
        """
        yield Timeout(self.config.cpu.bridge_request)
        entry = self.directory.lookup(name)
        writes = list(writes)
        if not writes:
            return entry.total_blocks
        if entry.disordered:
            raise BridgeBadRequestError(
                f"{name!r}: list write is not supported on disordered "
                "files (use the naive view)"
            )
        targets = {block for block, _data in writes}
        new_total = max(entry.total_blocks, max(targets) + 1)
        missing = [
            block for block in range(entry.total_blocks, new_total)
            if block not in targets
        ]
        if missing:
            raise BridgeBadRequestError(
                f"{name!r}: list write appends must be dense; blocks "
                f"{missing[:4]}{'...' if len(missing) > 4 else ''} between "
                f"the current end ({entry.total_blocks}) and "
                f"{new_total - 1} are not covered"
            )
        for block, data in writes:
            if block < 0:
                raise BridgeBadRequestError(
                    f"{name!r}: negative block {block} in list write"
                )
            if len(data) > DATA_BYTES_PER_BLOCK:
                raise BridgeBadRequestError(
                    f"{name!r}: write of {len(data)} bytes exceeds data "
                    f"area {DATA_BYTES_PER_BLOCK}"
                )
        if self._cache is not None:
            for block, _data in writes:
                self._cache.invalidate_block(name, block)
        per_slot: Dict[int, List[Tuple[int, bytes]]] = {}
        for block, data in writes:
            slot, local = entry.interleave.locate(block)
            per_slot.setdefault(slot, []).append((local, data))
        calls = [
            (self._slot_port(entry, slot), "write_blocks",
             {"file_number": entry.efs_file_numbers[slot],
              "writes": slot_writes,
              "hint": self._hints.get((name, slot))},
             BLOCK_SIZE * len(slot_writes))
            for slot, slot_writes in sorted(per_slot.items())
        ]
        yield from gather(
            self.node, calls,
            max_in_flight=self.config.bridge_fanout_limit or None,
        )
        entry.total_blocks = new_total
        return new_total

    # ==================================================================
    # Parallel-open view
    # ==================================================================

    def op_parallel_open(self, name, worker_ports):
        yield Timeout(
            self.config.cpu.bridge_request + self.config.cpu.bridge_directory_probe
        )
        if not worker_ports:
            raise BridgeJobError("parallel open needs at least one worker")
        entry = self.directory.lookup(name)
        job_id = self._next_job_id
        self._next_job_id += 1
        job = _Job(job_id, entry, list(worker_ports), self.node.port(f"job{job_id}"))
        self._jobs[job_id] = job
        return JobInfo(
            job_id=job_id,
            file_name=name,
            width=entry.width,
            total_blocks=entry.total_blocks,
            worker_count=len(job.worker_ports),
            job_port=job.port,
        )

    def op_parallel_read(self, job_id):
        """Deliver the next t blocks, one per worker, p at a time.

        "Although the performance of parallel operations is limited by
        the number of nodes in the file system (p), the Bridge Server
        will simulate any degree of parallelism" — groups of p accesses
        run in parallel; successive groups are sequential (lock step).
        """
        yield Timeout(self.config.cpu.bridge_request)
        job = self._job(job_id)
        entry = job.entry
        t = len(job.worker_ports)
        if self._prefetcher is not None:
            # S18 double buffering: start fetching the *next* delivery's
            # stripe while this one is read and shipped to the workers.
            self._prefetcher.top_up(entry, entry.name, job.cursor + t, depth=t)
        delivered = 0
        for group_start in range(0, t, entry.width):
            group = []
            for index in range(group_start, min(group_start + entry.width, t)):
                block = job.cursor + index
                if block < entry.total_blocks:
                    group.append((index, block))
                else:
                    self.node.send(
                        job.worker_ports[index],
                        BlockDelivery(job_id, index, block, None, eof=True),
                    )
            if not group:
                continue
            pending = []
            for index, block in group:
                data = None
                if self._cache is not None:
                    data = self._cache.lookup(entry.name, block)
                    if data is None and self._prefetcher is not None:
                        signal = self._prefetcher.inflight_signal(
                            entry.name, block
                        )
                        if signal is not None:
                            data = yield signal
                            if data is not None:
                                self._cache.mark_used(entry.name, block)
                if data is not None:
                    if self.config.cpu.bridge_cache_hit:
                        yield Timeout(self.config.cpu.bridge_cache_hit)
                    self.node.send(
                        job.worker_ports[index],
                        BlockDelivery(job_id, index, block, data),
                        size=len(data),
                    )
                    delivered += 1
                else:
                    pending.append((index, block))
            if not pending:
                continue
            calls = []
            for _index, block in pending:
                slot, local = entry.locate_block(block)
                calls.append(
                    (self._slot_port(entry, slot), "read",
                     {"file_number": entry.efs_file_numbers[slot],
                      "block_number": local,
                      "hint": self._hints.get((entry.name, slot))}, 0)
                )
            results = yield from gather(self.node, calls)
            for (index, block), result in zip(pending, results):
                slot, _local = entry.locate_block(block)
                self._hints[(entry.name, slot)] = result.next_addr
                self.node.send(
                    job.worker_ports[index],
                    BlockDelivery(job_id, index, block, result.data),
                    size=len(result.data),
                )
                delivered += 1
        job.cursor += t
        return delivered

    def op_parallel_write(self, job_id):
        """Collect one deposit per worker and append them in order."""
        yield Timeout(self.config.cpu.bridge_request)
        job = self._job(job_id)
        entry = job.entry
        if entry.disordered:
            raise BridgeJobError(
                f"{entry.name!r}: parallel write is not supported on "
                "disordered files (use the naive view)"
            )
        t = len(job.worker_ports)
        deposits: Dict[int, bytes] = {}
        while len(deposits) < t:
            message = yield job.port.recv()
            if not isinstance(message, Deposit) or message.job_id != job_id:
                raise BridgeJobError(f"job {job_id}: unexpected message {message!r}")
            if message.worker_index in deposits:
                raise BridgeJobError(
                    f"job {job_id}: duplicate deposit from worker "
                    f"{message.worker_index}"
                )
            deposits[message.worker_index] = message.data
        base = entry.total_blocks
        for group_start in range(0, t, entry.width):
            calls = []
            for index in range(group_start, min(group_start + entry.width, t)):
                block = base + index
                slot, local = entry.interleave.locate(block)
                calls.append(
                    (self._slot_port(entry, slot), "write",
                     {"file_number": entry.efs_file_numbers[slot],
                      "block_number": local,
                      "data": deposits[index],
                      "hint": None}, BLOCK_SIZE)
                )
            yield from gather(self.node, calls)
        entry.total_blocks = base + t
        job.cursor = entry.total_blocks
        return entry.total_blocks

    def op_parallel_close(self, job_id):
        yield Timeout(self.config.cpu.bridge_request)
        self._job(job_id)
        del self._jobs[job_id]
        return None

    # ==================================================================
    # Internals
    # ==================================================================

    def _resolve_slots(self, width, node_slots):
        if node_slots is not None:
            slots = list(node_slots)
            if width is not None and width != len(slots):
                raise BridgeBadRequestError(
                    f"width {width} != len(node_slots) {len(slots)}"
                )
        else:
            slots = list(range(width if width is not None else len(self.lfs)))
        if not slots:
            raise BridgeBadRequestError("file needs at least one slot")
        for slot in slots:
            if not 0 <= slot < len(self.lfs):
                raise BridgeBadRequestError(
                    f"LFS index {slot} outside [0, {len(self.lfs)})"
                )
        return slots

    def _slot_port(self, entry: BridgeFileEntry, slot: int) -> Port:
        node_index = entry.node_indexes[slot]
        for handle in self.lfs:
            if handle.node_index == node_index:
                return handle.port
        raise BridgeBadRequestError(f"no LFS on node {node_index}")

    def _job(self, job_id: int) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise BridgeJobError(f"unknown job {job_id}")
        return job

    def _read_global_cached(self, entry: BridgeFileEntry, name: str, block: int):
        """Demand read through the S18 cache.

        Runs in the detached half of a naive-view read whose synchronous
        cache check missed.  Re-checks the cache (a prefetch may have
        landed meanwhile), waits on an in-flight fetch instead of
        duplicating its EFS request, and otherwise reads from the LFS and
        installs the result under the generation guard.
        """
        if self._cache is None:
            data = yield from self._read_global(entry, name, block)
            return data
        data = self._cache.peek(name, block)
        if data is not None:
            return data
        if self._prefetcher is not None:
            signal = self._prefetcher.inflight_signal(name, block)
            if signal is not None:
                data = yield signal
                if data is not None:
                    self._cache.mark_used(name, block)
                    return data
                # The fetch was dropped (stale or errored): fall through
                # to a direct read so the demand path sees the real state.
        generation = self._cache.generation(name)
        data = yield from self._read_global(entry, name, block)
        if self._cache.generation(name) == generation:
            self._cache.install(name, block, data)
        return data

    def bridge_cache_stats(self) -> Optional[Dict[str, object]]:
        """S18 cache/prefetch counters for reports and benches.

        ``None`` when the cache is disabled (the seed configuration).
        """
        if self._cache is None:
            return None
        cache = self._cache
        stats: Dict[str, object] = {
            "capacity": cache.capacity,
            "cached_blocks": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "installs": cache.installs,
            "evictions": cache.evictions,
            "invalidations": cache.invalidations,
            "prefetch_installs": cache.prefetch_installs,
            "prefetch_used": cache.prefetch_used,
            "prefetch_wasted": cache.prefetch_wasted,
        }
        if self._prefetcher is not None:
            stats.update(
                prefetch_window=self._prefetcher.window,
                prefetch_issued=self._prefetcher.issued,
                prefetch_completed=self._prefetcher.completed,
                prefetch_dropped=self._prefetcher.dropped,
                stream_recognitions=self._prefetcher.detector.recognitions,
            )
        return stats

    def _read_global(self, entry: BridgeFileEntry, name: str, block: int):
        slot, local = entry.locate_block(block)
        results = yield from gather(
            self.node,
            [(self._slot_port(entry, slot), "read",
              {"file_number": entry.efs_file_numbers[slot],
               "block_number": local,
               "hint": self._hints.get((name, slot))}, 0)],
        )
        result = results[0]
        self._hints[(name, slot)] = result.next_addr
        return result.data

    def _write_global(self, entry: BridgeFileEntry, name: str, block: int, data):
        if entry.disordered and block == len(entry.block_map):
            # scattered append: any slot will do (section 3's relaxation)
            rng = self.node.machine.sim.random.stream("bridge.disorder")
            slot = rng.randrange(entry.width)
            local = sum(1 for s, _l in entry.block_map if s == slot)
            entry.block_map.append((slot, local))
        else:
            slot, local = entry.locate_block(block)
        results = yield from gather(
            self.node,
            [(self._slot_port(entry, slot), "write",
              {"file_number": entry.efs_file_numbers[slot],
               "block_number": local,
               "data": data,
               "hint": None}, BLOCK_SIZE)],
        )
        return results[0]
