"""The parallel-open view: jobs, block deliveries, and worker helpers.

Section 4.1: "A parallel open operation groups several processes into a
'job.'  The process that issues the parallel open becomes the job
controller...  When the job controller performs a read operation, t
blocks will be transferred (one to each worker) with as much parallelism
as possible.  When the job controller performs a write operation, t
blocks will be received from the workers in parallel."

If t exceeds the file's interleave width p, the server simulates the
extra parallelism by performing groups of p disk accesses at a time —
"virtual parallelism", whose hidden lock-step serialization the views
ablation bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.machine import Client, Port


@dataclass
class BlockDelivery:
    """One block pushed by the server to one worker during a parallel read."""

    job_id: int
    worker_index: int
    block_number: int
    data: Optional[bytes]
    eof: bool = False


@dataclass
class Deposit:
    """One block pushed by a worker to the job port for a parallel write."""

    job_id: int
    worker_index: int
    data: bytes


@dataclass
class JobInfo:
    """What the controller gets back from a parallel open."""

    job_id: int
    file_name: str
    width: int
    total_blocks: int
    worker_count: int
    job_port: Port


class JobController:
    """Controller-side helper: issues parallel opens/reads/writes.

    ``server_port`` may be a plain server :class:`Port` or a partitioned
    fabric router (anything with ``port_for(name)``): the owning
    partition is resolved once at :meth:`open`, and the job's subsequent
    reads/writes/close stay on that partition.
    """

    def __init__(self, node, server_port: Port, name: str = "controller",
                 traffic_class: Optional[str] = None) -> None:
        self.node = node
        self.server_port = server_port
        self._rpc = Client(node, name, traffic_class=traffic_class)
        self.job: Optional[JobInfo] = None
        self._job_port: Optional[Port] = None

    def open(self, name: str, worker_ports: List[Port]):
        """Group the workers into a job on ``name``; returns JobInfo."""
        port_for = getattr(self.server_port, "port_for", None)
        port = port_for(name) if port_for is not None else self.server_port
        job = yield from self._rpc.call(
            port, "parallel_open", name=name, worker_ports=worker_ports
        )
        self.job = job
        self._job_port = port
        return job

    def read(self):
        """Move one block to every worker; returns blocks actually read
        (workers past EOF receive an eof delivery)."""
        self._require_job()
        return (
            yield from self._rpc.call(
                self._job_port, "parallel_read", job_id=self.job.job_id
            )
        )

    def write(self):
        """Collect one deposited block from every worker and append them.

        Workers must have called :meth:`ParallelWorker.deposit` (the
        deposits may be in flight; the server waits for all of them).
        Returns the file's new total size in blocks.
        """
        self._require_job()
        return (
            yield from self._rpc.call(
                self._job_port, "parallel_write", job_id=self.job.job_id
            )
        )

    def close(self):
        """Discard the job's server-side state."""
        self._require_job()
        job_id, self.job = self.job.job_id, None
        return (
            yield from self._rpc.call(
                self._job_port, "parallel_close", job_id=job_id
            )
        )

    def _require_job(self) -> None:
        if self.job is None:
            raise RuntimeError("no job open; call open() first")


class ParallelWorker:
    """Worker-side helper: owns the port the server delivers blocks to."""

    def __init__(self, node, index: int, name: str = "worker") -> None:
        self.node = node
        self.index = index
        self.port = node.port(f"{name}{index}.blocks")

    def receive(self):
        """Wait for the next :class:`BlockDelivery` from the server."""
        delivery = yield self.port.recv()
        return delivery

    def deposit(self, job: JobInfo, data: bytes) -> None:
        """Send this worker's next block to the job (fire and forget)."""
        self.node.send(
            job.job_port,
            Deposit(job_id=job.job_id, worker_index=self.index, data=data),
            size=len(data),
        )
