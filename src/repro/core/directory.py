"""The Bridge directory: names -> interleaved file structure.

"The main file system directory lists the names of the constituent LFS
files for each interleaved file" (section 3).  All Create/Delete/Open
traffic goes through the Bridge Server, which wraps this directory in
what "amounts to a monitor around all file management operations"
(section 4.2) — tools read structure through the server but never mutate
the directory themselves.

The entry store is in-memory; persistence costs are charged by the server
(``bridge_directory_probe`` / ``bridge_directory_update``) so the timing
model still reflects metadata I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.addressing import InterleaveMap
from repro.errors import BridgeFileExistsError, BridgeFileNotFoundError


@dataclass
class BridgeFileEntry:
    """Directory record for one interleaved file."""

    name: str
    file_id: int
    width: int
    start: int
    #: Machine node index per slot (0..width-1).
    node_indexes: List[int] = field(default_factory=list)
    #: Constituent EFS file number per slot.
    efs_file_numbers: List[int] = field(default_factory=list)
    #: Cached global size in blocks (refreshed on open, advanced on writes
    #: made through the server; tools that bypass the server are picked up
    #: at the next open).
    total_blocks: int = 0
    #: Section 3's relaxation: blocks scattered arbitrarily rather than
    #: round-robin.  ``block_map[n] = (slot, local_block)``.  Disordered
    #: files must be written through the Bridge Server (the map is the
    #: only global->local record besides the on-disk Bridge headers).
    disordered: bool = False
    block_map: Optional[List[Tuple[int, int]]] = None

    @property
    def interleave(self) -> InterleaveMap:
        return InterleaveMap(self.width, self.start)

    def locate_block(self, global_block: int) -> Tuple[int, int]:
        """(slot, local block) of a global block, honoring disorder."""
        if self.disordered:
            if self.block_map is None or not 0 <= global_block < len(self.block_map):
                raise ValueError(
                    f"{self.name!r}: no map entry for block {global_block}"
                )
            return self.block_map[global_block]
        return self.interleave.locate(global_block)


class BridgeDirectory:
    """Name-keyed store of interleaved-file entries."""

    def __init__(self, file_id_start: int = 1, file_id_step: int = 1) -> None:
        """``file_id_start``/``file_id_step`` stride the id space so that
        several directories (a partitioned server collection) can allocate
        constituent EFS file numbers on the same LFS set without
        colliding."""
        if file_id_step < 1 or file_id_start < 1:
            raise ValueError("file id start and step must be >= 1")
        self._entries: Dict[str, BridgeFileEntry] = {}
        self._next_file_id = file_id_start
        self._file_id_step = file_id_step

    def allocate_file_id(self) -> int:
        file_id = self._next_file_id
        self._next_file_id += self._file_id_step
        return file_id

    def insert(self, entry: BridgeFileEntry) -> None:
        if entry.name in self._entries:
            raise BridgeFileExistsError(f"bridge file {entry.name!r} exists")
        if len(entry.node_indexes) != entry.width:
            raise ValueError(
                f"{entry.name!r}: {len(entry.node_indexes)} nodes for "
                f"width {entry.width}"
            )
        if len(entry.efs_file_numbers) != entry.width:
            raise ValueError(
                f"{entry.name!r}: {len(entry.efs_file_numbers)} constituent "
                f"file numbers for width {entry.width}"
            )
        self._entries[entry.name] = entry

    def lookup(self, name: str) -> BridgeFileEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise BridgeFileNotFoundError(f"bridge file {name!r} not found")
        return entry

    def remove(self, name: str) -> BridgeFileEntry:
        try:
            return self._entries.pop(name)
        except KeyError:
            raise BridgeFileNotFoundError(f"bridge file {name!r} not found") from None

    def exists(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
