"""S21: the production traffic subsystem.

Open-loop load generation (:mod:`repro.traffic.generator` fed by
:mod:`repro.traffic.arrivals` and :mod:`repro.traffic.workload`),
admission control & fairness for the Bridge Server
(:mod:`repro.traffic.admission`), and per-class SLO telemetry
(:mod:`repro.traffic.slo`).  Everything defaults off: a system without
an installed admission control and without a running generator executes
the seed event sequence byte-for-byte.
"""

from repro.traffic.admission import (
    CONTINUATION_METHODS,
    DEFAULT_WEIGHTS,
    AdmissionControl,
    AdmissionQueue,
    TokenBucket,
    build_admission,
    classify,
)
from repro.traffic.arrivals import BurstArrivals, PoissonArrivals, make_arrivals
from repro.traffic.generator import TrafficGenerator
from repro.traffic.slo import OUTCOMES, ClassStats, SLORecorder
from repro.traffic.workload import (
    CLASSES,
    DEFAULT_MIX,
    RequestMix,
    TrafficRequest,
    ZipfCatalog,
    sample_request,
)

__all__ = [
    "AdmissionControl",
    "AdmissionQueue",
    "BurstArrivals",
    "CLASSES",
    "CONTINUATION_METHODS",
    "ClassStats",
    "DEFAULT_MIX",
    "DEFAULT_WEIGHTS",
    "OUTCOMES",
    "PoissonArrivals",
    "RequestMix",
    "SLORecorder",
    "TokenBucket",
    "TrafficGenerator",
    "TrafficRequest",
    "ZipfCatalog",
    "build_admission",
    "classify",
    "make_arrivals",
    "sample_request",
]
