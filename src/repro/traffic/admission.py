"""Admission control & fairness for the Bridge Server (S21).

Three pluggable mechanisms, installable individually or stacked, all
hanging off the two seams S20/S21 provide:

* **Token bucket** (:class:`TokenBucket`) — rate-limits admitted
  requests at the pipeline admission stage.  Refusals cost
  ``cpu.bridge_fast_reject`` and raise
  :class:`~repro.errors.BridgeThrottledError`.
* **Bounded queue with load shedding** (:class:`AdmissionQueue` with
  ``depth > 0``) — fronts the server mailbox (the
  ``Server._next_request`` seam).  Arrivals beyond the depth threshold
  are marked for shedding and fast-rejected with
  :class:`~repro.errors.BridgeOverloadError` *before* any directory or
  EFS work; under overload the server spends its time serving the
  bounded queue, not growing it.
* **Weighted fair queueing** (:class:`AdmissionQueue` with weights) —
  start-time fair queueing across traffic classes, so a burst of heavy
  tool/parallel jobs cannot starve naive interactive clients.  Virtual
  time advances with the start tags of picked requests; each class's
  backlog finishes in proportion to its weight.

:class:`AdmissionControl` composes them and owns the per-class outcome
counters (offered / admitted / throttled / shed) plus queue-wait
statistics (the measured side of the M/M/1 cross-check in
:mod:`repro.analysis.models`).  Everything defaults *off*: a server
without an installed control runs the seed byte sequence exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import BridgeOverloadError, BridgeThrottledError
from repro.obs.metrics import Histogram
from repro.sim import Timeout

#: Method-name fallback classification for requests that carry no
#: explicit ``traffic_class`` stamp (anything outside the S21 generator).
_METHOD_CLASSES: Dict[str, str] = {
    "seq_read": "read", "random_read": "read",
    "seq_write": "write", "random_write": "write",
    "create": "meta", "delete": "meta", "open": "meta",
    "get_info": "meta", "get_block_map": "meta",
    "stat": "meta", "find": "meta",
    "mopen": "meta", "mstat": "meta", "mcreate": "meta", "mdelete": "meta",
    "list_read": "tool", "list_write": "tool",
    "parallel_open": "parallel", "parallel_read": "parallel",
    "parallel_write": "parallel", "parallel_close": "parallel",
}

#: Continuations of already-admitted work.  Admission control gates
#: jobs at the door (``parallel_open``); once a job holds server-side
#: state, refusing its reads/writes/close would leak that state (the
#: ``_jobs`` entry survives until ``parallel_close``), so continuation
#: methods bypass the bucket and can never be shed — the bounded queue
#: admits them even past its depth threshold.  The S22 migration RPCs
#: are control-plane for the same reason: refusing a ``migrate_in``
#: mid-sweep would strand a forwarding entry with no mover behind it.
CONTINUATION_METHODS = frozenset(
    {"parallel_read", "parallel_write", "parallel_close",
     "migrate_in", "migrate_out"}
)

#: Default fair-queueing weights: naive interactive classes outweigh
#: heavy batch classes roughly 4:1 — tool jobs still progress, but they
#: cannot occupy more than their share of server slots under backlog.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "read": 4.0, "write": 4.0, "meta": 2.0, "tool": 1.0, "parallel": 1.0,
    "other": 1.0,
}

#: Queue-wait histogram bounds: sub-ms scheduling gaps up to multi-second
#: overload backlogs.
_WAIT_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0,
)


def classify(request: Any) -> str:
    """Traffic class of a request envelope (stamp first, then method)."""
    cls = getattr(request, "traffic_class", None)
    if cls is not None:
        return cls
    method = getattr(request, "method", None)
    if method is None:
        return "other"
    return _METHOD_CLASSES.get(method, "other")


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"token rate must be positive, got {rate}")
        self.rate = rate
        self.burst = float(burst) if burst is not None else max(1.0, rate * 0.05)
        if self.burst < 1.0:
            raise ValueError(f"burst must allow at least one token")
        self.tokens = self.burst
        self.last_refill = 0.0

    def try_take(self, now: float) -> bool:
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionQueue:
    """Bounded, optionally class-fair front-end for a server mailbox.

    Implements the scheduler protocol the base ``Server._next_request``
    seam expects: ``enqueue(message, now)``, ``pick(now)``, ``len()``.

    * ``depth > 0`` bounds the number of *waiting* requests; arrivals
      beyond it are marked ``admission_shed`` and served first through a
      reject lane (shedding must be cheaper than queueing, so rejects
      never wait behind real work).
    * ``weights`` switches the wait lane from FIFO to start-time fair
      queueing over traffic classes: each request gets a start tag
      ``S = max(V, F_class)`` and the class finish tag advances by
      ``1/weight``; ``pick`` serves the smallest start tag (ties broken
      by arrival order), and virtual time ``V`` follows the picked tags.
      Backlogged classes therefore share the server in proportion to
      their weights — the fairness invariant the S21 tests pin down.
    """

    def __init__(self, depth: int = 0,
                 weights: Optional[Dict[str, float]] = None) -> None:
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.depth = depth
        self.weights = dict(weights) if weights is not None else None
        self._fifo: Deque[Tuple[float, Any]] = deque()
        self._classes: Dict[str, Deque[Tuple[float, float, int, Any]]] = {}
        self._finish: Dict[str, float] = {}
        self._virtual = 0.0
        self._arrival_seq = 0
        self._reject: Deque[Any] = deque()
        self._waiting = 0
        self.shed_count = 0
        self.peak_depth = 0
        #: Measured queue delay of admitted requests (pick time minus
        #: enqueue time) — the observable the analysis models predict.
        self.wait = Histogram(bounds=_WAIT_BOUNDS)

    # -- scheduler protocol -------------------------------------------

    def __len__(self) -> int:
        return self._waiting + len(self._reject)

    def enqueue(self, message: Any, now: float) -> None:
        if (self.depth > 0 and self._waiting >= self.depth
                and getattr(message, "method", None)
                not in CONTINUATION_METHODS):
            # Past the threshold: mark and fast-lane for rejection.
            try:
                message.admission_shed = True
            except AttributeError:  # pragma: no cover - foreign message
                pass
            self.shed_count += 1
            self._reject.append(message)
            return
        self._waiting += 1
        if self._waiting > self.peak_depth:
            self.peak_depth = self._waiting
        waiting_since = getattr(message, "sent_at", None)
        if waiting_since is None:
            waiting_since = now
        if self.weights is None:
            self._fifo.append((waiting_since, message))
            return
        cls = classify(message)
        weight = self.weights.get(cls)
        if weight is None:
            weight = self.weights.get("other", 1.0)
        start = max(self._virtual, self._finish.get(cls, 0.0))
        self._finish[cls] = start + 1.0 / weight
        self._arrival_seq += 1
        lane = self._classes.get(cls)
        if lane is None:
            lane = self._classes[cls] = deque()
        lane.append((start, waiting_since, self._arrival_seq, message))

    def pick(self, now: float) -> Any:
        if self._reject:
            return self._reject.popleft()
        if self.weights is None:
            enqueued_at, message = self._fifo.popleft()
            self._waiting -= 1
            self.wait.observe(now - enqueued_at)
            return message
        best_cls = None
        best_key = None
        for cls, lane in self._classes.items():
            if not lane:
                continue
            start, _enqueued_at, seq, _message = lane[0]
            key = (start, seq)
            if best_key is None or key < best_key:
                best_key = key
                best_cls = cls
        if best_cls is None:
            raise IndexError("pick from an empty admission queue")
        start, enqueued_at, _seq, message = self._classes[best_cls].popleft()
        self._virtual = max(self._virtual, start)
        self._waiting -= 1
        self.wait.observe(now - enqueued_at)
        return message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "wfq" if self.weights is not None else "fifo"
        return (f"AdmissionQueue({mode}, waiting={self._waiting}, "
                f"depth={self.depth or 'unbounded'}, shed={self.shed_count})")


class AdmissionControl:
    """One server's composed admission policy + outcome accounting."""

    def __init__(self, policy: str = "none",
                 bucket: Optional[TokenBucket] = None,
                 queue: Optional[AdmissionQueue] = None) -> None:
        self.policy = policy
        self.bucket = bucket
        self.queue = queue
        self.offered: Dict[str, int] = {}
        self.admitted: Dict[str, int] = {}
        self.throttled: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}
        self._server = None

    # ------------------------------------------------------------------

    def bind(self, server) -> None:
        """Called by ``BridgeServer.install_admission``; adopts the
        queue-wait histogram into the metrics registry when S19
        observability is attached."""
        self._server = server
        obs = server.node.machine.sim.obs
        if obs is not None and self.queue is not None:
            obs.metrics.adopt(f"{server.name}.admission.queue_wait",
                              self.queue.wait)

    @staticmethod
    def _bump(table: Dict[str, int], cls: str) -> None:
        table[cls] = table.get(cls, 0) + 1

    def admit(self, server, request: Any):
        """The pipeline admission-stage hook (generator).

        Either returns (request admitted; the caller charges the normal
        per-request CPU next) or charges ``bridge_fast_reject`` and
        raises a typed :class:`~repro.errors.BridgeAdmissionError`.
        Refusals are first-class outcomes: per-class counters always,
        obs counters + a zero-length span event when S19 is attached.
        """
        cls = classify(request)
        self._bump(self.offered, cls)
        cpu = server.config.cpu
        obs = server.node.machine.sim.obs
        if request is not None and getattr(request, "admission_shed", False):
            self._bump(self.shed, cls)
            if obs is not None:
                obs.metrics.counter(
                    f"{server.name}.admission.shed.{cls}").inc()
                obs.event("admission.shed", "queue", node=server.node.index,
                          traffic_class=cls)
            yield Timeout(cpu.bridge_fast_reject)
            raise BridgeOverloadError(
                f"{server.name}: admission queue full "
                f"(depth {self.queue.depth if self.queue else 0}, class {cls})"
            )
        if (self.bucket is not None
                and getattr(request, "method", None)
                not in CONTINUATION_METHODS):
            now = server.node.machine.sim.now
            if not self.bucket.try_take(now):
                self._bump(self.throttled, cls)
                if obs is not None:
                    obs.metrics.counter(
                        f"{server.name}.admission.throttled.{cls}").inc()
                    obs.event("admission.throttled", "queue",
                              node=server.node.index, traffic_class=cls)
                yield Timeout(cpu.bridge_fast_reject)
                raise BridgeThrottledError(
                    f"{server.name}: token bucket empty "
                    f"(rate {self.bucket.rate:g}/s, class {cls})"
                )
        self._bump(self.admitted, cls)
        if obs is not None:
            obs.metrics.counter(f"{server.name}.admission.admitted.{cls}").inc()

    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Plain-data outcome counters (per class), for results/JSON."""
        return {
            "offered": dict(sorted(self.offered.items())),
            "admitted": dict(sorted(self.admitted.items())),
            "throttled": dict(sorted(self.throttled.items())),
            "shed": dict(sorted(self.shed.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AdmissionControl({self.policy!r}, "
                f"offered={sum(self.offered.values())}, "
                f"throttled={sum(self.throttled.values())}, "
                f"shed={sum(self.shed.values())})")


def build_admission(spec, **overrides) -> Optional[AdmissionControl]:
    """Build one server's :class:`AdmissionControl` from a spec.

    ``spec`` is ``None``/"none" (no control), a policy name, or a dict
    ``{"policy": name, ...params}``.  Policies:

    * ``"token-bucket"`` — rate limit only (params ``rate``, ``burst``).
    * ``"bounded"`` — FIFO queue with load shedding (param ``depth``).
    * ``"fair"`` — weighted fair queueing + shedding (params ``depth``,
      ``weights``).
    * ``"fifo"`` — unbounded measuring FIFO front-end (no refusals;
      exists to observe queue waits for the analysis cross-check).

    Each *server* needs its own instance (buckets and queues hold
    mutable state), so builders call this once per partition.
    """
    if spec is None:
        return None
    if isinstance(spec, AdmissionControl):
        return spec
    if isinstance(spec, str):
        params: Dict[str, Any] = {"policy": spec}
    elif isinstance(spec, dict):
        params = dict(spec)
    else:
        raise TypeError(f"admission spec must be None/str/dict, got {spec!r}")
    params.update(overrides)
    policy = params.pop("policy", "none")
    if policy in (None, "none"):
        return None
    if policy == "token-bucket":
        rate = params.pop("rate", 500.0)
        burst = params.pop("burst", None)
        _reject_extras(policy, params)
        return AdmissionControl(policy, bucket=TokenBucket(rate, burst))
    if policy == "bounded":
        depth = params.pop("depth", 32)
        _reject_extras(policy, params)
        return AdmissionControl(policy, queue=AdmissionQueue(depth=depth))
    if policy == "fair":
        depth = params.pop("depth", 32)
        weights = params.pop("weights", None) or dict(DEFAULT_WEIGHTS)
        _reject_extras(policy, params)
        return AdmissionControl(
            policy, queue=AdmissionQueue(depth=depth, weights=weights)
        )
    if policy == "fifo":
        _reject_extras(policy, params)
        return AdmissionControl(policy, queue=AdmissionQueue(depth=0))
    raise ValueError(f"unknown admission policy {policy!r}")


def _reject_extras(policy: str, params: Dict[str, Any]) -> None:
    if params:
        raise ValueError(
            f"admission policy {policy!r} got unknown parameters "
            f"{sorted(params)}"
        )
