"""Workload shape for open-loop traffic (S21): what each arrival does.

Three deterministic samplers compose into a request stream:

* :class:`ZipfCatalog` — file popularity.  Production file traffic is
  heavily skewed; rank-``r`` popularity ``1/r^skew`` over a fixed
  catalog of pre-built files reproduces that with two RNG draws.
* :class:`RequestMix` — traffic class.  Weighted choice over the five
  request classes the Bridge surface exposes: naive ``read``/``write``,
  ``meta`` (directory operations), ``tool`` (list-I/O batch jobs, the
  Get-Info-then-bulk-access shape of section 5 tools), and ``parallel``
  (parallel-open jobs with worker fan-out).
* :func:`sample_request` — the per-arrival descriptor.  All randomness
  is drawn *at arrival time* from named simulator streams, never inside
  the executing client process, so the request sequence is a pure
  function of the seed no matter how execution interleaves.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: The request classes the generator knows how to issue.
CLASSES = ("read", "write", "meta", "tool", "parallel")

#: Default class weights: reads dominate, metadata is chatty, heavy
#: batch/parallel jobs are rare but large — the mix that makes fairness
#: interesting (a few tool jobs can monopolize a FIFO server).
DEFAULT_MIX: Dict[str, float] = {
    "read": 0.58, "write": 0.22, "meta": 0.10, "tool": 0.06, "parallel": 0.04,
}


class ZipfCatalog:
    """Zipf-popularity sampling over a fixed list of file names.

    Rank 0 (the first name) is the hottest.  Sampling is a binary search
    over the precomputed CDF — O(log n) per draw, no floats accumulated
    at sample time, so identical seeds give identical streams.
    """

    __slots__ = ("names", "blocks_per_file", "skew", "_cdf")

    def __init__(self, names: Sequence[str], blocks_per_file: int,
                 skew: float = 1.1) -> None:
        if not names:
            raise ValueError("catalog needs at least one file")
        if blocks_per_file < 1:
            raise ValueError("files need at least one block")
        if skew <= 0:
            raise ValueError(f"skew must be positive, got {skew}")
        self.names = list(names)
        self.blocks_per_file = blocks_per_file
        self.skew = skew
        weights = [1.0 / (rank + 1) ** skew for rank in range(len(self.names))]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float round-off at the top
        self._cdf = cdf

    def sample(self, rng) -> str:
        return self.names[bisect_left(self._cdf, rng.random())]

    def __len__(self) -> int:
        return len(self.names)


class RequestMix:
    """Weighted choice over traffic classes."""

    __slots__ = ("weights", "_classes", "_cdf")

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        chosen = dict(DEFAULT_MIX if weights is None else weights)
        unknown = sorted(set(chosen) - set(CLASSES))
        if unknown:
            raise ValueError(f"unknown traffic classes: {unknown}")
        total = sum(chosen.values())
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.weights = chosen
        self._classes = [cls for cls in CLASSES if chosen.get(cls, 0) > 0]
        cdf: List[float] = []
        acc = 0.0
        for cls in self._classes:
            acc += chosen[cls] / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self, rng) -> str:
        return self._classes[bisect_left(self._cdf, rng.random())]


@dataclass
class TrafficRequest:
    """Everything one in-sim client needs to execute one arrival.

    Sampled up front (see module docstring) — the executor makes no
    random draws of its own.
    """

    seq: int
    cls: str
    name: str
    block: int = 0
    #: Extra blocks touched by heavy classes (tool list-I/O pattern,
    #: parallel read rounds).
    blocks: Optional[List[int]] = None
    #: Slow-client stall inserted mid-operation, seconds (0 = normal).
    stall: float = 0.0


def sample_request(seq: int, catalog: ZipfCatalog, mix: RequestMix, rng, *,
                   slow_fraction: float = 0.0, slow_stall: float = 0.05,
                   tool_span: int = 6) -> TrafficRequest:
    """Draw one arrival's complete descriptor from ``rng``."""
    cls = mix.sample(rng)
    name = catalog.sample(rng)
    blocks_per_file = catalog.blocks_per_file
    block = rng.randrange(blocks_per_file)
    blocks: Optional[List[int]] = None
    if cls == "tool":
        span = min(tool_span, blocks_per_file)
        start = rng.randrange(blocks_per_file - span + 1)
        blocks = list(range(start, start + span))
    stall = 0.0
    if slow_fraction > 0.0 and rng.random() < slow_fraction:
        stall = slow_stall
    return TrafficRequest(seq=seq, cls=cls, name=name, block=block,
                          blocks=blocks, stall=stall)
