"""Open-loop arrival processes (S21).

The generators so far drove Bridge with a dozen closed-loop clients:
each client waits for its previous request before issuing the next, so
offered load *self-throttles* exactly when the server saturates — the
regime the ROADMAP's "heavy traffic" goal cares about is unreachable.
An open-loop process issues requests on its own clock regardless of how
the server is doing; past the saturation knee the queue grows without
bound and the latency distribution, not the throughput, tells the story.

Two arrival shapes:

* :class:`PoissonArrivals` — exponential interarrivals at a fixed rate,
  the classic M/G/1 driver and the baseline for the queueing-theory
  cross-check in :mod:`repro.analysis.models`.
* :class:`BurstArrivals` — a two-state modulated Poisson process (calm
  rate / burst rate with exponential dwell times), the "many small jobs
  arriving in bursts" shape that file-based communication workloads
  exhibit.

Both draw exclusively from a caller-supplied ``random.Random`` (obtained
from ``sim.random.stream(...)``), so the arrival sequence is a pure
function of the simulation seed.
"""

from __future__ import annotations


class PoissonArrivals:
    """Exponential interarrival times at ``rate`` requests/second."""

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def next_delay(self, rng) -> float:
        return rng.expovariate(self.rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PoissonArrivals(rate={self.rate})"


class BurstArrivals:
    """Two-state Markov-modulated Poisson arrivals.

    The process alternates between a *calm* state (rate ``rate``) and a
    *burst* state (rate ``rate * burst_factor``); dwell times in each
    state are exponential with means ``calm_mean`` / ``burst_mean``
    seconds.  The long-run average rate is reported by :attr:`mean_rate`
    so sweeps can compare burst arms against Poisson arms at equal
    offered load.
    """

    __slots__ = ("rate", "burst_factor", "calm_mean", "burst_mean",
                 "_bursting", "_state_left")

    def __init__(self, rate: float, burst_factor: float = 4.0,
                 calm_mean: float = 0.5, burst_mean: float = 0.1) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if burst_factor < 1:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        if calm_mean <= 0 or burst_mean <= 0:
            raise ValueError("state dwell means must be positive")
        self.rate = rate
        self.burst_factor = burst_factor
        self.calm_mean = calm_mean
        self.burst_mean = burst_mean
        self._bursting = False
        self._state_left = 0.0

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate across both states."""
        calm_time = self.calm_mean
        burst_time = self.burst_mean
        total = calm_time + burst_time
        return (self.rate * calm_time
                + self.rate * self.burst_factor * burst_time) / total

    def next_delay(self, rng) -> float:
        delay = 0.0
        while True:
            current = (self.rate * self.burst_factor if self._bursting
                       else self.rate)
            if self._state_left <= 0.0:
                mean = self.burst_mean if not self._bursting else self.calm_mean
                # State expired: flip, then draw the new dwell.
                self._bursting = not self._bursting
                self._state_left = rng.expovariate(1.0 / mean)
                continue
            gap = rng.expovariate(current)
            if gap <= self._state_left:
                self._state_left -= gap
                return delay + gap
            # No arrival before the state flips: consume the remaining
            # dwell and keep drawing in the next state (memorylessness
            # makes this exact, not an approximation).
            delay += self._state_left
            self._state_left = 0.0


def make_arrivals(kind: str, rate: float, **kwargs):
    """Build an arrival process from a spec string ("poisson"/"burst")."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "burst":
        return BurstArrivals(rate, **kwargs)
    raise ValueError(f"unknown arrival kind {kind!r}")
