"""The open-loop traffic source (S21).

:class:`TrafficGenerator` turns arrival processes + workload samplers
into *hundreds to thousands of concurrent in-sim clients*: the source
process draws the next interarrival gap, samples the arrival's complete
descriptor (class, file, blocks, slow-client stall), and spawns an
independent executor process — then immediately waits for the next
arrival.  Executors never feed back into the source, so offered load is
whatever the arrival process says it is, no matter how slowly the
server answers.  That is the defining property closed-loop drivers
lack, and it is what makes the saturation knee observable.

Determinism: the source draws *all* randomness from two named simulator
streams (``traffic.arrivals``, ``traffic.workload``) at arrival time.
Executor processes make zero random draws, so their interleaving —
which depends on server scheduling — cannot perturb the request
sequence.  Same seed, same arrivals, same descriptors, byte-identical
run.

Abandonment: an executor with finite ``patience`` races its operation
against a timer (:class:`~repro.sim.AnyOf` over the inner process's
completion signal and a deadline signal).  When the timer wins, the
client walks away and the outcome is ``abandoned`` — but the inner
operation keeps running, because a real server cannot reclaim work a
departed client already queued.  Admission refusals
(:class:`~repro.errors.BridgeThrottledError` /
:class:`~repro.errors.BridgeOverloadError`) are caught *inside* the
executor and recorded as first-class outcomes, never raised into the
simulation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import BridgeClient, JobController, ParallelWorker
from repro.errors import (
    BridgeError,
    BridgeOverloadError,
    BridgeThrottledError,
)
from repro.sim import AnyOf, Signal, Timeout, join_all
from repro.traffic.arrivals import make_arrivals
from repro.traffic.slo import SLORecorder
from repro.traffic.workload import (
    RequestMix,
    TrafficRequest,
    ZipfCatalog,
    sample_request,
)


class TrafficGenerator:
    """Drives one Bridge system with open-loop multi-class traffic."""

    def __init__(self, system, catalog: ZipfCatalog, *,
                 mix: Optional[RequestMix] = None,
                 recorder: Optional[SLORecorder] = None,
                 patience: Optional[float] = None,
                 slow_fraction: float = 0.0,
                 slow_stall: float = 0.05,
                 tool_span: int = 6,
                 parallel_workers: int = 2,
                 arrival_log_limit: int = 256) -> None:
        self.system = system
        self.catalog = catalog
        self.mix = mix if mix is not None else RequestMix()
        self.recorder = recorder if recorder is not None else SLORecorder()
        self.patience = patience
        self.slow_fraction = slow_fraction
        self.slow_stall = slow_stall
        self.tool_span = tool_span
        self.parallel_workers = parallel_workers
        self.spawned = 0
        #: First ``arrival_log_limit`` arrivals as ``(time, class, name)``
        #: — determinism tests compare these across runs and seeds.
        self.arrival_log: List[Tuple[float, str, str]] = []
        self._arrival_log_limit = arrival_log_limit

    # ------------------------------------------------------------------
    # The source process
    # ------------------------------------------------------------------

    def open_loop(self, rate: float, duration: float,
                  arrival_kind: str = "poisson", arrivals=None):
        """Generator: emit arrivals for ``duration`` simulated seconds.

        Drive with ``system.run(gen.open_loop(...))``; the run then
        continues until every spawned executor resolves, so the final
        simulated clock covers the post-source drain as well.
        """
        sim = self.system.sim
        node = self.system.client_node
        if arrivals is None:
            arrivals = make_arrivals(arrival_kind, rate)
        arrival_rng = sim.random.stream("traffic.arrivals")
        workload_rng = sim.random.stream("traffic.workload")
        deadline = sim.now + duration
        while True:
            gap = arrivals.next_delay(arrival_rng)
            if sim.now + gap >= deadline:
                return self.spawned
            yield Timeout(gap)
            request = sample_request(
                self.spawned, self.catalog, self.mix, workload_rng,
                slow_fraction=self.slow_fraction,
                slow_stall=self.slow_stall,
                tool_span=self.tool_span,
            )
            if len(self.arrival_log) < self._arrival_log_limit:
                self.arrival_log.append((sim.now, request.cls, request.name))
            self.recorder.record_issue(request.cls)
            self.spawned += 1
            node.spawn(
                self._execute(request), name=f"traffic.{request.seq}"
            )

    # ------------------------------------------------------------------
    # Executors (one process per arrival)
    # ------------------------------------------------------------------

    def _port_for(self, name: str):
        fabric = getattr(self.system, "fabric", None)
        if fabric is not None:
            return fabric.port_for(name)
        return self.system.bridge.port

    def _execute(self, request: TrafficRequest):
        sim = self.system.sim
        node = self.system.client_node
        start = sim.now
        inner = node.spawn(
            self._attempt(request), name=f"traffic.{request.seq}.op"
        )
        if self.patience is None:
            outcome = yield inner.join()
        else:
            deadline = Signal(sim)
            sim.call_later(self.patience, deadline.fire, "abandoned")
            index, value = yield AnyOf([inner.completion, deadline])
            outcome = value if index == 0 else "abandoned"
        self.recorder.record_outcome(request.cls, outcome, sim.now - start)

    def _attempt(self, request: TrafficRequest):
        """The operation body; returns an outcome string, never raises."""
        try:
            if request.cls == "parallel":
                yield from self._parallel_job(request)
            else:
                yield from self._naive_op(request)
        except BridgeThrottledError:
            return "throttled"
        except BridgeOverloadError:
            return "shed"
        except BridgeError:
            return "failed"
        return "ok"

    def _naive_op(self, request: TrafficRequest):
        node = self.system.client_node
        client = BridgeClient(
            node, self._port_for(request.name),
            name=f"traffic.{request.seq}", traffic_class=request.cls,
        )
        name = request.name
        if request.cls == "read":
            yield from client.random_read(name, request.block)
            if request.stall > 0.0:
                # Slow client: a paced second read holds the session open.
                yield Timeout(request.stall)
                follow = (request.block + 1) % self.catalog.blocks_per_file
                yield from client.random_read(name, follow)
        elif request.cls == "write":
            payload = b"traffic-%08d|" % request.seq
            yield from client.random_write(name, request.block, payload)
        elif request.cls == "meta":
            yield from client.open(name)
        elif request.cls == "tool":
            blocks = request.blocks or [request.block]
            if request.stall > 0.0 and len(blocks) > 1:
                half = len(blocks) // 2
                yield from client.list_read(name, blocks[:half])
                yield Timeout(request.stall)
                yield from client.list_read(name, blocks[half:])
            else:
                yield from client.list_read(name, blocks)
        else:
            raise ValueError(f"unknown traffic class {request.cls!r}")

    def _parallel_job(self, request: TrafficRequest):
        """One parallel-open job: open, read to EOF, close.

        Worker processes are spawned only after the open is admitted, so
        a refused job leaves no blocked workers behind; a failure mid-job
        poisons the worker ports with eof deliveries so they always
        terminate."""
        from repro.core.parallel import BlockDelivery

        node = self.system.client_node
        controller = JobController(
            node, self.system.server_target(),
            name=f"traffic.{request.seq}.ctl", traffic_class="parallel",
        )
        workers = [
            ParallelWorker(node, index, name=f"traffic.{request.seq}.w")
            for index in range(self.parallel_workers)
        ]

        stall = request.stall

        def worker_body(worker):
            while True:
                delivery = yield from worker.receive()
                if delivery.eof:
                    return
                if stall > 0.0:
                    yield Timeout(stall)  # slow consumer

        job = yield from controller.open(
            request.name, [w.port for w in workers]
        )
        worker_processes = [
            node.spawn(worker_body(w), name=f"traffic.{request.seq}.w{w.index}")
            for w in workers
        ]
        try:
            while True:
                count = yield from controller.read()
                if count == 0:
                    break
            yield from controller.close()
        except BridgeError:
            # Poison the workers so they terminate, then re-raise for
            # outcome classification.  Direct delivery is a local
            # bookkeeping act, not a modeled message.
            for worker in workers:
                worker.port.mailbox.deliver(BlockDelivery(
                    job_id=job.job_id, worker_index=worker.index,
                    block_number=-1, data=None, eof=True,
                ))
            yield join_all(worker_processes)
            raise
        yield join_all(worker_processes)
