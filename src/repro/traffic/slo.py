"""SLO telemetry for open-loop traffic (S21).

The client-side half of the traffic subsystem's accounting: every
arrival is recorded when issued and again when it resolves, with one of
five outcomes:

* ``ok`` — served; latency lands in the per-class histogram.
* ``throttled`` — refused by a token bucket (typed error at the client).
* ``shed`` — refused by a bounded admission queue.
* ``abandoned`` — the client gave up after its patience expired (the
  server may still be working; open-loop clients do not wait forever).
* ``failed`` — any other Bridge error (should be zero in healthy runs).

Per-class latency distributions use S19 :class:`~repro.obs.Histogram`
instruments (p50/p99/p999 via the configurable-quantile extension), so
summaries are deterministic and registry-adoptable.  *Goodput* counts
``ok`` completions per second of driving time — the number that peaks at
the saturation knee and then tells you whether your admission policy is
protecting the server (goodput holds) or not (goodput collapses while
queues grow).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.metrics import Histogram

OUTCOMES = ("ok", "throttled", "shed", "abandoned", "failed")

#: Latency bounds for traffic SLO histograms: the fast-reject floor
#: (sub-ms) up to deep-overload latencies.
SLO_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0, 100.0,
)


class ClassStats:
    """Counters and the service-latency histogram for one traffic class."""

    __slots__ = ("offered", "outcomes", "latency")

    def __init__(self) -> None:
        self.offered = 0
        self.outcomes: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.latency = Histogram(bounds=SLO_LATENCY_BOUNDS)

    @property
    def completed(self) -> int:
        return self.outcomes["ok"]

    def summary(self) -> Dict[str, object]:
        hist = self.latency
        return {
            "offered": self.offered,
            **{outcome: self.outcomes[outcome] for outcome in OUTCOMES},
            "p50": hist.p50,
            "p99": hist.p99,
            "p999": hist.p999,
            "mean": hist.mean,
            "max": hist.max if hist.max is not None else 0.0,
        }


class SLORecorder:
    """Aggregates per-class outcomes for one traffic run."""

    def __init__(self, registry=None, prefix: str = "traffic") -> None:
        self._classes: Dict[str, ClassStats] = {}
        #: Optional S19 registry adoption: per-class latency histograms
        #: appear as ``traffic.<class>.latency`` in snapshots.
        self._registry = registry
        self._prefix = prefix

    def _stats(self, cls: str) -> ClassStats:
        stats = self._classes.get(cls)
        if stats is None:
            stats = self._classes[cls] = ClassStats()
            if self._registry is not None:
                self._registry.adopt(
                    f"{self._prefix}.{cls}.latency", stats.latency
                )
        return stats

    # ------------------------------------------------------------------

    def record_issue(self, cls: str) -> None:
        self._stats(cls).offered += 1

    def record_outcome(self, cls: str, outcome: str, latency: float) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        stats = self._stats(cls)
        stats.outcomes[outcome] += 1
        if outcome == "ok":
            stats.latency.observe(latency)

    # ------------------------------------------------------------------

    @property
    def classes(self) -> Dict[str, ClassStats]:
        return self._classes

    def total(self, outcome: Optional[str] = None) -> int:
        if outcome is None:
            return sum(stats.offered for stats in self._classes.values())
        return sum(stats.outcomes[outcome] for stats in self._classes.values())

    def goodput(self, duration: float) -> float:
        """``ok`` completions per second over ``duration`` seconds."""
        return self.total("ok") / duration if duration > 0 else 0.0

    def summary(self, duration: float) -> Dict[str, object]:
        """Deterministic plain-data dump for results and BENCH JSON."""
        offered = self.total()
        completed = self.total("ok")
        refused = self.total("throttled") + self.total("shed")
        out: Dict[str, object] = {
            "offered": offered,
            "completed": completed,
            "throttled": self.total("throttled"),
            "shed": self.total("shed"),
            "abandoned": self.total("abandoned"),
            "failed": self.total("failed"),
            "offered_rate": offered / duration if duration > 0 else 0.0,
            "goodput": self.goodput(duration),
            "refusal_rate": refused / offered if offered else 0.0,
            "abandon_rate": (
                self.total("abandoned") / offered if offered else 0.0
            ),
            "classes": {
                cls: stats.summary()
                for cls, stats in sorted(self._classes.items())
            },
        }
        return out
