"""The search (grep) tool: a read-only Bridge tool returning summaries.

Section 4.2 lists grep among the standard tools, and 5.1 notes that a
tool returning "a small amount of information at completion time" can
"perform sequential searches or produce summary information."  Each
worker scans its constituent file locally — only match positions cross
the interconnect, which is the entire point of exporting code to the
data: the data is filtered (and presumably compressed) before it moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.efs import EFSClient
from repro.sim import Timeout
from repro.tools.base import Tool


@dataclass
class Match:
    """One pattern occurrence: global block number and byte offset."""

    global_block: int
    offset: int


@dataclass
class GrepResult:
    """All matches plus per-worker accounting."""

    pattern: bytes
    matches: List[Match] = field(default_factory=list)
    blocks_scanned: int = 0
    elapsed: float = 0.0

    @property
    def count(self) -> int:
        return len(self.matches)


class GrepTool(Tool):
    """Parallel substring search over an interleaved file."""

    name = "grep"

    def run(self, name: str, pattern: bytes):
        """Search every block of ``name`` for ``pattern``."""
        if not pattern:
            raise ValueError("empty search pattern")
        started = self.machine.sim.now
        yield from self.get_info()
        src = yield from self.open(name)
        specs = []
        for constituent in src.constituents:
            node = self.node_of(constituent.node_index)
            specs.append(
                (node, self._scan(node, constituent, pattern),
                 f"egrep{constituent.slot}")
            )
        per_worker = yield from self.run_workers(specs)
        matches: List[Match] = []
        scanned = 0
        for worker_matches, worker_blocks in per_worker:
            matches.extend(worker_matches)
            scanned += worker_blocks
        matches.sort(key=lambda m: (m.global_block, m.offset))
        return GrepResult(
            pattern=pattern,
            matches=matches,
            blocks_scanned=scanned,
            elapsed=self.machine.sim.now - started,
        )

    def _scan(self, node, constituent, pattern: bytes):
        client = EFSClient(node, constituent.lfs_port, name="egrep")
        hint = constituent.head_addr
        matches: List[Match] = []
        for local_block in range(constituent.size_blocks):
            result = yield from client.read(
                constituent.efs_file_number, local_block, hint=hint
            )
            hint = result.next_addr
            yield Timeout(self.config.cpu.tool_record)
            offset = result.data.find(pattern)
            while offset != -1:
                matches.append(Match(result.global_block, offset))
                offset = result.data.find(pattern, offset + 1)
        return matches, constituent.size_blocks
