"""A summary-information tool: parallel byte/word/line counting.

Demonstrates the "produce summary information" tool pattern of section
5.1 — each worker reduces its constituent file to three integers, so the
reduction crossing the network is constant-size per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.efs import EFSClient
from repro.sim import Timeout
from repro.tools.base import Tool


@dataclass
class CountResult:
    """Totals across the interleaved file."""

    data_bytes: int
    words: int
    lines: int
    blocks: int
    elapsed: float


class WordCountTool(Tool):
    """Parallel wc over an interleaved file (counts trailing NUL padding
    as neither words nor lines)."""

    name = "wc"

    def run(self, name: str):
        started = self.machine.sim.now
        yield from self.get_info()
        src = yield from self.open(name)
        specs = []
        for constituent in src.constituents:
            node = self.node_of(constituent.node_index)
            specs.append(
                (node, self._count(node, constituent), f"ewc{constituent.slot}")
            )
        per_worker = yield from self.run_workers(specs)
        data_bytes = sum(w[0] for w in per_worker)
        words = sum(w[1] for w in per_worker)
        lines = sum(w[2] for w in per_worker)
        blocks = sum(w[3] for w in per_worker)
        return CountResult(
            data_bytes=data_bytes,
            words=words,
            lines=lines,
            blocks=blocks,
            elapsed=self.machine.sim.now - started,
        )

    def _count(self, node, constituent):
        client = EFSClient(node, constituent.lfs_port, name="ewc")
        hint = constituent.head_addr
        data_bytes = words = lines = 0
        for local_block in range(constituent.size_blocks):
            result = yield from client.read(
                constituent.efs_file_number, local_block, hint=hint
            )
            hint = result.next_addr
            yield Timeout(self.config.cpu.tool_record)
            payload = result.data.rstrip(b"\x00")
            data_bytes += len(payload)
            words += len(payload.split())
            lines += payload.count(b"\n")
        return data_bytes, words, lines, constituent.size_blocks
