"""The Bridge tool framework (paper section 4.2).

"Bridge tools are applications that become part of the file system...
Tools communicate with the Bridge Server to obtain structural information
from the Bridge directory.  Thereafter they have direct access to the LFS
level of the file system."  The typical interaction is (1) a brief phase
of communication with the Bridge Server to create/open files and learn
the LFS names, (2) the creation of subprocesses on all the LFS nodes, and
(3) a lengthy series of interactions between the subprocesses and the
LFS instances.

Worker start-up and completion travel through an embedded binary tree of
spawns, giving the O(log p) start-up/completion term in the copy tool's
O(n/p + log p) cost (section 5.1).  A sequential spawner is provided for
the ablation bench.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.core.info import OpenResult, SystemInfo
from repro.machine import Client, Port
from repro.sim import Timeout, join_all

#: EFS file-number base reserved for tool scratch files, far above the
#: Bridge Server's allocation range.
SCRATCH_FILE_BASE = 10**9

#: One spec per worker: (machine node, generator, name).
WorkerSpec = Tuple[object, object, str]


def tree_spawn(machine, specs: Sequence[WorkerSpec]):
    """Run every worker, fanning out spawns through a binary tree.

    Returns (as a generator result) the list of worker results in spec
    order.  Start-up is O(log n) deep — each spawned wrapper forwards two
    subtrees before running its own body — and completion joins bubble
    back up the same tree.
    """
    if not specs:
        return []
    root = machine.sim.spawn(
        _tree_node(machine, list(specs)), name=f"{specs[0][2]}.tree"
    )
    results = yield root.join()
    return results


def _tree_node(machine, specs: List[WorkerSpec]):
    node, generator, name = specs[0]
    rest = specs[1:]
    mid = len(rest) // 2
    children = []
    for half in (rest[:mid], rest[mid:]):
        if half:
            child = yield machine.spawn_remote(
                half[0][0], _tree_node(machine, half), name=f"{half[0][2]}.tree"
            )
            children.append(child)
    own = yield from generator
    results = [own]
    for child in children:
        child_results = yield child.join()
        results.extend(child_results)
    return results


def sequential_spawn(machine, specs: Sequence[WorkerSpec]):
    """Spawn workers one by one from the caller (the naive alternative)."""
    processes = []
    for node, generator, name in specs:
        process = yield machine.spawn_remote(node, generator, name=name)
        processes.append(process)
    results = yield join_all(processes)
    return results


class Tool:
    """Base class for Bridge tools.

    A tool lives on a node (usually the front end), bootstraps itself with
    Get Info, manages files through the Bridge Server, and exports worker
    code to the LFS nodes with :meth:`run_workers`.
    """

    name = "tool"

    def __init__(self, node, server_port: Port, config: SystemConfig,
                 use_tree_spawn: bool = True) -> None:
        self.node = node
        self.machine = node.machine
        # A plain server Port, or a partitioned fabric router (anything
        # with ``port_for(name)``): per-name operations resolve their
        # owning partition, Get Info aggregates across all of them.
        self.server_port = server_port
        self.config = config
        self.use_tree_spawn = use_tree_spawn
        self._rpc = Client(node, self.name)
        self.system_info: Optional[SystemInfo] = None

    # ------------------------------------------------------------------
    # Phase 1 helpers: talk to the Bridge Server
    # ------------------------------------------------------------------

    def _target(self, name: str) -> Port:
        """The request port owning ``name`` (partition-routed on a
        fabric, the single server port otherwise)."""
        port_for = getattr(self.server_port, "port_for", None)
        return port_for(name) if port_for is not None else self.server_port

    def get_info(self):
        """Fetch (and cache) the middle-layer structure package.

        On a partitioned fabric this fans out to every partition and
        aggregates (all partitions share the LFS set; the merged package
        lists every request port in ``server_ports``)."""
        ports = getattr(self.server_port, "ports", None)
        if ports is None:
            info = yield from self._rpc.call(self.server_port, "get_info")
        else:
            from repro.machine import gather

            infos = yield from gather(
                self.node, [(port, "get_info", {}, 0) for port in ports]
            )
            info = SystemInfo(
                lfs=list(infos[0].lfs),
                server_port=infos[0].server_port,
                server_ports=[i.server_port for i in infos],
            )
        self.system_info = info
        return info

    def open(self, name: str) -> "OpenResult":
        return (yield from self._rpc.call(self._target(name), "open", name=name))

    def create(self, name: str, width=None, node_slots=None, start: int = 0):
        return (
            yield from self._rpc.call(
                self._target(name),
                "create",
                name=name,
                width=width,
                node_slots=node_slots,
                start=start,
            )
        )

    def delete(self, name: str):
        return (yield from self._rpc.call(self._target(name), "delete", name=name))

    def lfs_slot_of_node(self, node_index: int) -> int:
        """Index into the system LFS list for a machine node."""
        if self.system_info is None:
            raise RuntimeError("call get_info() before resolving LFS slots")
        for slot, handle in enumerate(self.system_info.lfs):
            if handle.node_index == node_index:
                return slot
        raise ValueError(f"no LFS instance on node {node_index}")

    def node_of(self, node_index: int):
        """The machine node object for a node index."""
        return self.machine.node(node_index)

    # ------------------------------------------------------------------
    # Phase 2/3 helpers: export code to the data
    # ------------------------------------------------------------------

    def run_workers(self, specs: Sequence[WorkerSpec]):
        """Start one worker per spec on its node and wait for all results."""
        if self.use_tree_spawn:
            return (yield from tree_spawn(self.machine, specs))
        return (yield from sequential_spawn(self.machine, specs))

    def charge(self, seconds: float):
        """Charge tool-level CPU time on the current process."""
        yield Timeout(seconds)
