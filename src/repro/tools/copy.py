"""The copy tool (paper section 5.1) and its transforming cousins.

"An ordinary file system can copy a file of length n in time O(n).  If
the copy program is written as a Bridge tool, files can be copied in time
O(n/p + log(p)) with p-way interleaving."  One ``ecopy`` worker runs on
each LFS node, streaming its constituent file block by block:

    ecopy (LFS, local src, local dest)
        Send Read (local src) to LFS; Receive (data)
        while not end of file
            Send Write (local dest, data) to LFS
            Send Read (local src) to LFS; Receive (data)
        endwhile

"The while loop in ecopy could contain any transformation on the blocks
of data that preserves their number and order" — the ``transform`` hook
is exactly that loop body, and the filter tools in
:mod:`repro.tools.filters` are implemented as such transformations.

The copy ignores the Bridge headers of the source: the EFS rebuilds
per-block headers for the destination, and because all pointers are
block-number/LFS-instance pairs they remain valid in the new file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.efs import EFSClient
from repro.sim import Timeout
from repro.tools.base import Tool


@dataclass
class WorkerReport:
    """What one ecopy worker hands back at completion time.

    "By returning a small amount of information at completion time, we
    can also perform sequential searches or produce summary information."
    """

    slot: int
    node_index: int
    blocks: int
    elapsed: float
    summary: Optional[dict] = None


@dataclass
class CopyResult:
    """Aggregate outcome of one tool run."""

    source: str
    dest: str
    total_blocks: int
    elapsed: float
    workers: List[WorkerReport] = field(default_factory=list)

    @property
    def blocks_per_second(self) -> float:
        return self.total_blocks / self.elapsed if self.elapsed > 0 else 0.0


class CopyTool(Tool):
    """Parallel whole-file copy via per-LFS ecopy workers."""

    name = "copy"

    # ------------------------------------------------------------------
    # Transformation hook (identity for plain copy)
    # ------------------------------------------------------------------

    def transform(self, data: bytes, local_block: int, slot: int) -> bytes:
        """Per-block transformation; must preserve block count and order."""
        return data

    def transform_cpu(self) -> float:
        """CPU charged per transformed block (identity copy: none)."""
        return 0.0

    def summarize(self, summary: Optional[dict], data: bytes,
                  global_block: int) -> Optional[dict]:
        """Fold one block into the worker's running summary (optional)."""
        return summary

    # ------------------------------------------------------------------

    def run(self, source: str, dest: str):
        """Copy ``source`` to a freshly created ``dest``; returns CopyResult."""
        started = self.node.machine.sim.now
        yield from self.get_info()
        src = yield from self.open(source)
        slots = [self.lfs_slot_of_node(c.node_index) for c in src.constituents]
        yield from self.create(dest, node_slots=slots, start=src.start)
        dst = yield from self.open(dest)
        specs = []
        for constituent, dst_constituent in zip(src.constituents, dst.constituents):
            node = self.node_of(constituent.node_index)
            specs.append(
                (
                    node,
                    self._ecopy(node, constituent, dst_constituent),
                    f"ecopy{constituent.slot}",
                )
            )
        reports = yield from self.run_workers(specs)
        elapsed = self.node.machine.sim.now - started
        return CopyResult(
            source=source,
            dest=dest,
            total_blocks=sum(r.blocks for r in reports),
            elapsed=elapsed,
            workers=reports,
        )

    # ------------------------------------------------------------------

    def _ecopy(self, node, src_constituent, dst_constituent):
        """The per-LFS worker body: stream local src into local dest."""
        sim = self.machine.sim
        started = sim.now
        client = EFSClient(node, src_constituent.lfs_port, name="ecopy")
        src_file = src_constituent.efs_file_number
        dst_file = dst_constituent.efs_file_number
        size = src_constituent.size_blocks
        hint = src_constituent.head_addr
        summary: Optional[dict] = None
        interleave_width = max(1, len(self.system_info.lfs)) if self.system_info else 1
        for local_block in range(size):
            result = yield from client.read(src_file, local_block, hint=hint)
            hint = result.next_addr
            cpu = self.transform_cpu()
            if cpu:
                yield Timeout(cpu)
            data = self.transform(result.data, local_block, src_constituent.slot)
            summary = self.summarize(summary, data, result.global_block)
            yield from client.write(dst_file, local_block, data)
        return WorkerReport(
            slot=src_constituent.slot,
            node_index=src_constituent.node_index,
            blocks=size,
            elapsed=sim.now - started,
            summary=summary,
        )
