"""Bridge tools: applications that become part of the file system."""

from repro.tools.base import SCRATCH_FILE_BASE, Tool, sequential_spawn, tree_spawn
from repro.tools.copy import CopyResult, CopyTool, WorkerReport
from repro.tools.filters import EncryptTool, LineLexTool, TranslateTool, rot13_table
from repro.tools.grep import GrepResult, GrepTool, Match
from repro.tools.parallel_utils import (
    FindResult,
    PCopyResult,
    PCopyTool,
    PFindTool,
    PRemoveTool,
    ParallelUtility,
    RemoveResult,
)
from repro.tools.sort import SortResult, SortTool
from repro.tools.wc import CountResult, WordCountTool

__all__ = [
    "SCRATCH_FILE_BASE",
    "CopyResult",
    "CopyTool",
    "CountResult",
    "EncryptTool",
    "FindResult",
    "GrepResult",
    "GrepTool",
    "LineLexTool",
    "Match",
    "PCopyResult",
    "PCopyTool",
    "PFindTool",
    "PRemoveTool",
    "ParallelUtility",
    "RemoveResult",
    "SortResult",
    "SortTool",
    "Tool",
    "TranslateTool",
    "WordCountTool",
    "WorkerReport",
    "rot13_table",
    "sequential_spawn",
    "tree_spawn",
]
