"""One-to-one filter tools (paper section 5.1).

"Any one-to-one filter will display the same behavior; simple
modifications to the copy tool allow us to perform character translation,
encryption, or lexical analysis on fixed-length lines."  Each filter here
is exactly such a modification: a :class:`~repro.tools.copy.CopyTool`
subclass overriding the per-block ``transform`` hook.  The benches verify
the section's claim that filters run "within a constant factor of the
copy tool's time".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import CpuCosts
from repro.tools.copy import CopyTool


def rot13_table() -> bytes:
    """A classic character-translation table (letters rotated by 13)."""
    table = bytearray(range(256))
    for offset in range(26):
        table[ord("a") + offset] = ord("a") + (offset + 13) % 26
        table[ord("A") + offset] = ord("A") + (offset + 13) % 26
    return bytes(table)


class TranslateTool(CopyTool):
    """Character translation on every block (e.g. case folding, rot13)."""

    name = "translate"

    def __init__(self, node, server_port, config, table: bytes,
                 **kwargs) -> None:
        super().__init__(node, server_port, config, **kwargs)
        if len(table) != 256:
            raise ValueError("translation table must have 256 entries")
        self.table = table

    def transform(self, data: bytes, local_block: int, slot: int) -> bytes:
        return data.translate(self.table)

    def transform_cpu(self) -> float:
        return 2.0 * self.config.cpu.tool_record


class EncryptTool(CopyTool):
    """XOR stream 'encryption' with a repeating key.

    Involutive: encrypting twice with the same key restores the original,
    which the tests exploit to verify block order is preserved.
    """

    name = "encrypt"

    def __init__(self, node, server_port, config, key: bytes, **kwargs) -> None:
        super().__init__(node, server_port, config, **kwargs)
        if not key:
            raise ValueError("encryption key must be non-empty")
        self.key = key

    def transform(self, data: bytes, local_block: int, slot: int) -> bytes:
        key = self.key
        return bytes(b ^ key[i % len(key)] for i, b in enumerate(data))

    def transform_cpu(self) -> float:
        return 4.0 * self.config.cpu.tool_record


class LineLexTool(CopyTool):
    """Lexical analysis on fixed-length lines.

    Each block is treated as fixed-length records of ``line_length``
    bytes; every line is normalized (lower-cased, padded) and the worker
    summary counts token occurrences — the "summary information" return
    path of section 5.1.
    """

    name = "lex"

    def __init__(self, node, server_port, config, line_length: int = 80,
                 **kwargs) -> None:
        super().__init__(node, server_port, config, **kwargs)
        if line_length < 1:
            raise ValueError("line length must be positive")
        self.line_length = line_length

    def transform(self, data: bytes, local_block: int, slot: int) -> bytes:
        out = bytearray()
        for offset in range(0, len(data), self.line_length):
            line = data[offset : offset + self.line_length]
            out += line.lower().ljust(len(line), b" ")
        return bytes(out)

    def transform_cpu(self) -> float:
        return 3.0 * self.config.cpu.tool_record

    def summarize(self, summary: Optional[dict], data: bytes,
                  global_block: int) -> dict:
        counts: Dict[bytes, int] = summary or {}
        for word in data.split():
            token = word.strip(b"\x00")
            if token:
                counts[token] = counts.get(token, 0) + 1
        return counts
