"""The merge-sort tool (paper section 5.2).

Two distinct phases:

1. **local sort** — each LFS node externally sorts its constituent of the
   source file into a width-1 run file on the same node ("Consider the
   resulting files to be 'interleaved' across only one processor");
2. **global merge** — a log(p)-depth tree of token-passing pair merges:

       x := p
       while x > 1
           Merge pairs of files in parallel
           x := x/2
           Consider the new files to be interleaved across p/x processors
           Discard the old files in parallel
       endwhile

Pass k runs p/2^k merges, each using 2^k processors to merge 2^k·n/p
records; the first pass gives p/2-way parallelism with 2-way merges, the
last gives one p-way merge.  Odd run counts are handled with byes, so any
width works (the paper's measurements use powers of two).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.machine import Client
from repro.sim import join_all
from repro.tools.base import SCRATCH_FILE_BASE, Tool
from repro.tools.sort.localsort import LocalSorter, LocalSortReport
from repro.tools.sort.merge import MergeStats, PairMerge


@dataclass
class PassStats:
    """One global merge pass: its parallel pair merges."""

    pass_number: int
    merges: List[MergeStats] = field(default_factory=list)
    elapsed: float = 0.0


@dataclass
class SortResult:
    """Phase breakdown matching Table 4's columns."""

    source: str
    dest: str
    records: int
    width: int
    local_sort_time: float
    merge_time: float
    total_time: float
    local_reports: List[LocalSortReport] = field(default_factory=list)
    passes: List[PassStats] = field(default_factory=list)

    @property
    def records_per_second(self) -> float:
        return self.records / self.total_time if self.total_time > 0 else 0.0


class SortTool(Tool):
    """Parallel external merge sort over an interleaved file."""

    name = "sort"

    def __init__(self, node, server_port, config, use_hints: bool = True,
                 **kwargs) -> None:
        super().__init__(node, server_port, config, **kwargs)
        self.use_hints = use_hints

    # ------------------------------------------------------------------

    def run(self, source: str, dest: str):
        """Sort ``source`` into a new interleaved file ``dest``."""
        sim = self.machine.sim
        started = sim.now
        yield from self.get_info()
        src = yield from self.open(source)
        width = src.width
        records = src.total_blocks

        # ----- Phase 1: local external sorts, in parallel on the nodes
        run_names: List[str] = []
        run_slots: List[List[int]] = []
        specs = []
        for constituent in src.constituents:
            slot = self.lfs_slot_of_node(constituent.node_index)
            run_name = dest if width == 1 else f"{dest}.run.{constituent.slot}"
            file_id = yield from self.create(
                run_name, node_slots=[slot], start=0
            )
            run_names.append(run_name)
            run_slots.append([slot])
            node = self.node_of(constituent.node_index)
            specs.append(
                (
                    node,
                    self._local_sort_worker(node, constituent, file_id),
                    f"esort{constituent.slot}",
                )
            )
        local_reports = yield from self.run_workers(specs)
        local_time = sim.now - started

        # ----- Phase 2: log(p)-depth global merge
        merge_started = sim.now
        passes: List[PassStats] = []
        runs: List[Tuple[str, List[int]]] = list(zip(run_names, run_slots))
        pass_number = 0
        while len(runs) > 1:
            pass_number += 1
            pass_started = sim.now
            drivers = []
            survivors: List[Tuple[str, List[int]]] = []
            for index in range(0, len(runs), 2):
                if index + 1 == len(runs):
                    survivors.append(runs[index])  # bye
                    continue
                (a_name, a_slots), (b_name, b_slots) = runs[index], runs[index + 1]
                out_slots = a_slots + b_slots
                out_name = (
                    dest
                    if len(runs) == 2
                    else f"{dest}.pass{pass_number}.{index // 2}"
                )
                driver = self.node.spawn(
                    self._merge_driver(pass_number, index // 2, a_name,
                                       b_name, out_name, out_slots),
                    name=f"merge{pass_number}.{index // 2}",
                )
                drivers.append(driver)
                survivors.append((out_name, out_slots))
            merge_stats = yield join_all(drivers)
            passes.append(
                PassStats(
                    pass_number=pass_number,
                    merges=list(merge_stats),
                    elapsed=sim.now - pass_started,
                )
            )
            runs = survivors
        merge_time = sim.now - merge_started

        return SortResult(
            source=source,
            dest=dest,
            records=records,
            width=width,
            local_sort_time=local_time,
            merge_time=merge_time,
            total_time=sim.now - started,
            local_reports=list(local_reports),
            passes=passes,
        )

    # ------------------------------------------------------------------

    def _local_sort_worker(self, node, constituent, dst_file_id: int):
        sorter = LocalSorter(
            node,
            constituent.lfs_port,
            self.config,
            scratch_base=SCRATCH_FILE_BASE + node.index * 10**6,
            use_hints=self.use_hints,
        )
        report = yield from sorter.sort(
            constituent.efs_file_number, dst_file_id, constituent.slot
        )
        return report

    def _merge_driver(self, pass_number: int, pair_index: int, a_name: str,
                      b_name: str, out_name: str, out_slots: List[int]):
        """One pair merge: create the output, run the token protocol,
        discard the inputs."""
        rpc = Client(self.node, f"merge{pass_number}.{pair_index}")
        yield from rpc.call(
            self._target(out_name), "create",
            name=out_name, node_slots=out_slots, start=0,
        )
        left = yield from rpc.call(self._target(a_name), "open", name=a_name)
        right = yield from rpc.call(self._target(b_name), "open", name=b_name)
        out = yield from rpc.call(self._target(out_name), "open", name=out_name)
        total = left.total_blocks + right.total_blocks
        merge = PairMerge(self.node, self.config)
        stats = yield from merge.run(
            left.constituents, right.constituents, out.constituents, total
        )
        yield from rpc.call(self._target(a_name), "delete", name=a_name)
        yield from rpc.call(self._target(b_name), "delete", name=b_name)
        return stats
