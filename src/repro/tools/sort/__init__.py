"""The parallel merge-sort tool (paper section 5.2)."""

from repro.tools.sort.analysis import SortCostModel
from repro.tools.sort.localsort import LocalSorter, LocalSortReport, expected_merge_passes
from repro.tools.sort.merge import MergeStats, PairMerge, Token
from repro.tools.sort.records import is_sorted, key_of, make_record, payload_of
from repro.tools.sort.tool import PassStats, SortResult, SortTool

__all__ = [
    "LocalSortReport",
    "LocalSorter",
    "MergeStats",
    "PairMerge",
    "PassStats",
    "SortCostModel",
    "SortResult",
    "SortTool",
    "Token",
    "expected_merge_passes",
    "is_sorted",
    "key_of",
    "make_record",
    "payload_of",
]
