"""Analytic cost models for the sort tool.

Section 5.2 gives the local phase as O((n/p)(1 + log c) + (n/p) log(n/cp))
and the merge phase as O(n log(p)/p) "for reasonable values of p"; section
6 (and the companion analysis [17]) argues the merge scales until the
token can no longer complete a circuit in the time a process needs to
write its previous record and read the next.  These closed forms are what
EXPERIMENTS.md compares against the simulated measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SortCostModel:
    """Per-operation costs feeding the closed-form estimates (seconds)."""

    read_time: float = 0.009       # hinted sequential EFS read
    write_time: float = 0.036      # EFS append
    compare_time: float = 40e-6    # one in-core comparison
    token_hop_time: float = 0.003  # token handling + message latency

    # ------------------------------------------------------------------

    def run_formation_time(self, records: int, buffer_records: int) -> float:
        """Read everything, sort bursts in core, write runs once."""
        if records == 0:
            return 0.0
        compares = records * max(1, math.ceil(math.log2(min(records, max(2, buffer_records)))))
        return records * (self.read_time + self.write_time) + compares * self.compare_time

    def local_merge_passes(self, records: int, buffer_records: int) -> int:
        if records <= buffer_records:
            return 0
        return math.ceil(math.log2(math.ceil(records / buffer_records)))

    def local_sort_time(self, total_records: int, width: int,
                        buffer_records: int) -> float:
        """Phase-one time (the slowest node: ceil division)."""
        records = math.ceil(total_records / width)
        passes = self.local_merge_passes(records, buffer_records)
        per_pass = records * (self.read_time + self.write_time + self.compare_time)
        return self.run_formation_time(records, buffer_records) + passes * per_pass

    # ------------------------------------------------------------------

    def merge_record_rate(self, merge_width: int) -> float:
        """Seconds per record for one t-wide pair merge.

        The token emits one record per hop; t writers overlap their
        appends.  The pass therefore runs at the larger of the token's
        hop time and the write time divided by the writer count.
        """
        return max(self.token_hop_time, self.write_time / merge_width)

    def merge_phase_time(self, total_records: int, width: int) -> float:
        """All log2(width) passes (pairs within a pass run in parallel)."""
        if width <= 1:
            return 0.0
        time = 0.0
        runs = width
        pass_width = 2
        while runs > 1:
            records_per_merge = total_records / (runs / 2) if runs >= 2 else total_records
            time += records_per_merge * self.merge_record_rate(min(pass_width, width))
            runs = math.ceil(runs / 2)
            pass_width *= 2
        return time

    def total_time(self, total_records: int, width: int,
                   buffer_records: int) -> float:
        return self.local_sort_time(total_records, width, buffer_records) + (
            self.merge_phase_time(total_records, width)
        )

    # ------------------------------------------------------------------

    def saturation_width(self) -> float:
        """The merge width beyond which the token (not the disks) is the
        bottleneck: write_time / hop_time, the [17]-style limit."""
        return self.write_time / self.token_hop_time
