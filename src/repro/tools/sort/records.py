"""Record format for the sort tool.

"For the sake of simplicity we assume that the records to be sorted are
the same size as a disk block" (section 5.2) — one record is one 960-byte
data area.  The sort key is the first 8 bytes, compared as an unsigned
big-endian integer (so byte-wise comparison of the raw prefix agrees with
numeric comparison of the key).
"""

from __future__ import annotations

import struct
from typing import List

from repro.config import DATA_BYTES_PER_BLOCK

KEY_BYTES = 8
_KEY_FMT = ">Q"


def make_record(key: int, payload: bytes = b"") -> bytes:
    """Build one record: 8-byte big-endian key + payload, NUL-padded."""
    if not 0 <= key < 2**64:
        raise ValueError(f"key {key} outside unsigned 64-bit range")
    body = struct.pack(_KEY_FMT, key) + payload
    if len(body) > DATA_BYTES_PER_BLOCK:
        raise ValueError(
            f"record of {len(body)} bytes exceeds {DATA_BYTES_PER_BLOCK}"
        )
    return body.ljust(DATA_BYTES_PER_BLOCK, b"\x00")


def key_of(record: bytes) -> int:
    """Extract the sort key of a record."""
    return struct.unpack_from(_KEY_FMT, record, 0)[0]


def payload_of(record: bytes) -> bytes:
    """The record body after the key, with NUL padding stripped."""
    return record[KEY_BYTES:].rstrip(b"\x00")


def is_sorted(records: List[bytes]) -> bool:
    """True if record keys are nondecreasing."""
    return all(
        key_of(records[i]) <= key_of(records[i + 1])
        for i in range(len(records) - 1)
    )
