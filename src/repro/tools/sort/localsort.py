"""The local external sort phase (paper section 5.2, phase one).

"In parallel perform local external sorts on each LFS."  Each LFS node
sorts its own constituent file with the classic external merge sort:

1. **run formation** — read ``c`` records at a time (c = 512 in the
   paper), sort them in core (CPU charged at c·log2(c) comparisons), and
   write each sorted run to a scratch EFS file;
2. **local merge passes** — repeatedly 2-way merge pairs of runs until a
   single sorted run remains, which is written into the destination
   constituent file.

The expected time is O((n/p)(1 + log c) + (n/p) log(n/(c·p))) — and the
term that matters for the tool's superlinear speedup is the *pass count*
``ceil(log2(ceil(s/c)))``: every doubling of p removes one local merge
pass (section 5.2's explanation of the anomaly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.config import SystemConfig
from repro.efs import EFSClient
from repro.sim import Timeout
from repro.tools.sort.records import key_of


@dataclass
class LocalSortReport:
    """Per-node accounting for the local phase."""

    slot: int
    records: int
    runs: int
    merge_passes: int
    elapsed: float


def expected_merge_passes(records: int, buffer_records: int) -> int:
    """Local merge passes needed for ``records`` with an in-core buffer."""
    if records <= buffer_records:
        return 0
    runs = math.ceil(records / buffer_records)
    return math.ceil(math.log2(runs))


class LocalSorter:
    """Sorts one constituent file on its own node, through its own LFS."""

    def __init__(
        self,
        node,
        lfs_port,
        config: SystemConfig,
        scratch_base: int,
        use_hints: bool = True,
    ) -> None:
        self.node = node
        self.config = config
        self.client = EFSClient(node, lfs_port, name="esort")
        self.scratch_base = scratch_base
        self.use_hints = use_hints
        self._next_scratch = 0

    # ------------------------------------------------------------------

    def sort(self, src_file: int, dst_file: int, slot: int):
        """Externally sort ``src_file`` into (empty) ``dst_file``.

        Generator; returns a :class:`LocalSortReport`.
        """
        sim = self.node.machine.sim
        started = sim.now
        info = yield from self.client.info(src_file)
        total = info.size_blocks
        buffer_records = self.config.sort_buffer_records
        if total == 0:
            return LocalSortReport(slot, 0, 0, 0, sim.now - started)

        runs = yield from self._form_runs(src_file, info, total, buffer_records, dst_file)
        run_count = len(runs)
        passes = 0
        while len(runs) > 1:
            passes += 1
            final_pass = len(runs) <= 2
            merged: List[int] = []
            for index in range(0, len(runs), 2):
                if index + 1 == len(runs):
                    merged.append(runs[index])  # odd run gets a bye
                    continue
                target = dst_file if (final_pass and not merged) else self._scratch()
                yield from self._create_scratch(target, dst_file)
                yield from self._merge_pair(runs[index], runs[index + 1], target)
                yield from self.client.delete(runs[index])
                yield from self.client.delete(runs[index + 1])
                merged.append(target)
            runs = merged
        if runs[0] != dst_file:
            # single run (total <= c): move it into the destination
            yield from self._move(runs[0], dst_file)
        return LocalSortReport(
            slot=slot,
            records=total,
            runs=run_count,
            merge_passes=passes,
            elapsed=sim.now - started,
        )

    # ------------------------------------------------------------------

    def _scratch(self) -> int:
        self._next_scratch += 1
        return self.scratch_base + self._next_scratch

    def _create_scratch(self, file_number: int, dst_file: int):
        if file_number != dst_file:
            yield from self.client.create(file_number)

    def _form_runs(self, src_file, info, total, buffer_records, dst_file):
        """Run formation: sorted bursts of up to ``buffer_records``."""
        runs: List[int] = []
        hint = info.head_addr if self.use_hints else None
        position = 0
        single = total <= buffer_records
        while position < total:
            burst: List[bytes] = []
            while position < total and len(burst) < buffer_records:
                result = yield from self.client.read(src_file, position, hint=hint)
                hint = result.next_addr if self.use_hints else None
                burst.append(result.data)
                position += 1
            compares = len(burst) * max(1, math.ceil(math.log2(max(2, len(burst)))))
            yield Timeout(compares * self.config.cpu.compare)
            burst.sort(key=key_of)
            target = dst_file if single else self._scratch()
            yield from self._create_scratch(target, dst_file)
            for record in burst:
                yield from self.client.append(target, record)
            runs.append(target)
        return runs

    def _merge_pair(self, left_file: int, right_file: int, target: int):
        """2-way merge of two sorted scratch runs into ``target``."""
        left = _RunCursor(self.client, left_file, self.use_hints)
        right = _RunCursor(self.client, right_file, self.use_hints)
        yield from left.start()
        yield from right.start()
        while left.record is not None or right.record is not None:
            yield Timeout(self.config.cpu.compare)
            take_left = right.record is None or (
                left.record is not None and key_of(left.record) <= key_of(right.record)
            )
            cursor = left if take_left else right
            yield from self.client.append(target, cursor.record)
            yield from cursor.advance()

    def _move(self, src: int, dst: int):
        """Copy a scratch run into the destination file and drop it."""
        info = yield from self.client.info(src)
        hint = info.head_addr if self.use_hints else None
        for block in range(info.size_blocks):
            result = yield from self.client.read(src, block, hint=hint)
            hint = result.next_addr if self.use_hints else None
            yield from self.client.append(dst, result.data)
        yield from self.client.delete(src)


class _RunCursor:
    """Sequential reader over one scratch run with hint threading."""

    __slots__ = ("client", "file_number", "use_hints", "size", "position",
                 "hint", "record")

    def __init__(self, client: EFSClient, file_number: int, use_hints: bool) -> None:
        self.client = client
        self.file_number = file_number
        self.use_hints = use_hints
        self.size = 0
        self.position = 0
        self.hint: Optional[int] = None
        self.record: Optional[bytes] = None

    def start(self):
        info = yield from self.client.info(self.file_number)
        self.size = info.size_blocks
        self.hint = info.head_addr if self.use_hints else None
        yield from self.advance()

    def advance(self):
        if self.position >= self.size:
            self.record = None
            return
        result = yield from self.client.read(
            self.file_number, self.position, hint=self.hint
        )
        self.hint = result.next_addr if self.use_hints else None
        self.record = result.data
        self.position += 1
