"""The token-passing parallel merge (paper section 5.2, Figure 4).

Merging two interleaved files A (width t_a) and B (width t_b) into one
(t = t_a + t_b)-way interleaved destination uses three sets of processes:
readers over A's constituents, readers over B's constituents, and t
writers, one per destination constituent.

A single token circulates among the reader processes.  It carries the
least unwritten key of the *other* input file, the port of the process
holding that record (the originator), and the sequence number of the next
destination record.  A reader that receives the token compares the key
inside to its least unwritten local key:

* local key <= token key — emit the local record to the writer for the
  current sequence number, pass the token (seq+1) to the next process of
  the *same* input file;
* local key > token key — build a fresh token with the local key and
  send it back to the originator;
* local file exhausted — build an EndFlag token and send it to the
  originator, whose file then drains through its own ring;
* EndFlag received at EOF — every record of both files has been written:
  the merge is DONE (the reader notifies the coordinator).

"Correctness can be proven by observing that the token is never passed
twice in a row without writing, and all records are written in
nondecreasing order."

Writers know exactly how many records they will receive (the destination
is round-robin, so constituent sizes are determined by the total), append
them to their local constituent through their local LFS, and terminate on
their own.  Readers that are idle at DONE time are dismissed with a
Shutdown message from the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import BLOCK_SIZE, SystemConfig
from repro.core.info import ConstituentInfo
from repro.efs import EFSClient
from repro.errors import SortProtocolError
from repro.machine import Port
from repro.sim import Timeout, join_all
from repro.tools.sort.records import key_of


@dataclass
class Token:
    """The circulating merge token (Figure 4's ``token`` type)."""

    start_flag: bool
    end_flag: bool
    key: int
    originator: Optional[Port]
    seq: int


@dataclass
class RecordMessage:
    """One record on its way to a destination writer."""

    seq: int
    data: bytes


@dataclass
class Shutdown:
    """Coordinator -> reader: the merge is over, exit your receive loop."""


@dataclass
class Done:
    """Reader -> coordinator: an EndFlag token met EOF; all records are out."""

    reader_slot: int
    file_label: str


@dataclass
class MergeStats:
    """Outcome of one pass-level merge."""

    records: int
    elapsed: float
    token_hops: int


class MergeReader:
    """One reader process over one constituent of one input file."""

    def __init__(
        self,
        node,
        constituent: ConstituentInfo,
        config: SystemConfig,
        file_label: str,
    ) -> None:
        self.node = node
        self.constituent = constituent
        self.config = config
        self.file_label = file_label
        self.port = node.port(f"merge.{file_label}.r{constituent.slot}")
        # wired by the coordinator before the processes start:
        self.ring_next: Optional[Port] = None
        self.other_first: Optional[Port] = None
        self.writer_ports: List[Port] = []
        self.coordinator: Optional[Port] = None
        self.token_hops = 0

    # ------------------------------------------------------------------

    def body(self):
        """The reader process (the Figure 4 loop)."""
        client = EFSClient(self.node, self.constituent.lfs_port, name="merge-read")
        size = self.constituent.size_blocks
        hint = self.constituent.head_addr
        position = 0
        record: Optional[bytes] = None
        if position < size:
            result = yield from client.read(
                self.constituent.efs_file_number, position, hint=hint
            )
            record, hint, position = result.data, result.next_addr, position + 1

        def read_next():
            nonlocal record, hint, position
            if position < size:
                result = yield from client.read(
                    self.constituent.efs_file_number, position, hint=hint
                )
                record, hint, position = result.data, result.next_addr, position + 1
            else:
                record = None

        while True:
            message = yield self.port.recv()
            if isinstance(message, Shutdown):
                return self.token_hops
            if not isinstance(message, Token):
                raise SortProtocolError(
                    f"reader {self.file_label}/{self.constituent.slot}: "
                    f"unexpected message {message!r}"
                )
            token = message
            self.token_hops += 1
            yield Timeout(self.config.cpu.tool_record)
            if token.start_flag:
                if record is None:  # empty input file: hand off immediately
                    self._send(self.other_first,
                               Token(False, True, 0, self.port, token.seq))
                else:
                    self._send(self.other_first,
                               Token(False, False, key_of(record), self.port,
                                     token.seq))
            elif token.end_flag:
                if record is None:
                    self._send(self.coordinator,
                               Done(self.constituent.slot, self.file_label))
                    return self.token_hops  # DONE
                seq = token.seq
                self._send(self.ring_next,
                           Token(False, True, token.key, token.originator, seq + 1))
                self._emit(seq, record)
                yield from read_next()
            else:
                if record is None:
                    self._send(token.originator,
                               Token(False, True, 0, self.port, token.seq))
                elif key_of(record) <= token.key:
                    seq = token.seq
                    self._send(self.ring_next,
                               Token(False, False, token.key, token.originator,
                                     seq + 1))
                    self._emit(seq, record)
                    yield from read_next()
                else:
                    self._send(token.originator,
                               Token(False, False, key_of(record), self.port,
                                     token.seq))

    # ------------------------------------------------------------------

    def _emit(self, seq: int, record: bytes) -> None:
        writer = self.writer_ports[seq % len(self.writer_ports)]
        self.node.send(writer, RecordMessage(seq, record), size=BLOCK_SIZE)

    def _send(self, port: Port, message) -> None:
        self.node.send(port, message)


class MergeWriter:
    """One writer process appending to one destination constituent."""

    def __init__(self, node, constituent: ConstituentInfo, expected: int,
                 width: int, config: SystemConfig) -> None:
        self.node = node
        self.constituent = constituent
        self.expected = expected
        self.width = width
        self.config = config
        self.port = node.port(f"merge.w{constituent.slot}")

    def body(self):
        """Receive records and append them in sequence order.

        Records for this writer carry seq = slot, slot+t, slot+2t, ...;
        late/early arrivals are buffered so appends happen in order.
        """
        client = EFSClient(self.node, self.constituent.lfs_port, name="merge-write")
        pending = {}
        next_seq = self.constituent.column  # first global block on this slot
        written = 0
        while written < self.expected:
            message = yield self.port.recv()
            if not isinstance(message, RecordMessage):
                raise SortProtocolError(
                    f"writer {self.constituent.slot}: unexpected {message!r}"
                )
            pending[message.seq] = message.data
            while next_seq in pending:
                data = pending.pop(next_seq)
                yield from client.append(self.constituent.efs_file_number, data)
                next_seq += self.width
                written += 1
        return written


class PairMerge:
    """Coordinates one merge of two interleaved files into a third.

    The caller supplies already-opened constituent lists; the coordinator
    wires the rings, spawns readers and writers on their LFS nodes, fires
    the start token at the first reader of file A, and waits for all
    writers plus the DONE notification.
    """

    def __init__(self, tool_node, config: SystemConfig) -> None:
        self.node = tool_node
        self.machine = tool_node.machine
        self.config = config
        self.port = tool_node.port("merge.coordinator")

    def run(self, left: List[ConstituentInfo], right: List[ConstituentInfo],
            dest: List[ConstituentInfo], total_records: int):
        """Generator: performs the merge; returns :class:`MergeStats`."""
        sim = self.machine.sim
        started = sim.now
        width = len(dest)
        if any(c.slot != c.column for c in dest):
            raise SortProtocolError(
                "merge destinations must be created with start slot 0 "
                "(writer routing assumes slot == column)"
            )
        readers_left = [
            MergeReader(self.machine.node(c.node_index), c, self.config, "A")
            for c in left
        ]
        readers_right = [
            MergeReader(self.machine.node(c.node_index), c, self.config, "B")
            for c in right
        ]
        writers = []
        for constituent in dest:
            expected = _expected_for_slot(constituent, width, total_records)
            writers.append(
                MergeWriter(
                    self.machine.node(constituent.node_index),
                    constituent,
                    expected,
                    width,
                    self.config,
                )
            )
        writer_ports = [w.port for w in writers]
        for group, other in ((readers_left, readers_right),
                             (readers_right, readers_left)):
            for index, reader in enumerate(group):
                reader.ring_next = group[(index + 1) % len(group)].port
                reader.other_first = other[0].port if other else reader.port
                reader.writer_ports = writer_ports
                reader.coordinator = self.port

        specs = [
            (w.node, w.body(), f"mwriter{w.constituent.slot}") for w in writers
        ] + [
            (r.node, r.body(), f"mreader.{r.file_label}{r.constituent.slot}")
            for r in readers_left + readers_right
        ]
        from repro.tools.base import tree_spawn

        worker_tree = self.machine.sim.spawn(
            _collect(tree_spawn(self.machine, specs)), name="merge.workers"
        )
        # Fire the start token at the first process of file A.  If A has
        # no readers (zero-width input is impossible; empty-but-present
        # constituents are fine) the start goes to B.
        first = readers_left[0] if readers_left else readers_right[0]
        self.node.send(first.port, Token(True, False, 0, None, 0))

        done = yield self.port.recv()
        if not isinstance(done, Done):
            raise SortProtocolError(f"coordinator: unexpected {done!r}")
        # Dismiss every reader still waiting for a token.
        for reader in readers_left + readers_right:
            self.node.send(reader.port, Shutdown())
        results = yield worker_tree.join()
        writer_results = results[: len(writers)]  # specs list writers first
        reader_results = results[len(writers):]
        written = sum(writer_results)
        if written != total_records:
            raise SortProtocolError(
                f"merge wrote {written} records, expected {total_records}"
            )
        return MergeStats(
            records=total_records,
            elapsed=sim.now - started,
            token_hops=sum(reader_results),
        )


def _collect(generator):
    """Wrap a generator so tree_spawn can run as its own process."""
    results = yield from generator
    return results


def _expected_for_slot(constituent: ConstituentInfo, width: int,
                       total_records: int) -> int:
    """Records landing on one destination slot (round-robin arithmetic)."""
    column = constituent.column
    full, remainder = divmod(total_records, width)
    return full + (1 if column < remainder else 0)
