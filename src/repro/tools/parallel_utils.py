"""Parallel utilities over the batched metadata surface (S23).

"Scalable Unix Commands for Parallel Processors" observes that the
familiar shell verbs — ``cp -r``, ``rm -r``, ``find`` — fall over on
parallel file systems because they issue one metadata RPC per file.
These tools are the Bridge rendition: each walks a deep name tree (see
:mod:`repro.workloads.trees`) through the S23 batched ops — one
windowed RPC per partition sub-batch instead of one per name — and
``pcp`` then streams the data the classic tool-framework way, one
worker per LFS node carrying *all* of that node's constituent copies.

Unlike :class:`~repro.tools.copy.CopyTool` (one file, one worker per
constituent), ``pcp -r`` copies a whole subtree: metadata for every
file is resolved in a handful of batched RPCs up front, and each LFS
node gets a single worker with a job list, so worker count stays O(p)
no matter how many files the tree holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.batch import FileStat
from repro.core.client import BridgeClient
from repro.core.partitioned import PartitionedClient
from repro.efs import EFSClient
from repro.tools.base import Tool
from repro.tools.copy import WorkerReport


@dataclass
class FindResult:
    """Outcome of one ``pfind`` sweep."""

    prefix: str
    names: List[str]
    stats: List[FileStat] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def total_blocks(self) -> int:
        return sum(stat.total_blocks for stat in self.stats)


@dataclass
class RemoveResult:
    """Outcome of one ``prm -r`` sweep."""

    prefix: str
    removed: List[str]
    freed_blocks: int
    errors: List[Tuple[str, str]] = field(default_factory=list)
    elapsed: float = 0.0


@dataclass
class PCopyResult:
    """Outcome of one ``pcp -r`` run."""

    source_prefix: str
    dest_prefix: str
    files: int
    total_blocks: int
    elapsed: float
    workers: List[WorkerReport] = field(default_factory=list)


class ParallelUtility(Tool):
    """Base for the scalable-command family: a tool whose server phase
    speaks the batched metadata surface."""

    name = "putil"

    def meta_client(self):
        """A full batched-capable client over whatever the tool was
        pointed at — a :class:`PartitionedClient` on a fabric router, a
        plain :class:`BridgeClient` on a single server port."""
        if hasattr(self.server_port, "port_for"):
            return PartitionedClient(self.node, self.server_port,
                                     name=f"{self.name}.meta")
        return BridgeClient(self.node, self.server_port,
                            name=f"{self.name}.meta")


class PFindTool(ParallelUtility):
    """``pfind``: list a subtree and (optionally) stat every file in
    batched sub-RPCs — the read-only tree walk."""

    name = "pfind"

    def run(self, prefix: str = "", with_stats: bool = True):
        sim = self.machine.sim
        started = sim.now
        client = self.meta_client()
        names = yield from client.find(prefix)
        stats: List[FileStat] = []
        missing: List[str] = []
        if with_stats and names:
            outcomes = yield from client.mstat(names)
            for outcome in outcomes:
                if outcome.ok:
                    stats.append(outcome.value)
                else:
                    missing.append(outcome.name)
        return FindResult(
            prefix=prefix,
            names=names,
            stats=stats,
            missing=missing,
            elapsed=sim.now - started,
        )


class PRemoveTool(ParallelUtility):
    """``prm -r``: delete a whole subtree in batched sub-RPCs.  A name
    that vanishes mid-sweep is reported per name, never a failed run."""

    name = "prm"

    def run(self, prefix: str):
        sim = self.machine.sim
        started = sim.now
        client = self.meta_client()
        names = yield from client.find(prefix)
        removed: List[str] = []
        errors: List[Tuple[str, str]] = []
        freed = 0
        if names:
            outcomes = yield from client.mdelete(names)
            for outcome in outcomes:
                if outcome.ok:
                    removed.append(outcome.name)
                    freed += outcome.value
                else:
                    errors.append((outcome.name, str(outcome.error)))
        return RemoveResult(
            prefix=prefix,
            removed=removed,
            freed_blocks=freed,
            errors=errors,
            elapsed=sim.now - started,
        )


class PCopyTool(ParallelUtility):
    """``pcp -r``: copy a whole subtree.

    Metadata phase: one ``find``, one batched ``mopen`` of the sources,
    one batched ``mcreate`` per distinct (placement, start) shape, one
    batched ``mopen`` of the destinations.  Data phase: one worker per
    LFS node, streaming every constituent copy that lands on its node —
    the section-4.2 "export the code to the data" step, amortized over
    the whole tree.
    """

    name = "pcp"

    def run(self, source_prefix: str, dest_prefix: str):
        sim = self.machine.sim
        started = sim.now
        yield from self.get_info()
        client = self.meta_client()
        names = yield from client.find(source_prefix)
        if not names:
            return PCopyResult(
                source_prefix=source_prefix, dest_prefix=dest_prefix,
                files=0, total_blocks=0, elapsed=sim.now - started,
            )
        dest_names = [dest_prefix + name[len(source_prefix):]
                      for name in names]

        outcomes = yield from client.mopen(names)
        sources = [outcome.unwrap() for outcome in outcomes]

        # One batched create per distinct placement shape, so every
        # destination mirrors its source's interleaving exactly.
        groups: Dict[Tuple[Tuple[int, ...], int], List[int]] = {}
        for index, src in enumerate(sources):
            slots = tuple(self.lfs_slot_of_node(c.node_index)
                          for c in src.constituents)
            groups.setdefault((slots, src.start), []).append(index)
        for (slots, start), indexes in sorted(groups.items()):
            created = yield from client.mcreate(
                [dest_names[i] for i in indexes],
                node_slots=list(slots), start=start,
            )
            for outcome in created:
                outcome.unwrap()

        outcomes = yield from client.mopen(dest_names)
        dests = [outcome.unwrap() for outcome in outcomes]

        # Data phase: bucket every constituent pair by LFS node; one
        # worker per node carries its whole job list.
        jobs: Dict[int, List[Tuple[object, object]]] = {}
        for src, dst in zip(sources, dests):
            for src_c, dst_c in zip(src.constituents, dst.constituents):
                jobs.setdefault(src_c.node_index, []).append((src_c, dst_c))
        specs = []
        for node_index in sorted(jobs):
            node = self.node_of(node_index)
            specs.append((node, self._worker(node, jobs[node_index]),
                          f"pcp{node_index}"))
        reports = yield from self.run_workers(specs)
        return PCopyResult(
            source_prefix=source_prefix,
            dest_prefix=dest_prefix,
            files=len(names),
            total_blocks=sum(report.blocks for report in reports),
            elapsed=sim.now - started,
            workers=reports,
        )

    def _worker(self, node, pairs):
        """Per-node worker: stream every (src, dst) constituent pair
        that lives on this node, block by block through the local LFS."""
        sim = self.machine.sim
        started = sim.now
        client = EFSClient(node, pairs[0][0].lfs_port, name="pcp")
        blocks = 0
        for src_c, dst_c in pairs:
            hint = src_c.head_addr
            for local_block in range(src_c.size_blocks):
                result = yield from client.read(
                    src_c.efs_file_number, local_block, hint=hint
                )
                hint = result.next_addr
                yield from client.write(
                    dst_c.efs_file_number, local_block, result.data
                )
                blocks += 1
        return WorkerReport(
            slot=pairs[0][0].slot,
            node_index=pairs[0][0].node_index,
            blocks=blocks,
            elapsed=sim.now - started,
        )
