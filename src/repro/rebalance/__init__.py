"""S24: load-aware rebalancing — a heat-driven control plane.

The S22 fabric can move the namespace (rings, planner, online
migration); this package decides *when* and *what*.  Three pieces:

* :mod:`repro.rebalance.heat` — :class:`HeatMap`, sliding-window busy
  time and request counts per partition and per name, fed from the base
  server loop with zero scheduled events (installing it cannot change
  the event sequence).
* :class:`~repro.elastic.ring.ConsistentHashRing` weights + ``shed_arc``
  (in :mod:`repro.elastic`) — the placement surface the policy steers.
* :mod:`repro.rebalance.policy` — :class:`Rebalancer`, a periodic sim
  process that reads the heat map (and optional S21 SLO telemetry),
  plans bounded same-size arc-shed "resizes" behind an imbalance
  threshold / cooldown / move budget, and drives
  :meth:`~repro.elastic.migrate.FabricResizer.apply` live.

Entry point for experiments: ``BridgeSystem(..., elastic=...,
rebalance=True)`` then spawn ``system.rebalancer.run(duration)`` next to
traffic (``run_rebalance_experiment`` does all of this).  With
``rebalance=`` off nothing here runs — the committed acceptance trace
stays byte-identical.
"""

from repro.rebalance.heat import CONTROL_METHODS, HeatMap
from repro.rebalance.policy import RebalanceConfig, Rebalancer, SweepRecord

__all__ = [
    "CONTROL_METHODS",
    "HeatMap",
    "RebalanceConfig",
    "Rebalancer",
    "SweepRecord",
]
