"""S24 heat accounting: who is hot, right now.

The S19 registry and the per-server counters already *count* load, but
cumulatively — a partition that was hammered two minutes ago and is idle
now looks identical to one melting this second.  The control plane needs
recency, so :class:`HeatMap` keeps **bucketed sliding windows**: time is
cut into ``window / buckets`` wide epochs, every served request adds its
busy time and a count to the current epoch's bucket, and a read sums the
buckets that still fall inside the window.  Expiry is lazy (a bucket is
overwritten the first time its slot is touched in a later epoch), so the
map schedules no events of its own — installing it cannot perturb the
simulated event sequence, the same contract S19 instrumentation keeps.

Attribution happens at the base :class:`~repro.machine.rpc.Server` loop
(``server.heat``/``server.heat_partition``): per *partition* always, and
per *name* when the request names one (``name`` argument, or ``names``
for the S23 batched ops, whose busy time is split evenly across the
batch).  Migration control traffic is excluded so the rebalancer never
chases the load of its own sweeps.

Everything is exposed two ways: programmatically (``partition_rates`` /
``imbalance`` / ``name_heat`` — what the :class:`~repro.rebalance.policy.
Rebalancer` consumes) and through the ``rebalance.*`` gauge family +
``analysis.report`` for humans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Methods whose busy time is control-plane, not workload: attributing a
#: migration pull to the migrated name would make the rebalancer chase
#: its own sweeps.
CONTROL_METHODS = frozenset({"migrate_in", "migrate_out"})


class _WindowedCell:
    """One key's sliding window: ``buckets`` epoch-stamped accumulators."""

    __slots__ = ("epochs", "busy", "count")

    def __init__(self, buckets: int) -> None:
        self.epochs = [-1] * buckets
        self.busy = [0.0] * buckets
        self.count = [0.0] * buckets

    def add(self, epoch: int, busy: float, count: float) -> None:
        slot = epoch % len(self.epochs)
        if self.epochs[slot] != epoch:
            self.epochs[slot] = epoch
            self.busy[slot] = 0.0
            self.count[slot] = 0.0
        self.busy[slot] += busy
        self.count[slot] += count

    def totals(self, epoch: int) -> Tuple[float, float]:
        """Sum of the buckets still inside the window ending at ``epoch``."""
        floor = epoch - len(self.epochs) + 1
        busy = count = 0.0
        for slot, stamp in enumerate(self.epochs):
            if stamp >= floor:
                busy += self.busy[slot]
                count += self.count[slot]
        return busy, count

    def live(self, epoch: int) -> bool:
        floor = epoch - len(self.epochs) + 1
        return any(stamp >= floor for stamp in self.epochs)


class HeatMap:
    """Sliding-window load attribution per partition and per name.

    ``window`` is the lookback horizon in simulated seconds; ``buckets``
    its resolution (more buckets = smoother decay of old load, same
    total memory).  ``max_names`` caps the per-name table: when
    exceeded, names whose every bucket has expired are pruned — hot
    names are never evicted.
    """

    def __init__(self, partitions: int, window: float = 2.0,
                 buckets: int = 4, max_names: int = 512) -> None:
        if partitions < 1:
            raise ValueError("need at least one partition")
        if window <= 0:
            raise ValueError("window must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.partitions = partitions
        self.window = window
        self.buckets = buckets
        self.max_names = max_names
        self._width = window / buckets
        self._parts = [_WindowedCell(buckets) for _ in range(partitions)]
        self._names: Dict[str, _WindowedCell] = {}
        self.recorded = 0  # requests attributed (lifetime)

    # -- write side (hot path: called once per served request) ---------

    def _epoch(self, now: float) -> int:
        return int(now / self._width)

    def record(self, partition: int, request, busy: float,
               now: float) -> None:
        """Attribute one served request (the ``Server._loop`` seam)."""
        if request.method in CONTROL_METHODS:
            return
        args = request.args
        name = args.get("name")
        if name is not None:
            self.observe(partition, name, busy, now)
            return
        names = args.get("names")
        if names:
            share = busy / len(names)
            for batched in names:
                self.observe(partition, batched, share, now,
                             count=1.0 / len(names))
            return
        self.observe(partition, None, busy, now)

    def observe(self, partition: int, name: Optional[str], busy: float,
                now: float, count: float = 1.0) -> None:
        """Accumulate ``busy`` seconds (and ``count`` requests) against a
        partition, and against ``name`` when given."""
        epoch = self._epoch(now)
        self._parts[partition].add(epoch, busy, count)
        self.recorded += 1
        if name is None:
            return
        cell = self._names.get(name)
        if cell is None:
            if len(self._names) >= self.max_names:
                self._prune(epoch)
            cell = self._names[name] = _WindowedCell(self.buckets)
        cell.add(epoch, busy, count)

    def _prune(self, epoch: int) -> None:
        stale = [name for name, cell in self._names.items()
                 if not cell.live(epoch)]
        for name in stale:
            del self._names[name]

    # -- read side ------------------------------------------------------

    def partition_rates(self, now: float) -> List[float]:
        """Busy-seconds per second over the window, per partition."""
        epoch = self._epoch(now)
        return [cell.totals(epoch)[0] / self.window for cell in self._parts]

    def partition_request_rates(self, now: float) -> List[float]:
        """Requests per second over the window, per partition."""
        epoch = self._epoch(now)
        return [cell.totals(epoch)[1] / self.window for cell in self._parts]

    def imbalance(self, now: float, active: Optional[int] = None) -> float:
        """Peak-to-mean busy-rate ratio over the first ``active``
        partitions (1.0 = perfectly even, 0.0 = idle fabric)."""
        rates = self.partition_rates(now)
        if active is not None:
            rates = rates[:active]
        mean = sum(rates) / len(rates)
        return max(rates) / mean if mean > 0 else 0.0

    def name_heat(self, now: float,
                  top: Optional[int] = None) -> List[Tuple[str, float, float]]:
        """The hottest names: ``(name, busy_rate, request_rate)`` sorted
        hottest-first (ties broken by name, so the order — and therefore
        the rebalancer's choices — is deterministic)."""
        epoch = self._epoch(now)
        heat = []
        for name, cell in self._names.items():
            busy, count = cell.totals(epoch)
            if busy > 0 or count > 0:
                heat.append((name, busy / self.window, count / self.window))
        heat.sort(key=lambda item: (-item[1], -item[2], item[0]))
        return heat if top is None else heat[:top]

    # -- export ---------------------------------------------------------

    def publish(self, registry, now: float, active: Optional[int] = None) -> None:
        """Refresh the ``rebalance.*`` gauge family in an S19 registry."""
        rates = self.partition_rates(now)
        for partition, rate in enumerate(rates):
            registry.gauge(f"rebalance.heat.partition{partition}").set(rate)
        registry.gauge("rebalance.heat.imbalance").set(
            self.imbalance(now, active=active)
        )
        registry.gauge("rebalance.heat.names_tracked").set(
            float(len(self._names))
        )

    def snapshot(self, now: float, top: int = 8) -> Dict[str, object]:
        """Plain-data dump for reports and BENCH JSON."""
        return {
            "window": self.window,
            "partition_busy_rates": self.partition_rates(now),
            "partition_request_rates": self.partition_request_rates(now),
            "imbalance": self.imbalance(now),
            "hot_names": [
                {"name": name, "busy_rate": busy, "request_rate": count}
                for name, busy, count in self.name_heat(now, top=top)
            ],
            "recorded": self.recorded,
        }
