"""S24 policy engine: the closed loop that moves heat off hot partitions.

The S22 resizer is pure mechanism — it migrates the namespace onto
whatever ring it is handed, but something has to *choose* the ring.
:class:`Rebalancer` is that something: a sim process that wakes every
``interval`` simulated seconds, reads the :class:`~repro.rebalance.heat.
HeatMap` (and, when given one, the S21 SLO recorder), and when the
fabric is measurably skewed picks the hottest names on the hottest
partition and sheds exactly the arcs they live on
(:meth:`~repro.elastic.ring.ConsistentHashRing.shed_arc`) — a same-size,
weight-only "resize" executed by the standard
:meth:`~repro.elastic.migrate.FabricResizer.apply` sweep, with the full
plan+flip / forwarding-window safety argument intact.

Stability guards, all configurable (:class:`RebalanceConfig`):

* **imbalance threshold** — act only when peak/mean busy rate exceeds
  it (plus a ``min_busy_rate`` floor so an idle fabric is never
  "rebalanced" on noise);
* **hysteresis/cooldown** — after acting, hold off for ``cooldown``
  simulated seconds so the previous move's effect shows up in the
  window before the next decision;
* **move budget** — a candidate ring is planned against the live
  namespace *before* being applied, and arcs whose plans exceed
  ``move_budget`` entry moves are rejected (shedding should nudge, not
  reshuffle);
* **arc floor** — a partition is never shed below ``min_arcs`` points,
  so the ring can always route to it and repeated sweeps cannot strip
  a partition bare.

Every sweep — acting or not — appends a :class:`SweepRecord` (rates,
imbalance, decision, per-class p99 so far) and refreshes the
``rebalance.*`` gauges; the E25 bench plots exactly this trajectory.

Determinism: decisions derive only from the heat map, the ring, and the
sorted namespace; ties in name heat break lexicographically.  Same seed,
same traffic -> same sweeps, same moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.elastic.plan import plan_resize
from repro.sim import Timeout


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs for one :class:`Rebalancer` (all simulated seconds)."""

    interval: float = 2.0        # sweep period
    threshold: float = 1.25      # act when peak/mean busy rate exceeds
    cooldown: float = 4.0        # hysteresis between acting sweeps
    move_budget: int = 12        # max planned entry moves per sweep
    shed_limit: int = 2          # max arcs shed per sweep
    min_arcs: int = 8            # never shed a partition below this
    min_busy_rate: float = 0.005  # busy-s/s floor: below this, idle
    top_names: int = 8           # hottest names considered per sweep
    watch_only: bool = False     # observe + record, never apply


@dataclass
class SweepRecord:
    """One control-loop decision, acted on or not."""

    at: float
    busy_rates: List[float]
    imbalance: float
    action: str  # idle | balanced | cooldown | no-candidate | watch | rebalance
    shed: List[Tuple[int, int]] = field(default_factory=list)
    planned: int = 0
    moved: int = 0
    p99: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "at": self.at,
            "busy_rates": list(self.busy_rates),
            "imbalance": self.imbalance,
            "action": self.action,
            "shed": [list(arc) for arc in self.shed],
            "planned": self.planned,
            "moved": self.moved,
            "p99": dict(self.p99),
        }


class Rebalancer:
    """The S24 control loop over one system's elastic fabric.

    ``heat`` is the installed :class:`HeatMap`; ``slo`` an optional
    S21 :class:`~repro.traffic.slo.SLORecorder` whose per-class p99s are
    snapshotted into every sweep record.  The loop is duration-bounded
    (like the S21 generator) so a drained simulation terminates.
    """

    def __init__(self, system, heat, config: Optional[RebalanceConfig] = None,
                 slo=None, moves_per_second: Optional[float] = None,
                 forward_window: Optional[float] = 0.25) -> None:
        from repro.elastic.migrate import FabricResizer

        ring = system.fabric.ring
        if getattr(ring, "kind", None) != "consistent":
            raise ValueError(
                "rebalancing needs a consistent-hash ring "
                "(build the system with elastic=...)"
            )
        self.system = system
        self.heat = heat
        self.config = config or RebalanceConfig()
        self.slo = slo
        self.resizer = FabricResizer(system, moves_per_second=moves_per_second,
                                     forward_window=forward_window)
        self.records: List[SweepRecord] = []
        self._last_action: Optional[float] = None

    # ------------------------------------------------------------------

    def attach(self, slo) -> None:
        """Late-bind the SLO recorder (experiments build it after the
        system)."""
        self.slo = slo

    @property
    def moves_applied(self) -> int:
        return sum(record.moved for record in self.records)

    @property
    def actions(self) -> int:
        return sum(1 for r in self.records if r.action == "rebalance")

    # ------------------------------------------------------------------

    def run(self, duration: float):
        """Generator: sweep every ``interval`` until ``duration`` simulated
        seconds have passed.  Spawn next to traffic:
        ``system.client_node.spawn(rebalancer.run(20.0))``."""
        sim = self.system.sim
        deadline = sim.now + duration
        interval = self.config.interval
        while sim.now + interval <= deadline + 1e-9:
            yield Timeout(interval)
            yield from self.sweep()
        return self.records

    def sweep(self):
        """Generator: one control-loop iteration."""
        system = self.system
        sim = system.sim
        fabric = system.fabric
        ring = fabric.ring
        active = ring.partitions
        now = sim.now
        rates = self.heat.partition_rates(now)[:active]
        mean = sum(rates) / active
        imbalance = (max(rates) / mean) if mean > 0 else 0.0
        record = SweepRecord(at=now, busy_rates=rates, imbalance=imbalance,
                             action="balanced", p99=self._p99_snapshot())
        cfg = self.config
        if mean < cfg.min_busy_rate:
            record.action = "idle"
        elif imbalance < cfg.threshold:
            record.action = "balanced"
        elif (self._last_action is not None
              and now - self._last_action < cfg.cooldown):
            record.action = "cooldown"
        else:
            candidate, shed, moves = self._plan_shed(ring, rates)
            if candidate is None:
                record.action = "no-candidate"
            elif cfg.watch_only:
                record.action = "watch"
                record.shed = shed
                record.planned = len(moves)
            else:
                record.action = "rebalance"
                record.shed = shed
                record.planned = len(moves)
                self._last_action = now
                report = yield from self.resizer.apply(candidate)
                record.moved = report.moved
        self.records.append(record)
        self._publish(record)
        return record

    # ------------------------------------------------------------------

    def _namespace(self) -> set:
        names = set()
        for server in self.system.fabric.servers:
            names.update(server.directory.names())
        return names

    def _plan_shed(self, ring, rates):
        """Pick the arcs to shed: hottest names on the hottest partition,
        greedily, while the planned move set stays inside the budget, the
        hot partition keeps its arc floor, and — the part that makes this
        a *policy* rather than random churn — each shed must lower the
        predicted peak busy rate.  The prediction reassigns every moving
        name's measured heat from its source to its circle successor, so
        an arc whose names would just land on the second-hottest
        partition (or whose single dominant name *is* the peak and moves
        it wholesale) is rejected, not applied and regretted."""
        cfg = self.config
        now = self.system.sim.now
        hot = rates.index(max(rates))
        name_busy = {
            name: busy for name, busy, _count in self.heat.name_heat(now)
        }
        hot_names = [
            name for name, _busy, _count in self.heat.name_heat(now)
            if ring.partition_of(name) == hot
        ][:cfg.top_names]
        if not hot_names:
            return None, [], []
        names = self._namespace()
        candidate = ring
        shed: List[Tuple[int, int]] = []
        moves: List = []
        peak = max(rates)
        arcs_left = len(candidate.arc_points()[hot])
        for name in hot_names:
            if len(shed) >= cfg.shed_limit or arcs_left <= cfg.min_arcs:
                break
            if candidate.partition_of(name) != hot:
                continue  # an earlier shed already moved this name
            arc = candidate.vnode_of(name)
            if arc[0] != hot or arc in candidate.dropped:
                continue
            trial = candidate.shed_arc(*arc)
            trial_moves = plan_resize(ring, trial, names).moves
            if len(trial_moves) > cfg.move_budget:
                continue  # this arc carries too much namespace; next name
            predicted = list(rates)
            for move in trial_moves:
                heat_rate = name_busy.get(move.name, 0.0)
                predicted[move.src] -= heat_rate
                predicted[move.dst] += heat_rate
            if max(predicted) >= peak - 1e-12:
                continue  # would relocate or raise the peak, not shed it
            candidate, moves, peak = trial, trial_moves, max(predicted)
            shed.append(arc)
            arcs_left -= 1
        if not shed or not moves:
            return None, [], []
        return candidate, shed, moves

    def _p99_snapshot(self) -> Dict[str, float]:
        if self.slo is None:
            return {}
        return {
            cls: stats.latency.p99
            for cls, stats in sorted(self.slo.classes.items())
            if stats.completed > 0
        }

    def _publish(self, record: SweepRecord) -> None:
        obs = self.system.sim.obs
        if obs is None:
            return
        registry = obs.metrics
        self.heat.publish(registry, record.at,
                          active=self.system.fabric.ring.partitions)
        registry.gauge("rebalance.sweeps").set(float(len(self.records)))
        registry.gauge("rebalance.actions").set(float(self.actions))
        registry.gauge("rebalance.moves").set(float(self.moves_applied))
