"""Block mirroring: the replication remedy of section 6.

Every block is written twice: to its home file and to a shadow file whose
round-robin start is shifted by one, so block n's two copies always live
on *different* nodes ((n+k) mod p vs (n+k+1) mod p).  Reads try the home
copy first and transparently fall back to the shadow when the home disk
has failed.  The price is exactly the paper's: double the storage and
double the write traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core import BridgeClient
from repro.errors import DeviceFailedError


def shadow_name(name: str) -> str:
    return f"{name}.mirror"


@dataclass
class MirroredReadStats:
    """How many reads needed the shadow copy."""

    blocks: int = 0
    fallbacks: int = 0


class MirroredFile:
    """Write-both / read-with-fallback access to a mirrored pair.

    Requires an interleave width of at least 2 (with one node, there is
    nowhere independent to put the shadow).
    """

    def __init__(self, system, name: str) -> None:
        if system.width < 2:
            raise ValueError("mirroring needs at least two LFS nodes")
        self.system = system
        self.name = name
        self.client: BridgeClient = system.naive_client()
        self._written = 0

    # ------------------------------------------------------------------

    def create(self):
        """Create the home file (start 0) and its shadow (start 1)."""
        yield from self.client.create(self.name, start=0)
        yield from self.client.create(shadow_name(self.name), start=1)

    def write_all(self, chunks: List[bytes]):
        """Append every chunk to both copies (2x write traffic)."""
        for chunk in chunks:
            yield from self.client.seq_write(self.name, chunk)
            yield from self.client.seq_write(shadow_name(self.name), chunk)
        self._written += len(chunks)
        return len(chunks)

    def read_all(self):
        """Read the file, falling back per block to the shadow.

        Returns ``(chunks, stats)``.  Raises :class:`DeviceFailedError`
        only if *both* copies of some block are unreachable.

        Deliberately avoids Open (which gathers per-LFS info and would
        itself fail on a dead disk): block count and random-read routing
        come from the Bridge Server's cached directory entry, which is
        current because every write above went through the server.
        """
        stats = MirroredReadStats()
        chunks: List[bytes] = []
        for block in range(self._written):
            stats.blocks += 1
            try:
                data = yield from self.client.random_read(self.name, block)
            except DeviceFailedError:
                stats.fallbacks += 1
                data = yield from self.client.random_read(
                    shadow_name(self.name), block
                )
            chunks.append(data)
        return chunks, stats

    def storage_blocks(self):
        """Total blocks consumed by both copies (the 2x cost, observable).

        Requires all disks healthy (it opens both files to count blocks
        from the authoritative LFS sizes)."""
        primary = yield from self.client.open(self.name)
        shadow = yield from self.client.open(shadow_name(self.name))
        return primary.total_blocks + shadow.total_blocks
