"""Fault injection and survival analysis (paper section 6).

"Interleaved files (like striped files and storage arrays) are inherently
intolerant of faults.  A failure anywhere in the system is fatal; it
ruins every file.  Replication helps, but only at very high cost."

:class:`FaultInjector` fails individual node disks in a live system;
the analytic helpers quantify expected file loss under the alternative
placement strategies, and :mod:`repro.faults.mirror` implements the
replication remedy the paper prices at 2x storage.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List

from repro.harness.builders import BridgeSystem


class FaultInjector:
    """Fail and repair storage devices in a :class:`BridgeSystem`.

    Works against the storage-kernel contract
    (:meth:`~repro.storage.base.BlockStoreABC.fail` /
    :meth:`~repro.storage.base.BlockStoreABC.repair`), so it injects
    faults into any registered driver — ram, host-fs, object-store —
    without knowing which one a node runs.

    Listeners (objects with ``on_fail(slot)`` / ``on_repair(slot)``) are
    notified of every transition; the system's redundancy manager — which
    tracks degraded slots and auto-starts online parity rebuilds — is
    registered automatically.
    """

    def __init__(self, system: BridgeSystem) -> None:
        self.system = system
        self.failed_slots: List[int] = []
        self.listeners: List[object] = []
        manager = getattr(system, "redundancy", None)
        if manager is not None:
            self.listeners.append(manager)

    def add_listener(self, listener: object) -> None:
        """Subscribe to fail/repair notifications."""
        if listener not in self.listeners:
            self.listeners.append(listener)

    def fail_slot(self, slot: int) -> None:
        """Fail the disk behind LFS ``slot``."""
        self.system.disks[slot].fail()
        if slot not in self.failed_slots:
            self.failed_slots.append(slot)
        for listener in self.listeners:
            listener.on_fail(slot)

    def repair_slot(self, slot: int) -> None:
        self.system.disks[slot].repair()
        if slot in self.failed_slots:
            self.failed_slots.remove(slot)
        for listener in self.listeners:
            listener.on_repair(slot)

    def repair_all(self) -> List[int]:
        """Repair every currently failed slot; returns the slots fixed."""
        repaired = list(self.failed_slots)
        for slot in repaired:
            self.repair_slot(slot)
        return repaired

    @contextmanager
    def failed(self, slot: int):
        """Context manager: fail ``slot`` on entry, repair it on exit.

        The repair fires listener notifications like any other, so under
        a parity scheme leaving the block auto-starts the rebuild sweep.
        """
        self.fail_slot(slot)
        try:
            yield self
        finally:
            self.repair_slot(slot)

    def fail_random(self, rng_stream: str = "faults") -> int:
        """Fail one uniformly random healthy slot; returns its index."""
        rng = self.system.sim.random.stream(rng_stream)
        healthy = [
            slot
            for slot in range(self.system.width)
            if slot not in self.failed_slots
        ]
        if not healthy:
            raise RuntimeError("every disk has already failed")
        slot = healthy[rng.randrange(len(healthy))]
        self.fail_slot(slot)
        return slot


# ---------------------------------------------------------------------------
# Survival analysis
# ---------------------------------------------------------------------------


def files_lost_fraction_interleaved(width: int, failed_disks: int = 1) -> float:
    """Fraction of width-``width`` interleaved files lost when any disk
    fails: 1.0 for any failure (every file touches every disk)."""
    if failed_disks <= 0:
        return 0.0
    return 1.0 if width > 0 else 0.0


def files_lost_fraction_single_node(node_count: int, failed_disks: int = 1) -> float:
    """Fraction of unreplicated width-1 files lost: failed/node_count
    (files are spread evenly across nodes)."""
    if node_count <= 0:
        return 0.0
    return min(1.0, failed_disks / node_count)


def files_lost_fraction_mirrored(width: int, failed_disks: int = 1) -> float:
    """Mirrored interleaved files survive any single failure; a second
    failure is fatal only if it hits the partner copy — with the simple
    next-neighbor mirroring of :mod:`repro.faults.mirror`, two failures
    are fatal iff they are ring-adjacent."""
    if failed_disks <= 1:
        return 0.0
    if width <= 1:
        return 1.0
    # probability two uniform distinct failures are adjacent on the ring
    if width == 2:
        return 1.0
    return 2.0 / (width - 1)


def replication_storage_factor() -> float:
    """"Storage capacity must be doubled in order to tolerate
    single-drive failures."""
    return 2.0
