"""Fault injection, survival analysis, and the mirroring remedy."""

from repro.faults.injector import (
    FaultInjector,
    files_lost_fraction_interleaved,
    files_lost_fraction_mirrored,
    files_lost_fraction_single_node,
    replication_storage_factor,
)
from repro.faults.mirror import MirroredFile, MirroredReadStats, shadow_name

__all__ = [
    "FaultInjector",
    "MirroredFile",
    "MirroredReadStats",
    "files_lost_fraction_interleaved",
    "files_lost_fraction_mirrored",
    "files_lost_fraction_single_node",
    "replication_storage_factor",
    "shadow_name",
]
