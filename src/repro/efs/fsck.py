"""EFS consistency checker (fsck).

Walks the raw device image of one LFS instance and verifies every
invariant the on-disk format promises:

* every directory entry's head block exists and carries the right file
  number and block number 0;
* each file is a doubly linked *circular* list: following ``next`` from
  the head visits blocks numbered 0..size-1 exactly once and returns to
  the head, and every ``prev`` mirrors the corresponding ``next``;
* Bridge headers agree with the directory entry (global file id, width,
  column, and the ``global = local * width + column`` arithmetic);
* no block is claimed by two files, no in-file block is on the free
  list, and every allocated block is reachable (no orphans).

The checker reads the device image directly (plus the cache's dirty
blocks, which a crash-consistent checker would find after write-back) —
it is intentionally independent of the EFS server's own code paths, so
tests can use it as an oracle after arbitrary workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.efs.layout import NULL_ADDR, unpack_block
from repro.errors import EFSCorruptionError


@dataclass
class FsckReport:
    """Outcome of one consistency check."""

    files_checked: int = 0
    blocks_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors

    def complain(self, message: str) -> None:
        self.errors.append(message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "clean" if self.clean else f"{len(self.errors)} errors"
        return (
            f"FsckReport({self.files_checked} files, "
            f"{self.blocks_checked} blocks, {state})"
        )


def _effective_image(server) -> Dict[int, bytes]:
    """The device contents as they would be after a full cache write-back."""
    image = dict(server.disk.blocks)
    for address in range(server.disk.params.capacity_blocks):
        cached = server.cache.peek(address)
        if cached is not None:
            image[address] = cached
    return image


def check_efs(server) -> FsckReport:
    """Verify one EFS instance; returns an :class:`FsckReport`.

    Synchronous (host-side) — it inspects simulator state directly and
    charges no simulated time, like an offline fsck run.
    """
    report = FsckReport()
    image = _effective_image(server)
    directory = server.directory
    first_data = directory.first_data_block
    capacity = server.disk.params.capacity_blocks

    owned: Dict[int, int] = {}  # block address -> owning file number

    # Enumerate directory entries straight from the bucket blocks.
    from repro.efs.directory import _unpack_bucket

    entries = []
    for bucket in range(directory.bucket_count):
        raw = image.get(bucket)
        if raw is None:
            continue
        entries.extend(_unpack_bucket(raw))

    for entry in entries:
        report.files_checked += 1
        if entry.head_addr == NULL_ADDR:
            continue  # empty file: nothing on disk to verify
        if not first_data <= entry.head_addr < capacity:
            report.complain(
                f"file {entry.file_number}: head {entry.head_addr} outside "
                f"data region"
            )
            continue
        addr = entry.head_addr
        seen: List[int] = []
        headers = []
        while True:
            raw = image.get(addr)
            if raw is None:
                report.complain(
                    f"file {entry.file_number}: block {addr} never written"
                )
                break
            try:
                header, bridge, _data = unpack_block(raw)
            except EFSCorruptionError as exc:
                report.complain(f"file {entry.file_number}: block {addr}: {exc}")
                break
            if header.file_number != entry.file_number:
                report.complain(
                    f"file {entry.file_number}: block {addr} owned by "
                    f"{header.file_number}"
                )
                break
            if addr in owned and owned[addr] != entry.file_number:
                report.complain(
                    f"block {addr} claimed by files {owned[addr]} and "
                    f"{entry.file_number}"
                )
                break
            owned[addr] = entry.file_number
            if header.block_number != len(seen):
                report.complain(
                    f"file {entry.file_number}: block {addr} numbered "
                    f"{header.block_number}, expected {len(seen)}"
                )
                break
            if bridge.global_file_id != entry.global_file_id:
                report.complain(
                    f"file {entry.file_number}: block {addr} bridge id "
                    f"{bridge.global_file_id} != {entry.global_file_id}"
                )
            expected_global = header.block_number * entry.width + entry.column
            if bridge.global_block != expected_global:
                report.complain(
                    f"file {entry.file_number}: block {addr} global "
                    f"{bridge.global_block} != {expected_global}"
                )
            seen.append(addr)
            headers.append(header)
            report.blocks_checked += 1
            if header.next_addr == entry.head_addr:
                break  # wrapped: circular list complete
            if len(seen) > capacity:
                report.complain(
                    f"file {entry.file_number}: next chain does not close"
                )
                break
            addr = header.next_addr
        # prev pointers must mirror next pointers around the circle
        for index in range(len(seen)):
            next_header = headers[(index + 1) % len(seen)]
            if next_header.prev_addr != seen[index]:
                report.complain(
                    f"file {entry.file_number}: prev of block "
                    f"{seen[(index + 1) % len(seen)]} is "
                    f"{next_header.prev_addr}, expected {seen[index]}"
                )
        # free-list cross-check
        for addr_in_file in seen:
            if server.freelist.is_free(addr_in_file):
                report.complain(
                    f"file {entry.file_number}: block {addr_in_file} is on "
                    "the free list"
                )

    # orphan check: every allocated data block must belong to some file
    for address in range(first_data, capacity):
        if not server.freelist.is_free(address) and address not in owned:
            report.complain(f"block {address} allocated but unreachable")

    return report


def check_system(system) -> List[FsckReport]:
    """Run :func:`check_efs` on every LFS of a BridgeSystem."""
    return [check_efs(server) for server in system.efs_servers]
