"""Free-block management for one EFS instance.

A simple in-memory bitmap (the paper's EFS does not describe its allocator;
persistence of the free map is not modeled — each operation is charged
``cpu.efs_free_op`` instead, which is where a real implementation would pay
for its allocation bookkeeping I/O).

Allocation is lowest-address-first, which gives sequentially written files
physically contiguous blocks — that contiguity is what makes the cache's
full-track buffering effective for sequential reads.
"""

from __future__ import annotations

from typing import Iterator, Set

from repro.errors import EFSOutOfSpaceError


class FreeList:
    """Tracks free block addresses in ``[start, capacity)``."""

    def __init__(self, capacity: int, start: int = 0) -> None:
        if not 0 <= start <= capacity:
            raise ValueError(f"bad free region [{start}, {capacity})")
        self.capacity = capacity
        self.start = start
        self._free: Set[int] = set(range(start, capacity))
        self._next_probe = start

    # ------------------------------------------------------------------

    def allocate(self) -> int:
        """Claim and return the lowest free address."""
        if not self._free:
            raise EFSOutOfSpaceError(
                f"no free blocks (capacity {self.capacity}, start {self.start})"
            )
        # Fast path: probe sequentially from the last allocation point so
        # fresh files get contiguous runs without an O(n) min() per call.
        probe = self._next_probe
        while probe < self.capacity:
            if probe in self._free:
                self._free.remove(probe)
                self._next_probe = probe + 1
                return probe
            probe += 1
        address = min(self._free)
        self._free.remove(address)
        self._next_probe = address + 1
        return address

    def free(self, address: int) -> None:
        """Return a block to the pool; double frees are programming errors."""
        if not self.start <= address < self.capacity:
            raise ValueError(f"address {address} outside free region")
        if address in self._free:
            raise ValueError(f"double free of block {address}")
        self._free.add(address)
        if address < self._next_probe:
            self._next_probe = address

    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return (self.capacity - self.start) - len(self._free)

    def is_free(self, address: int) -> bool:
        return address in self._free

    def iter_free(self) -> Iterator[int]:
        return iter(sorted(self._free))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FreeList({self.allocated_count} used / {self.capacity - self.start})"
