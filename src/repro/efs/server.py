"""The EFS server: one stateless local file system instance.

This is the middle layer of Bridge (section 4.3), adapted from the Cronus
Elementary File System:

* flat namespace of numeric file names, hashed into an on-disk directory;
* files are doubly linked *circular* lists of blocks; the directory holds
  a pointer to the first block; each block carries its file number and
  block number;
* every request may carry a disk-address *hint*; the server locates a
  block by walking from the closest of three places: the beginning, the
  end (the head's ``prev``), or the hint — provided the hint points into
  the correct file;
* stateless: there is no open-file table; nothing needs to happen at
  open time, and the server can be restarted between any two requests.

Deletion retains the Cronus "resiliency remnant" the paper measures in
Table 2: it walks the file sequentially, re-reading every block from the
device (bypassing the track buffer) and explicitly freeing it — O(n/p)
per LFS at roughly 20 ms per block.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import DATA_BYTES_PER_BLOCK, SystemConfig
from repro.efs.cache import BlockCache
from repro.efs.directory import Directory, DirectoryEntry
from repro.efs.freelist import FreeList
from repro.efs.layout import (
    NULL_ADDR,
    BridgeHeader,
    EFSHeader,
    pack_block,
    unpack_block,
)
from repro.efs.messages import (
    BatchReadResult,
    BatchWriteResult,
    FileInfo,
    ReadResult,
    WriteResult,
)
from repro.errors import EFSBlockNotFoundError, EFSCorruptionError
from repro.machine import Response, Server
from repro.sim import Timeout


class EFSServer(Server):
    """One local file system instance bound to a node and its disk."""

    def __init__(
        self,
        node,
        disk,
        config: SystemConfig,
        name: Optional[str] = None,
        directory_buckets: int = 64,
    ) -> None:
        super().__init__(node, name or f"efs{node.index}")
        self.disk = disk
        self.config = config
        self.cache = BlockCache(
            disk,
            capacity=config.efs_cache_blocks,
            track_blocks=getattr(config, "efs_track_buffer_blocks", 4),
            hit_cpu=config.cpu.efs_cache_hit,
        )
        self.directory = Directory(self.cache, bucket_count=directory_buckets)
        self.freelist = FreeList(
            disk.params.capacity_blocks, start=self.directory.first_data_block
        )
        node.lfs_port = self.port
        node.disk = disk

    # ==================================================================
    # Operations (RPC handlers)
    # ==================================================================

    def op_create(self, file_number, global_file_id=0, width=1, column=0):
        """Create an empty file; errors if the number already exists."""
        yield Timeout(self.config.cpu.efs_request)
        entry = DirectoryEntry(
            file_number=file_number,
            head_addr=NULL_ADDR,
            global_file_id=global_file_id,
            width=width,
            column=column,
        )
        yield from self.directory.insert(entry)
        return file_number

    def op_delete(self, file_number):
        """Free every block sequentially (the slow, resilient Cronus walk)."""
        yield Timeout(self.config.cpu.efs_request)
        entry = yield from self.directory.lookup(file_number)
        freed = 0
        addr = entry.head_addr
        while addr != NULL_ADDR:
            # Resilient deletion verifies each block on the device itself
            # rather than trusting cached copies.  (Under write-behind the
            # authoritative copy may still be in the cache, so the walk
            # goes through it there.)
            if self.config.efs_write_behind:
                raw = yield from self.cache.read(addr, prefetch=False)
            else:
                raw = yield from self.disk.read(addr)
            header, _bridge, _data = unpack_block(raw)
            self._check_owner(header, file_number, addr)
            yield Timeout(self.config.cpu.efs_free_op)
            self.freelist.free(addr)
            self.cache.invalidate(addr)
            freed += 1
            addr = header.next_addr
            if addr == entry.head_addr:
                break
        yield from self.directory.remove(file_number)
        return freed

    def op_read(self, file_number, block_number, hint=None):
        """Read one block; the response carries the list pointers as hints."""
        yield Timeout(self.config.cpu.efs_request)
        located = yield from self._try_hint(file_number, block_number, hint)
        if located is None:
            entry = yield from self.directory.lookup(file_number)
            located = yield from self._locate(entry, block_number, hint)
        addr, header, bridge, data = located
        result = ReadResult(
            file_number=file_number,
            block_number=block_number,
            data=data,
            addr=addr,
            next_addr=header.next_addr,
            prev_addr=header.prev_addr,
            global_block=bridge.global_block,
        )
        return Response(value=result, size=len(data))

    def op_write(self, file_number, block_number, data, hint=None):
        """Write block ``block_number``: in-place if it exists, append if it
        is exactly one past the end (no sparse files)."""
        yield Timeout(self.config.cpu.efs_request)
        if len(data) > DATA_BYTES_PER_BLOCK:
            raise ValueError(
                f"write of {len(data)} bytes exceeds data area "
                f"{DATA_BYTES_PER_BLOCK}"
            )
        located = yield from self._try_hint(file_number, block_number, hint)
        if located is not None:
            addr, header, bridge, _old = located
            yield from self._overwrite(addr, header, bridge, data)
            return WriteResult(file_number, block_number, addr)
        entry = yield from self.directory.lookup(file_number)
        size = yield from self._file_size(entry)
        if block_number == size:
            block_number, addr = yield from self._append(entry, size, data)
            return WriteResult(file_number, block_number, addr)
        if block_number > size:
            raise EFSBlockNotFoundError(
                f"file {file_number}: cannot write block {block_number} "
                f"past end (size {size}); sparse files are not supported"
            )
        addr, header, bridge, _old = yield from self._locate(
            entry, block_number, hint
        )
        yield from self._overwrite(addr, header, bridge, data)
        return WriteResult(file_number, block_number, addr)

    def op_append(self, file_number, data):
        """Append one block at the end of the file."""
        yield Timeout(self.config.cpu.efs_request)
        if len(data) > DATA_BYTES_PER_BLOCK:
            raise ValueError(
                f"append of {len(data)} bytes exceeds data area "
                f"{DATA_BYTES_PER_BLOCK}"
            )
        entry = yield from self.directory.lookup(file_number)
        size = yield from self._file_size(entry)
        block_number, addr = yield from self._append(entry, size, data)
        return WriteResult(file_number, block_number, addr)

    def op_read_blocks(self, file_number, block_numbers, hint=None):
        """Serve many blocks of one file in a single request (list I/O).

        The whole batch pays one request-decode charge instead of one per
        block — the point of batching.  Blocks are located in ascending
        order so each block's on-disk ``next_addr`` seeds the next lookup
        (hint reuse across the batch), and results are returned in the
        *requested* order.  Adjacent located addresses coalesce into runs
        that share full-track reads through the cache.
        """
        yield Timeout(self.config.cpu.efs_request)
        if not block_numbers:
            return Response(value=BatchReadResult(file_number), size=0)
        by_number = {}
        runs = 0
        hint_hits = 0
        last_addr = None
        entry = None
        for block_number in sorted(set(block_numbers)):
            located = yield from self._try_hint(file_number, block_number, hint)
            if located is not None:
                hint_hits += 1
            else:
                if entry is None:
                    entry = yield from self.directory.lookup(file_number)
                located = yield from self._locate(entry, block_number, hint)
            addr, header, bridge, data = located
            by_number[block_number] = ReadResult(
                file_number=file_number,
                block_number=block_number,
                data=data,
                addr=addr,
                next_addr=header.next_addr,
                prev_addr=header.prev_addr,
                global_block=bridge.global_block,
            )
            if last_addr is None or addr != last_addr + 1:
                runs += 1
            last_addr = addr
            hint = header.next_addr
        results = [by_number[number] for number in block_numbers]
        size = sum(len(result.data) for result in results)
        return Response(
            value=BatchReadResult(file_number, results, runs, hint_hits),
            size=size,
        )

    def op_write_blocks(self, file_number, writes, hint=None):
        """Write many ``(block_number, data)`` pairs in a single request.

        Writes apply in ascending block order regardless of the request
        order, so a batch may mix in-place updates with a dense run of
        appends (each append lands exactly one past the current end, the
        same no-sparse-files rule as :meth:`op_write`).  Duplicate block
        numbers keep the *last* value in request order, matching the
        outcome of issuing the writes one by one.
        """
        yield Timeout(self.config.cpu.efs_request)
        if not writes:
            return BatchWriteResult(file_number)
        latest = {}
        for block_number, data in writes:
            if len(data) > DATA_BYTES_PER_BLOCK:
                raise ValueError(
                    f"write of {len(data)} bytes exceeds data area "
                    f"{DATA_BYTES_PER_BLOCK}"
                )
            latest[block_number] = data
        entry = yield from self.directory.lookup(file_number)
        size = yield from self._file_size(entry)
        by_number = {}
        runs = 0
        appended = 0
        last_addr = None
        for block_number in sorted(latest):
            data = latest[block_number]
            if block_number > size:
                raise EFSBlockNotFoundError(
                    f"file {file_number}: cannot write block {block_number} "
                    f"past end (size {size}); sparse files are not supported"
                )
            if block_number == size:
                _number, addr = yield from self._append(entry, size, data)
                size += 1
                appended += 1
            else:
                located = yield from self._try_hint(
                    file_number, block_number, hint
                )
                if located is None:
                    located = yield from self._locate(entry, block_number, hint)
                addr, header, bridge, _old = located
                yield from self._overwrite(addr, header, bridge, data)
                hint = header.next_addr
            by_number[block_number] = WriteResult(file_number, block_number, addr)
            if last_addr is None or addr != last_addr + 1:
                runs += 1
            last_addr = addr
        results = [by_number[number] for number, _data in writes]
        return BatchWriteResult(file_number, results, runs, appended)

    def op_info(self, file_number):
        """Size and placement facts about one file."""
        yield Timeout(self.config.cpu.efs_request)
        entry = yield from self.directory.lookup(file_number)
        size = yield from self._file_size(entry)
        return FileInfo(
            file_number=file_number,
            size_blocks=size,
            head_addr=entry.head_addr,
            global_file_id=entry.global_file_id,
            width=entry.width,
            column=entry.column,
        )

    def op_exists(self, file_number):
        yield Timeout(self.config.cpu.efs_request)
        return (yield from self.directory.exists(file_number))

    def op_list_files(self):
        yield Timeout(self.config.cpu.efs_request)
        return (yield from self.directory.list_files())

    def op_flush(self):
        """Write back all dirty cached blocks (used at quiesce points)."""
        yield from self.cache.flush()
        return None

    # ==================================================================
    # Internals
    # ==================================================================

    def _check_owner(self, header: EFSHeader, file_number: int, addr: int) -> None:
        if header.file_number != file_number:
            raise EFSCorruptionError(
                f"block {addr} belongs to file {header.file_number}, "
                f"expected {file_number}"
            )

    def _load(self, addr: int, prefetch: bool = True):
        raw = yield from self.cache.read(addr, prefetch=prefetch)
        return unpack_block(raw)

    def _try_hint(self, file_number: int, block_number: int, hint):
        """Serve directly from a hint when it names exactly the right block."""
        if hint is None or hint == NULL_ADDR:
            return None
        if not 0 <= hint < self.disk.params.capacity_blocks:
            return None
        if hint < self.directory.first_data_block:
            return None
        try:
            header, bridge, data = yield from self._load(hint)
        except EFSCorruptionError:
            return None
        if header.file_number != file_number:
            return None  # hint points outside the file: ignore it
        if header.block_number != block_number:
            return None  # right file, wrong block: the walk can still use it
        return hint, header, bridge, data

    def _file_size(self, entry: DirectoryEntry):
        """Size = tail block number + 1; the tail is the head's ``prev``."""
        if entry.head_addr == NULL_ADDR:
            return 0
        head, _bridge, _data = yield from self._load(entry.head_addr)
        if head.prev_addr == entry.head_addr:
            return head.block_number + 1
        tail, _bridge2, _data2 = yield from self._load(head.prev_addr)
        return tail.block_number + 1

    def _locate(self, entry: DirectoryEntry, block_number: int, hint):
        """Walk the list from the closest of beginning / end / hint."""
        if entry.head_addr == NULL_ADDR:
            raise EFSBlockNotFoundError(
                f"file {entry.file_number} is empty; no block {block_number}"
            )
        size = yield from self._file_size(entry)
        if block_number >= size or block_number < 0:
            raise EFSBlockNotFoundError(
                f"file {entry.file_number} has {size} blocks; "
                f"no block {block_number}"
            )
        # Candidate starting points: (distance, addr, that block's number)
        head, _b, _d = yield from self._load(entry.head_addr)
        candidates = [(block_number, entry.head_addr, 0)]
        tail_addr = head.prev_addr
        candidates.append((size - 1 - block_number, tail_addr, size - 1))
        if hint is not None and hint != NULL_ADDR:
            hinted = yield from self._peek_hint(entry.file_number, hint)
            if hinted is not None:
                candidates.append((abs(block_number - hinted), hint, hinted))
        _dist, addr, at = min(candidates, key=lambda c: c[0])
        while True:
            header, bridge, data = yield from self._load(addr)
            self._check_owner(header, entry.file_number, addr)
            if header.block_number == block_number:
                return addr, header, bridge, data
            yield Timeout(self.config.cpu.efs_link_step)
            if header.block_number < block_number:
                addr = header.next_addr
            else:
                addr = header.prev_addr

    def _peek_hint(self, file_number: int, hint: int):
        """Block number at ``hint`` if it belongs to the file, else None."""
        if not self.directory.first_data_block <= hint < self.disk.params.capacity_blocks:
            return None
        try:
            header, _bridge, _data = yield from self._load(hint)
        except EFSCorruptionError:
            return None
        if header.file_number != file_number:
            return None
        return header.block_number

    def _store_block(self, addr: int, raw: bytes):
        """Write one block, honoring the write-behind configuration."""
        if self.config.efs_write_behind:
            yield from self.cache.write_back(addr, raw)
        else:
            yield from self.cache.write_through(addr, raw)

    def _overwrite(self, addr: int, header: EFSHeader, bridge: BridgeHeader, data: bytes):
        """Replace a block's data area in place, keeping all pointers."""
        yield from self._store_block(addr, pack_block(header, bridge, data))

    def _bridge_header(self, entry: DirectoryEntry, block_number: int) -> BridgeHeader:
        return BridgeHeader(
            global_file_id=entry.global_file_id,
            global_block=block_number * entry.width + entry.column,
            width=entry.width,
            start_node=0,
            column=entry.column,
        )

    def _append(self, entry: DirectoryEntry, size: int, data: bytes):
        """Link a new block at the tail: two device writes in steady state
        (the new block and the old tail); the head's back-pointer update is
        a lazy write-back."""
        yield Timeout(self.config.cpu.efs_free_op)
        addr = self.freelist.allocate()
        if entry.head_addr == NULL_ADDR:
            header = EFSHeader(addr, addr, entry.file_number, 0)
            raw = pack_block(header, self._bridge_header(entry, 0), data)
            yield from self._store_block(addr, raw)
            entry.head_addr = addr
            yield from self.directory.update(entry)
            return 0, addr
        head, head_bridge, head_data = yield from self._load(entry.head_addr)
        tail_addr = head.prev_addr
        block_number = size
        new_header = EFSHeader(entry.head_addr, tail_addr, entry.file_number, block_number)
        raw = pack_block(new_header, self._bridge_header(entry, block_number), data)
        yield from self._store_block(addr, raw)
        if tail_addr == entry.head_addr:
            # Second block of the file: head's next and prev both change.
            head.next_addr = addr
            head.prev_addr = addr
            yield from self._store_block(
                entry.head_addr, pack_block(head, head_bridge, head_data)
            )
        else:
            tail, tail_bridge, tail_data = yield from self._load(tail_addr)
            tail.next_addr = addr
            yield from self._store_block(
                tail_addr, pack_block(tail, tail_bridge, tail_data)
            )
            head.prev_addr = addr
            yield from self.cache.write_back(
                entry.head_addr, pack_block(head, head_bridge, head_data)
            )
        return block_number, addr
