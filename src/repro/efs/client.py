"""Client-side helper for talking to one EFS server.

Both the Bridge Server and tool workers use this wrapper.  All methods are
generators (``yield from`` them inside a simulated process); wire sizes are
charged for block payloads in both directions.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE
from repro.machine import Client, Port


class EFSClient:
    """Typed RPC surface of :class:`~repro.efs.server.EFSServer`.

    One instance supports one outstanding request at a time.  A sequential
    reader should thread the hint: pass ``result.next_addr`` as the hint
    of the following read.
    """

    def __init__(self, node, lfs_port: Port, name: str = "efs-client") -> None:
        self.node = node
        self.port = lfs_port
        self._rpc = Client(node, name)

    # ------------------------------------------------------------------

    def create(self, file_number: int, global_file_id: int = 0, width: int = 1,
               column: int = 0):
        return (
            yield from self._rpc.call(
                self.port,
                "create",
                file_number=file_number,
                global_file_id=global_file_id,
                width=width,
                column=column,
            )
        )

    def delete(self, file_number: int):
        """Returns the number of blocks freed."""
        return (yield from self._rpc.call(self.port, "delete", file_number=file_number))

    def read(self, file_number: int, block_number: int, hint=None):
        """Returns a :class:`~repro.efs.messages.ReadResult`."""
        return (
            yield from self._rpc.call(
                self.port,
                "read",
                file_number=file_number,
                block_number=block_number,
                hint=hint,
            )
        )

    def write(self, file_number: int, block_number: int, data: bytes, hint=None):
        """Returns a :class:`~repro.efs.messages.WriteResult`."""
        return (
            yield from self._rpc.call(
                self.port,
                "write",
                size=BLOCK_SIZE,
                file_number=file_number,
                block_number=block_number,
                data=data,
                hint=hint,
            )
        )

    def read_blocks(self, file_number: int, block_numbers, hint=None):
        """Batched list-I/O read: one RPC for many blocks.

        Returns a :class:`~repro.efs.messages.BatchReadResult` whose
        ``results`` follow the request order of ``block_numbers``.
        """
        return (
            yield from self._rpc.call(
                self.port,
                "read_blocks",
                file_number=file_number,
                block_numbers=list(block_numbers),
                hint=hint,
            )
        )

    def write_blocks(self, file_number: int, writes, hint=None):
        """Batched list-I/O write of ``(block_number, data)`` pairs.

        Returns a :class:`~repro.efs.messages.BatchWriteResult`.  The
        request is charged the full payload size on the wire.
        """
        writes = list(writes)
        return (
            yield from self._rpc.call(
                self.port,
                "write_blocks",
                size=BLOCK_SIZE * len(writes),
                file_number=file_number,
                writes=writes,
                hint=hint,
            )
        )

    def append(self, file_number: int, data: bytes):
        """Returns a :class:`~repro.efs.messages.WriteResult`."""
        return (
            yield from self._rpc.call(
                self.port,
                "append",
                size=BLOCK_SIZE,
                file_number=file_number,
                data=data,
            )
        )

    def info(self, file_number: int):
        """Returns a :class:`~repro.efs.messages.FileInfo`."""
        return (yield from self._rpc.call(self.port, "info", file_number=file_number))

    def exists(self, file_number: int):
        return (yield from self._rpc.call(self.port, "exists", file_number=file_number))

    def list_files(self):
        return (yield from self._rpc.call(self.port, "list_files"))

    def flush(self):
        return (yield from self._rpc.call(self.port, "flush"))

    # ------------------------------------------------------------------

    def read_file(self, file_number: int):
        """Read a whole local file sequentially, threading hints.

        Yields nothing to the caller until done; returns the list of data
        areas (one 960-byte chunk per block).
        """
        info = yield from self.info(file_number)
        chunks = []
        hint = info.head_addr
        for block_number in range(info.size_blocks):
            result = yield from self.read(file_number, block_number, hint=hint)
            chunks.append(result.data)
            hint = result.next_addr
        return chunks

    def write_file(self, file_number: int, chunks):
        """Append every chunk in order (file should be freshly created)."""
        results = []
        for chunk in chunks:
            results.append((yield from self.append(file_number, chunk)))
        return results
