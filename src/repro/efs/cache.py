"""The EFS block cache with full-track buffering.

Section 4.3: "A cache of recently-accessed blocks makes sequential access
more efficient by keeping neighboring blocks (and their pointers) in
memory", and section 5 attributes the better-than-disk-latency read time
to "full-track buffering in our version of EFS".

Model: an LRU of raw blocks.  A read miss pays one device access and pulls
the *whole physical track* into the cache (a track is ``track_blocks``
consecutive addresses) — reading the rest of the track costs no extra
positioning once the head is there.  Metadata updates may be written back
lazily (``write_back``); dirty blocks are flushed to the device before
eviction, so the on-disk image is always reconstructible.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.obs.metrics import Counter
from repro.sim import Timeout


class BlockCache:
    """Write-back LRU block cache in front of one simulated disk."""

    def __init__(
        self,
        disk,
        capacity: int = 64,
        track_blocks: int = 4,
        hit_cpu: float = 0.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if track_blocks < 1:
            raise ValueError("track size must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self.track_blocks = track_blocks
        self.hit_cpu = hit_cpu
        self._entries: "OrderedDict[int, Tuple[bytes, bool]]" = OrderedDict()
        # obs-instrument counters behind int properties: same public API,
        # adoptable into a MetricsRegistry (see bind_metrics).
        self._hits = Counter()
        self._misses = Counter()
        self._evictions = Counter()
        self._writebacks = Counter()

    # ------------------------------------------------------------------
    # Generator API (all methods may perform device I/O)
    # ------------------------------------------------------------------

    def read(self, address: int, prefetch: bool = True):
        """Read one block through the cache.

        A miss reads the block from the device and (with ``prefetch``)
        installs the rest of its physical track for free — the track
        buffer.  Returns the raw 1024-byte block.
        """
        entry = self._entries.get(address)
        if entry is not None:
            self._hits.inc()
            self._entries.move_to_end(address)
            if self.hit_cpu:
                yield Timeout(self.hit_cpu)
            return entry[0]
        self._misses.inc()
        data = yield from self.disk.read(address)
        yield from self._install(address, data, dirty=False)
        if prefetch and self.track_blocks > 1:
            track_start = (address // self.track_blocks) * self.track_blocks
            for sibling in range(track_start, track_start + self.track_blocks):
                if sibling == address or sibling in self._entries:
                    continue
                raw = self.disk.blocks.get(sibling)
                if raw is not None:
                    yield from self._install(sibling, raw, dirty=False)
        return data

    def write_through(self, address: int, data: bytes):
        """Write to the device now and cache the result clean."""
        yield from self.disk.write(address, data)
        yield from self._install(address, data, dirty=False)

    def write_back(self, address: int, data: bytes):
        """Update the cached copy only; the device is written on eviction
        or :meth:`flush`.  Used for the hot head-block pointer updates
        (the 'EFS peculiarity' that keeps appends at two device writes)."""
        yield from self._install(address, data, dirty=True)

    def flush(self):
        """Write every dirty block to the device (in address order)."""
        dirty = [(a, d) for a, (d, flag) in self._entries.items() if flag]
        for address, data in sorted(dirty):
            yield from self.disk.write(address, data)
            self._entries[address] = (data, False)
            self._writebacks.inc()

    # ------------------------------------------------------------------
    # Synchronous helpers
    # ------------------------------------------------------------------

    def peek(self, address: int) -> Optional[bytes]:
        """Cached contents without I/O, LRU effects, or miss accounting."""
        entry = self._entries.get(address)
        return entry[0] if entry is not None else None

    def invalidate(self, address: int) -> None:
        """Drop a cached block (freed blocks must not linger)."""
        self._entries.pop(address, None)

    def invalidate_all(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    def bind_metrics(self, registry, prefix: str = "efs.cache") -> None:
        """Adopt this cache's live counters into a MetricsRegistry."""
        registry.adopt(f"{prefix}.hit", self._hits)
        registry.adopt(f"{prefix}.miss", self._misses)
        registry.adopt(f"{prefix}.eviction", self._evictions)
        registry.adopt(f"{prefix}.writeback", self._writebacks)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def _install(self, address: int, data: bytes, dirty: bool):
        if address in self._entries:
            # Dirty is sticky: a block with an unflushed write-back stays
            # dirty even when re-installed "clean" (e.g. by write_through,
            # which has already put *its* data on the device but must not
            # cancel the pending flush of the cached state).
            was_dirty = self._entries[address][1]
            self._entries[address] = (data, dirty or was_dirty)
            self._entries.move_to_end(address)
            return
        while len(self._entries) >= self.capacity:
            victim, (victim_data, victim_dirty) = self._entries.popitem(last=False)
            self._evictions.inc()
            if victim_dirty:
                self._writebacks.inc()
                yield from self.disk.write(victim, victim_data)
        self._entries[address] = (data, dirty)
