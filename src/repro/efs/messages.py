"""Typed payloads exchanged with EFS servers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.efs.layout import NULL_ADDR


@dataclass
class ReadResult:
    """Answer to a block read.

    ``next_addr``/``prev_addr`` are the on-disk linked-list pointers; a
    sequential reader passes ``next_addr`` back as the *hint* of its next
    request, which lets the stateless server find the block without any
    directory or list traversal (section 4.3).
    """

    file_number: int
    block_number: int
    data: bytes
    addr: int
    next_addr: int = NULL_ADDR
    prev_addr: int = NULL_ADDR
    global_block: int = 0


@dataclass
class WriteResult:
    """Answer to a block write/append: where the block landed."""

    file_number: int
    block_number: int
    addr: int


@dataclass
class BatchReadResult:
    """Answer to a multi-block ``read_blocks`` request (list I/O).

    ``results`` holds one :class:`ReadResult` per requested block, in
    request order.  ``runs`` counts the maximal groups of *adjacent disk
    addresses* the batch decayed into after sorting — adjacent blocks
    share full-track reads, so runs (not blocks) drive the device cost.
    ``hint_hits`` counts blocks located directly from the threaded hint
    without any list walk (section 4.3's hint reuse, amortized batch-wide).
    """

    file_number: int
    results: List["ReadResult"] = field(default_factory=list)
    runs: int = 0
    hint_hits: int = 0

    @property
    def data(self) -> List[bytes]:
        return [result.data for result in self.results]


@dataclass
class BatchWriteResult:
    """Answer to a multi-block ``write_blocks`` request (list I/O)."""

    file_number: int
    results: List["WriteResult"] = field(default_factory=list)
    runs: int = 0
    appended: int = 0


@dataclass
class FileInfo:
    """Answer to an info request (also what Get Info returns per LFS)."""

    file_number: int
    size_blocks: int
    head_addr: int
    global_file_id: int = 0
    width: int = 1
    column: int = 0

    @property
    def empty(self) -> bool:
        return self.size_blocks == 0
