"""Typed payloads exchanged with EFS servers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.efs.layout import NULL_ADDR


@dataclass
class ReadResult:
    """Answer to a block read.

    ``next_addr``/``prev_addr`` are the on-disk linked-list pointers; a
    sequential reader passes ``next_addr`` back as the *hint* of its next
    request, which lets the stateless server find the block without any
    directory or list traversal (section 4.3).
    """

    file_number: int
    block_number: int
    data: bytes
    addr: int
    next_addr: int = NULL_ADDR
    prev_addr: int = NULL_ADDR
    global_block: int = 0


@dataclass
class WriteResult:
    """Answer to a block write/append: where the block landed."""

    file_number: int
    block_number: int
    addr: int


@dataclass
class FileInfo:
    """Answer to an info request (also what Get Info returns per LFS)."""

    file_number: int
    size_blocks: int
    head_addr: int
    global_file_id: int = 0
    width: int = 1
    column: int = 0

    @property
    def empty(self) -> bool:
        return self.size_blocks == 0
