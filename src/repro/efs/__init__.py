"""EFS: the Elementary File System — Bridge's per-node local file system.

An adaptation of the Cronus EFS (BBN), per paper section 4.3: stateless,
flat numeric namespace, doubly linked circular block lists, per-request
disk-address hints, and a block cache with full-track buffering.
"""

from repro.efs.cache import BlockCache
from repro.efs.client import EFSClient
from repro.efs.directory import Directory, DirectoryEntry
from repro.efs.freelist import FreeList
from repro.efs.fsck import FsckReport, check_efs, check_system
from repro.efs.layout import (
    NULL_ADDR,
    BridgeHeader,
    EFSHeader,
    is_efs_block,
    pack_block,
    unpack_block,
)
from repro.efs.messages import FileInfo, ReadResult, WriteResult
from repro.efs.server import EFSServer

__all__ = [
    "BlockCache",
    "BridgeHeader",
    "Directory",
    "DirectoryEntry",
    "EFSClient",
    "EFSHeader",
    "EFSServer",
    "FileInfo",
    "FreeList",
    "FsckReport",
    "check_efs",
    "check_system",
    "NULL_ADDR",
    "ReadResult",
    "WriteResult",
    "is_efs_block",
    "pack_block",
    "unpack_block",
]
