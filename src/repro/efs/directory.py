"""The EFS directory: a flat, hashed, on-disk namespace.

Section 4.3: "EFS is a simple, stateless file system with a flat name
space and no access control.  File names are numbers that are used to hash
into a directory.  ...  A pointer to the first block of a file can be
found in the file's EFS directory entry."

The directory occupies a reserved region of block addresses
``[0, bucket_count)`` at the front of the device.  Each bucket block holds
packed fixed-size entries; lookups and updates go through the block cache,
so directory I/O pays realistic device costs (and benefits from caching —
the paper notes directory caching is "less effective for writes than it
is for reads").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.config import BLOCK_SIZE
from repro.errors import (
    EFSFileExistsError,
    EFSFileNotFoundError,
    EFSOutOfSpaceError,
)
from repro.efs.layout import NULL_ADDR

_ENTRY_FMT = "<qiiqii"  # file_number, head_addr, flags, gfid, width, column
_ENTRY_SIZE = struct.calcsize(_ENTRY_FMT)  # 32 bytes
_ENTRIES_PER_BUCKET = BLOCK_SIZE // _ENTRY_SIZE

#: Marker for an unused entry slot (file numbers are non-negative).
_EMPTY = -1


@dataclass
class DirectoryEntry:
    """One file's directory record."""

    file_number: int
    head_addr: int = NULL_ADDR
    flags: int = 0
    #: Bridge metadata for constituent files (0/1/0 for plain local files).
    global_file_id: int = 0
    width: int = 1
    column: int = 0


def _pack_bucket(entries: List[DirectoryEntry]) -> bytes:
    out = bytearray()
    for entry in entries:
        out += struct.pack(
            _ENTRY_FMT,
            entry.file_number,
            entry.head_addr,
            entry.flags,
            entry.global_file_id,
            entry.width,
            entry.column,
        )
    free_slots = _ENTRIES_PER_BUCKET - len(entries)
    out += struct.pack(_ENTRY_FMT, _EMPTY, 0, 0, 0, 0, 0) * free_slots
    return bytes(out).ljust(BLOCK_SIZE, b"\x00")


def _unpack_bucket(raw: bytes) -> List[DirectoryEntry]:
    entries = []
    for slot in range(_ENTRIES_PER_BUCKET):
        fields = struct.unpack_from(_ENTRY_FMT, raw, slot * _ENTRY_SIZE)
        # Empty slots are marked with file_number = -1; a never-written
        # bucket reads as zeros, which is recognizable by width == 0
        # (every real entry has interleave width >= 1).
        if fields[0] < 0 or fields[4] < 1:
            continue
        entries.append(DirectoryEntry(*fields))
    return entries


class Directory:
    """Hashed directory over a reserved on-disk bucket region."""

    def __init__(self, cache, bucket_count: int = 64) -> None:
        if bucket_count < 1:
            raise ValueError("directory needs at least one bucket")
        self.cache = cache
        self.bucket_count = bucket_count

    # ------------------------------------------------------------------

    def bucket_of(self, file_number: int) -> int:
        """The bucket block address for a file number."""
        return (file_number * 0x9E3779B1) % self.bucket_count

    @property
    def first_data_block(self) -> int:
        """First address past the directory region (free-list start)."""
        return self.bucket_count

    # ------------------------------------------------------------------
    # Generator API (all operations do cached device I/O)
    # ------------------------------------------------------------------

    def lookup(self, file_number: int):
        """Find a file's entry or raise :class:`EFSFileNotFoundError`."""
        entries = yield from self._load(self.bucket_of(file_number))
        for entry in entries:
            if entry.file_number == file_number:
                return entry
        raise EFSFileNotFoundError(f"EFS file {file_number} not found")

    def exists(self, file_number: int):
        entries = yield from self._load(self.bucket_of(file_number))
        return any(e.file_number == file_number for e in entries)

    def insert(self, entry: DirectoryEntry):
        """Add a new entry; the file number must be free."""
        if entry.file_number < 0:
            raise ValueError("file numbers must be non-negative")
        bucket = self.bucket_of(entry.file_number)
        entries = yield from self._load(bucket)
        if any(e.file_number == entry.file_number for e in entries):
            raise EFSFileExistsError(f"EFS file {entry.file_number} exists")
        if len(entries) >= _ENTRIES_PER_BUCKET:
            raise EFSOutOfSpaceError(
                f"directory bucket {bucket} full "
                f"({_ENTRIES_PER_BUCKET} entries); use more buckets"
            )
        entries.append(entry)
        yield from self._store(bucket, entries)

    def update(self, entry: DirectoryEntry):
        """Rewrite an existing entry (e.g. head pointer after first append)."""
        bucket = self.bucket_of(entry.file_number)
        entries = yield from self._load(bucket)
        for index, existing in enumerate(entries):
            if existing.file_number == entry.file_number:
                entries[index] = entry
                yield from self._store(bucket, entries)
                return
        raise EFSFileNotFoundError(f"EFS file {entry.file_number} not found")

    def remove(self, file_number: int):
        bucket = self.bucket_of(file_number)
        entries = yield from self._load(bucket)
        remaining = [e for e in entries if e.file_number != file_number]
        if len(remaining) == len(entries):
            raise EFSFileNotFoundError(f"EFS file {file_number} not found")
        yield from self._store(bucket, remaining)

    def list_files(self):
        """All file numbers on this LFS (a full directory scan)."""
        numbers = []
        for bucket in range(self.bucket_count):
            entries = yield from self._load(bucket)
            numbers.extend(e.file_number for e in entries)
        return sorted(numbers)

    # ------------------------------------------------------------------

    def _load(self, bucket: int):
        raw = yield from self.cache.read(bucket, prefetch=False)
        return _unpack_bucket(raw)

    def _store(self, bucket: int, entries: List[DirectoryEntry]):
        yield from self.cache.write_through(bucket, _pack_bucket(entries))
