"""On-disk block layout for EFS files (paper section 4.3).

Each 1024-byte block carries:

* a 24-byte EFS header — doubly-linked-list pointers plus the owning file
  number and local block number ("each block also contains its file number
  and block number");
* a 40-byte Bridge header "taken from the data storage area of each
  block" — the global identity of the block within its interleaved file
  (global file id, global block number, interleave width, column);
* 960 bytes of user data.

The pointers in the EFS header "lead to blocks that are interpreted as
adjacent within the local context.  In other words, the block pointed to
by the next pointer is p blocks away in the Bridge file."
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.config import (
    BLOCK_SIZE,
    BRIDGE_HEADER_SIZE,
    DATA_BYTES_PER_BLOCK,
    EFS_HEADER_SIZE,
)
from repro.errors import EFSCorruptionError

#: Sentinel disk address meaning "no block".
NULL_ADDR = -1

#: Magic tag marking a valid EFS block header.
EFS_MAGIC = 0x45465342  # "EFSB"

_EFS_HEADER_FMT = "<iiqiI"  # next, prev, file_number, block_number, magic
_BRIDGE_HEADER_FMT = "<qqiiii8x"  # gfid, gblock, width, start, column, flags

assert struct.calcsize(_EFS_HEADER_FMT) == EFS_HEADER_SIZE
assert struct.calcsize(_BRIDGE_HEADER_FMT) == BRIDGE_HEADER_SIZE


@dataclass
class EFSHeader:
    """The Cronus-inherited per-block header (local linked-list identity)."""

    next_addr: int = NULL_ADDR
    prev_addr: int = NULL_ADDR
    file_number: int = 0
    block_number: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _EFS_HEADER_FMT,
            self.next_addr,
            self.prev_addr,
            self.file_number,
            self.block_number,
            EFS_MAGIC,
        )


@dataclass
class BridgeHeader:
    """The Bridge extension: the block's identity in the interleaved file."""

    global_file_id: int = 0
    global_block: int = 0
    width: int = 1
    start_node: int = 0
    column: int = 0
    flags: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _BRIDGE_HEADER_FMT,
            self.global_file_id,
            self.global_block,
            self.width,
            self.start_node,
            self.column,
            self.flags,
        )


def pack_block(efs: EFSHeader, bridge: BridgeHeader, data: bytes) -> bytes:
    """Assemble one on-disk block; ``data`` is padded to 960 bytes."""
    if len(data) > DATA_BYTES_PER_BLOCK:
        raise ValueError(
            f"block data {len(data)} exceeds {DATA_BYTES_PER_BLOCK} bytes"
        )
    payload = data.ljust(DATA_BYTES_PER_BLOCK, b"\x00")
    return efs.pack() + bridge.pack() + payload


def unpack_block(raw: bytes) -> Tuple[EFSHeader, BridgeHeader, bytes]:
    """Parse one on-disk block, validating size and magic."""
    if len(raw) != BLOCK_SIZE:
        raise EFSCorruptionError(f"block is {len(raw)} bytes, expected {BLOCK_SIZE}")
    next_addr, prev_addr, file_number, block_number, magic = struct.unpack_from(
        _EFS_HEADER_FMT, raw, 0
    )
    if magic != EFS_MAGIC:
        raise EFSCorruptionError(f"bad block magic {magic:#x}")
    gfid, gblock, width, start, column, flags = struct.unpack_from(
        _BRIDGE_HEADER_FMT, raw, EFS_HEADER_SIZE
    )
    efs = EFSHeader(next_addr, prev_addr, file_number, block_number)
    bridge = BridgeHeader(gfid, gblock, width, start, column, flags)
    data = raw[EFS_HEADER_SIZE + BRIDGE_HEADER_SIZE :]
    return efs, bridge, data


def is_efs_block(raw: bytes) -> bool:
    """Cheap validity probe used when verifying hints."""
    if len(raw) != BLOCK_SIZE:
        return False
    (magic,) = struct.unpack_from("<I", raw, EFS_HEADER_SIZE - 4)
    return magic == EFS_MAGIC
