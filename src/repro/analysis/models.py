"""The paper's published numbers and cost formulas.

Table 2 gives closed-form costs for the basic operations; Tables 3 and 4
give the copy and sort tool measurements (10 MB file, p in {2..32}).
These constants are the reference series every bench prints next to its
measurements, and the fitting helpers extract comparable coefficients
from simulated data.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

# ---------------------------------------------------------------------------
# Table 2: Bridge operations (milliseconds; n = file size in blocks)
# ---------------------------------------------------------------------------


def table2_delete_ms(file_blocks: int, width: int) -> float:
    """Delete: 20 * filesize / p ms."""
    return 20.0 * file_blocks / width


def table2_create_ms(width: int) -> float:
    """Create: 145 + 17.5 p ms."""
    return 145.0 + 17.5 * width


def table2_open_ms() -> float:
    """Open: 80 ms, independent of p."""
    return 80.0


def table2_read_ms(file_blocks: int, width: int) -> float:
    """Sequential read, amortized per block: 9.0 + 500 p / filesize ms."""
    return 9.0 + 500.0 * width / file_blocks


def table2_write_ms() -> float:
    """Sequential write, per block: 31 ms."""
    return 31.0


# ---------------------------------------------------------------------------
# Table 3: copy tool, 10 Mbyte file
# ---------------------------------------------------------------------------

#: Processors -> copy time in seconds (paper Table 3).
PAPER_TABLE3_COPY_SECONDS: Dict[int, float] = {
    2: 311.6,
    4: 156.0,
    8: 79.3,
    16: 41.0,
    32: 21.6,
}

#: The figure beside Table 3 peaks at 475 records/second (p = 32).
PAPER_COPY_PEAK_RECORDS_PER_SECOND = 475.0

# ---------------------------------------------------------------------------
# Table 4: merge sort tool, 10 Mbyte file
# ---------------------------------------------------------------------------

#: Processors -> (local sort minutes, merge minutes, total minutes).
PAPER_TABLE4_SORT_MINUTES: Dict[int, Tuple[float, float, float]] = {
    2: (350.0, 17.0, 367.0),
    4: (98.0, 16.0, 111.0),
    8: (24.0, 11.0, 35.0),
    16: (6.0, 7.0, 13.0),
    32: (0.67, 4.45, 5.12),
}

#: The figure beside Table 4 peaks at 35 records/second (p = 32).
PAPER_SORT_PEAK_RECORDS_PER_SECOND = 35.0

#: The evaluation file: 10 MB of 960-byte records (section 5).
PAPER_FILE_BLOCKS = 10 * 1024 * 1024 // 960  # 10 922 full blocks

#: The in-core sort buffer (section 5.2).
PAPER_SORT_BUFFER_RECORDS = 512


# ---------------------------------------------------------------------------
# Copy tool cost model (section 5.1: O(n/p + log p))
# ---------------------------------------------------------------------------


def copy_time_model(
    file_blocks: int,
    width: int,
    read_time: float = 0.009,
    write_time: float = 0.036,
    startup_per_level: float = 0.012,
    fixed_overhead: float = 0.35,
) -> float:
    """Closed-form copy-tool time: per-node streaming plus log-depth
    start-up/completion and the fixed Get Info / Open / Create phase."""
    if width < 1:
        raise ValueError("width must be >= 1")
    per_node_blocks = math.ceil(file_blocks / width)
    levels = math.ceil(math.log2(width)) if width > 1 else 0
    return (
        fixed_overhead
        + levels * startup_per_level
        + per_node_blocks * (read_time + write_time)
    )


# ---------------------------------------------------------------------------
# Noncontiguous-access message model (S17)
# ---------------------------------------------------------------------------
#
# The list-I/O argument is purely combinatorial, so it has an exact
# analytic form the simulator must reproduce message-for-message:
#
# * naive:     one EFS request per access              -> N
# * list I/O:  one batched EFS request per touched LFS -> |slots(blocks)|
# * two-phase: one aggregator (and one batched EFS request) per touched
#   slot, one descriptor message per aggregator, and one redistribution
#   message per (worker, slot) pair with traffic between them.


def touched_slots(blocks: Sequence[int], width: int, start: int = 0) -> int:
    """Distinct LFS slots a set of global blocks lands on."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return len({(block + start) % width for block in blocks})


def naive_rpc_count(blocks: Sequence[int]) -> int:
    """Per-block access: one Bridge->EFS request per access (dups pay)."""
    return len(blocks)


def listio_rpc_count(blocks: Sequence[int], width: int, start: int = 0) -> int:
    """List I/O: one batched EFS request per touched LFS, at most p."""
    return touched_slots(blocks, width, start)


def twophase_message_counts(
    per_worker_blocks: Sequence[Sequence[int]], width: int, start: int = 0
) -> Dict[str, int]:
    """Exact message counts for a two-phase collective operation.

    Returns ``efs_requests`` (= ``aggregators``), ``exchange_messages``
    (one descriptor per aggregator) and ``redistribution_messages`` (one
    per (worker, slot) pair with data) — the same fields
    :class:`repro.collective.CollectiveStats` reports, so model and
    measurement can be compared for equality, not just shape.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    slots = set()
    pairs = set()
    for worker, blocks in enumerate(per_worker_blocks):
        for block in blocks:
            slot = (block + start) % width
            slots.add(slot)
            pairs.add((worker, slot))
    return {
        "aggregators": len(slots),
        "efs_requests": len(slots),
        "exchange_messages": len(slots),
        "redistribution_messages": len(pairs),
    }


# ---------------------------------------------------------------------------
# Pipelined naive read (S18)
# ---------------------------------------------------------------------------
#
# With the Bridge block cache and striped read-ahead enabled, the
# naive-view hot loop turns client-bound: every steady-state read is a
# cache hit whose cost is pure message plus hit-CPU time — an exact
# closed form the simulator reproduces delta-for-delta (each successive
# block completes exactly ``pipelined_hit_seconds`` after the previous
# one once the stream is recognized and the pipeline is primed).


def pipelined_hit_seconds(config=None) -> float:
    """Exact steady-state latency of one cached naive-view read.

    Request message to the Bridge node + cache-hit CPU + response
    message carrying one block's 960-byte data area.  No directory
    consult, no EFS traffic — that is the whole point of the pipeline.
    """
    from repro.config import DATA_BYTES_PER_BLOCK, DEFAULT_CONFIG

    cfg = config or DEFAULT_CONFIG
    return (
        cfg.messages.remote_latency          # client -> bridge request
        + cfg.cpu.bridge_cache_hit           # hash probe + LRU touch
        + cfg.messages.remote_latency        # bridge -> client response
        + DATA_BYTES_PER_BLOCK * cfg.messages.per_byte
    )


def pipelined_supply_seconds_per_block(config=None,
                                       disk_latency: float = 0.015) -> float:
    """Average per-block service time of one LFS streaming sequentially
    to the prefetcher: one track-buffer disk read amortized over
    ``efs_track_buffer_blocks``, per-request EFS CPU, and the
    request/response messages of the (per-slot serial) fetch chain."""
    from repro.config import DATA_BYTES_PER_BLOCK, DEFAULT_CONFIG

    cfg = config or DEFAULT_CONFIG
    track = max(1, cfg.efs_track_buffer_blocks)
    return (
        disk_latency / track
        + cfg.cpu.efs_request
        + cfg.cpu.efs_cache_hit
        + 2 * cfg.messages.remote_latency
        + DATA_BYTES_PER_BLOCK * cfg.messages.per_byte
    )


def pipelined_client_bound(width: int, config=None,
                           disk_latency: float = 0.015) -> bool:
    """True when the pipelined stream is limited by the client round
    trip: the p constituents together supply blocks at least as fast as
    the client consumes cache hits."""
    if width < 1:
        raise ValueError("width must be >= 1")
    supply = pipelined_supply_seconds_per_block(config, disk_latency) / width
    return supply <= pipelined_hit_seconds(config)


def pipelined_read_seconds(file_blocks: int, width: int, config=None,
                           disk_latency: float = 0.015) -> float:
    """Closed-form time for an n-block pipelined sequential read: every
    block costs the slower of the client hit path and the per-LFS supply
    rate spread over p constituents (exact in the client-bound regime,
    which holds for the paper configuration at every p >= 1)."""
    if file_blocks < 0:
        raise ValueError("file_blocks must be >= 0")
    hit = pipelined_hit_seconds(config)
    supply = pipelined_supply_seconds_per_block(config, disk_latency) / width
    return file_blocks * max(hit, supply)


# ---------------------------------------------------------------------------
# S19: per-component attribution of the naive read path
# ---------------------------------------------------------------------------
#
# The critical-path analyzer (repro.obs.critical) partitions a measured
# span tree; this is the closed-form prediction it is cross-checked
# against.  One steady-state naive-view sequential read costs, per block:
#
#   net:    4 one-way remote messages (request/response on both hops)
#           + 2 block payloads (EFS->bridge, bridge->client);
#   server: bridge request CPU + EFS request CPU
#           (+ EFS cache-hit CPU on track-buffered blocks);
#   disk:   one device access per track when the stream misses the EFS
#           cache (``resident=False``), amortized over the track.


def naive_read_components(
    file_blocks: int,
    config=None,
    disk_latency: float = 0.015,
    resident: bool = True,
) -> Dict[str, float]:
    """Predicted per-category seconds for ``file_blocks`` steady-state
    naive reads.  ``resident=True`` models a file that fits in the EFS
    caches (every read is a track-buffer hit, no disk time); ``False``
    models a cold stream paying one device access per track."""
    from repro.config import DATA_BYTES_PER_BLOCK, DEFAULT_CONFIG

    cfg = config or DEFAULT_CONFIG
    track = max(1, cfg.efs_track_buffer_blocks)
    per_block_net = (
        4 * cfg.messages.remote_latency
        + 2 * DATA_BYTES_PER_BLOCK * cfg.messages.per_byte
    )
    cold = 0.0 if resident else file_blocks / track
    warm = file_blocks - cold
    return {
        "client": 0.0,
        "net": file_blocks * per_block_net,
        "server": (
            file_blocks * (cfg.cpu.bridge_request + cfg.cpu.efs_request)
            + warm * cfg.cpu.efs_cache_hit
        ),
        "disk": cold * disk_latency,
        "queue": 0.0,
    }


def naive_read_seconds_per_block(config=None, disk_latency: float = 0.015,
                                 resident: bool = True) -> float:
    """Total of :func:`naive_read_components` for one block."""
    return sum(naive_read_components(
        1, config=config, disk_latency=disk_latency, resident=resident
    ).values())


# ---------------------------------------------------------------------------
# S20: per-partition cost model (hash-partitioned Bridge fabric)
# ---------------------------------------------------------------------------


def partition_load(names: Sequence[str], servers: int,
                   requests: Optional[Dict[str, int]] = None,
                   ring=None) -> List[int]:
    """Exact per-partition request counts under the production routing.

    ``requests`` optionally weights each name by its request count
    (weight 1 per name otherwise).  ``ring`` is any S22 ring object
    (:mod:`repro.elastic.ring`); the default is the rigid fabric's
    mod-k ring, so these counts are exact, not estimates — the model
    part is using them to predict the fabric's behavior without
    running it.
    """
    from repro.elastic.ring import ModuloRing

    if ring is None:
        ring = ModuloRing(servers)
    elif ring.partitions != servers:
        raise ValueError(
            f"ring has {ring.partitions} partitions, expected {servers}"
        )
    loads = [0] * servers
    weights = requests or {}
    for name in names:
        loads[ring.partition_of(name)] += weights.get(name, 1)
    return loads


def fabric_speedup_bound(names: Sequence[str], servers: int,
                         requests: Optional[Dict[str, int]] = None,
                         ring=None) -> float:
    """Upper bound on central-server relief from partitioning.

    Total server work divided by the hottest partition's share: the
    server stage of the aggregate makespan improves by at most this
    factor (perfect balance gives ``servers``; one hot name gives 1.0).
    Disks and the interconnect may bottleneck earlier, so measured
    speedups sit at or below this bound.
    """
    loads = partition_load(names, servers, requests, ring=ring)
    peak = max(loads) if loads else 0
    return (sum(loads) / peak) if peak else float(servers)


def fabric_server_seconds(names: Sequence[str], servers: int,
                          per_request_seconds: float,
                          requests: Optional[Dict[str, int]] = None,
                          ring=None) -> float:
    """Predicted server-stage critical time on a fabric: the hottest
    partition's request count times the per-request service charge."""
    loads = partition_load(names, servers, requests, ring=ring)
    return (max(loads) if loads else 0) * per_request_seconds


# ---------------------------------------------------------------------------
# S23: batched metadata RPC model
# ---------------------------------------------------------------------------
#
# A batched metadata op (mopen/mstat/mcreate/mdelete) buckets its names
# by the live ring and issues one RPC per window-sized sub-batch per
# touched partition.  The count is purely combinatorial, so — like the
# S17 list-I/O model — the simulator must reproduce it RPC-for-RPC: the
# metadata bench asserts the observed server request counters equal
# these formulas exactly.


def metadata_partition_buckets(names: Sequence[str], partitions: int,
                               ring=None) -> Dict[int, int]:
    """Per-partition name counts under the production routing.

    ``ring`` is any S22 ring object; the default is the rigid mod-k
    ring, which matches a freshly built fabric of ``partitions``
    servers.  Only touched partitions appear as keys.
    """
    from repro.elastic.ring import ModuloRing

    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if ring is None:
        ring = ModuloRing(partitions)
    buckets: Dict[int, int] = {}
    for name in names:
        partition = ring.partition_of(name)
        buckets[partition] = buckets.get(partition, 0) + 1
    return buckets


def batched_rpc_count(names: Sequence[str], partitions: int,
                      window: int = 0, ring=None) -> int:
    """Exact RPC count of one batched metadata op.

    ``sum(ceil(k_i / window))`` over the touched partitions' name counts
    ``k_i``; ``window = 0`` (an unbounded ``bridge_fanout_limit``) means
    one RPC per touched partition.
    """
    if window < 0:
        raise ValueError("window must be >= 0")
    buckets = metadata_partition_buckets(names, partitions, ring=ring)
    if window == 0:
        return len(buckets)
    return sum(math.ceil(count / window) for count in buckets.values())


def metadata_rpc_counts(names: Sequence[str], partitions: int,
                        window: int = 0, ring=None) -> Dict[str, int]:
    """The per-name-loop vs batched comparison in one package:
    ``per_name`` (one RPC per name, what a sequential client pays),
    ``batched`` (the S23 count), and ``partitions_touched``."""
    buckets = metadata_partition_buckets(names, partitions, ring=ring)
    return {
        "per_name": len(list(names)),
        "batched": batched_rpc_count(names, partitions, window=window,
                                     ring=ring),
        "partitions_touched": len(buckets),
    }


# ---------------------------------------------------------------------------
# Queueing models (S21): predicted waits for the traffic cross-check
# ---------------------------------------------------------------------------


def utilization(arrival_rate: float, service_rate: float) -> float:
    """Offered utilization rho = lambda / mu (may exceed 1 under overload)."""
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
    return arrival_rate / service_rate


def mm1_wait_seconds(arrival_rate: float, service_rate: float) -> float:
    """Mean M/M/1 queueing delay (time waiting, excluding service).

    ``Wq = rho / (mu - lambda)``.  Infinite at or past saturation —
    exactly what an open-loop driver observes as unbounded queue growth.
    """
    rho = utilization(arrival_rate, service_rate)
    if rho >= 1.0:
        return math.inf
    return rho / (service_rate - arrival_rate)


def md1_wait_seconds(arrival_rate: float, service_rate: float) -> float:
    """Mean M/D/1 queueing delay (Pollaczek-Khinchine, deterministic
    service): ``Wq = rho / (2 mu (1 - rho))`` — half the M/M/1 wait.

    The Bridge Server's per-request CPU charge is a constant, so its
    admission queue is closer to M/D/1 than M/M/1; the traffic tests
    check the measured queue delay lands between the two predictions'
    neighborhood.
    """
    rho = utilization(arrival_rate, service_rate)
    if rho >= 1.0:
        return math.inf
    return rho / (2.0 * service_rate * (1.0 - rho))


# ---------------------------------------------------------------------------
# Fitting helpers
# ---------------------------------------------------------------------------


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = intercept + slope * x``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return mean_y - slope * mean_x, slope


def speedup_series(times: Dict[int, float]) -> Dict[int, float]:
    """Speedup relative to the smallest configuration in the series."""
    if not times:
        return {}
    base_p = min(times)
    base = times[base_p]
    return {p: base / t if t > 0 else math.inf for p, t in sorted(times.items())}


def shape_ratio(measured: Dict[int, float], paper: Dict[int, float]) -> Dict[int, float]:
    """measured/paper per configuration — a flat series means the shape
    matches even when absolute constants differ."""
    return {
        p: measured[p] / paper[p]
        for p in sorted(measured)
        if p in paper and paper[p] > 0
    }
