"""Markdown report generation from live experiment runs.

``build_report`` runs the headline sweeps (Tables 2-4) at a chosen scale
and renders a self-contained markdown document with paper-vs-measured
tables — the programmatic counterpart of EXPERIMENTS.md, usable from
notebooks or CI:

    from repro.analysis.report import build_report
    print(build_report(ps=(2, 4, 8)))
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import scaling_table
from repro.analysis.models import (
    PAPER_TABLE3_COPY_SECONDS,
    PAPER_TABLE4_SORT_MINUTES,
    fit_line,
    speedup_series,
    table2_create_ms,
    table2_open_ms,
    table2_write_ms,
)
from repro.analysis.tables import format_markdown_table


def table2_section(ps: Sequence[int], file_blocks: int = 256) -> str:
    from repro.harness.experiments import measure_table2

    measurements = {p: measure_table2(p, file_blocks=file_blocks) for p in ps}
    rows = [
        [p, m.open_ms, m.read_ms_per_block, m.write_ms_per_block,
         m.create_ms, m.delete_ms_per_block_per_lfs]
        for p, m in sorted(measurements.items())
    ]
    body = format_markdown_table(
        ["p", "open ms", "read ms/blk", "write ms/blk", "create ms",
         "delete ms/blk/LFS"],
        rows,
    )
    intercept, slope = fit_line(
        list(ps), [measurements[p].create_ms for p in ps]
    )
    return (
        "## Table 2: basic operations\n\n"
        f"{body}\n\n"
        f"Create fit: `{intercept:.0f} + {slope:.1f}p` ms "
        f"(paper `145 + 17.5p`); Open paper {table2_open_ms():.0f} ms; "
        f"Write paper {table2_write_ms():.0f} ms.\n"
    )


def table3_section(ps: Sequence[int], blocks: Optional[int] = None) -> str:
    from repro.harness.experiments import run_copy_experiment

    runs = {p: run_copy_experiment(p, blocks=blocks) for p in ps}
    times = {p: r.elapsed for p, r in runs.items()}
    measured = speedup_series(times)
    paper = speedup_series(
        {p: s for p, s in PAPER_TABLE3_COPY_SECONDS.items() if p in ps}
    )
    rows = [
        [p, runs[p].blocks, runs[p].elapsed, runs[p].records_per_second,
         measured[p], paper.get(p, "-")]
        for p in sorted(runs)
    ]
    body = format_markdown_table(
        ["p", "blocks", "time (s)", "records/s", "speedup", "paper speedup"],
        rows,
    )
    return f"## Table 3: copy tool\n\n{body}\n"


def table4_section(ps: Sequence[int], records: Optional[int] = None) -> str:
    from repro.harness.experiments import run_sort_experiment

    runs = {p: run_sort_experiment(p, records=records) for p in ps}
    rows = [
        [p, runs[p].local_sort_seconds, runs[p].merge_seconds,
         runs[p].total_seconds, runs[p].records_per_second]
        for p in sorted(runs)
    ]
    body = format_markdown_table(
        ["p", "local sort (s)", "merge (s)", "total (s)", "records/s"],
        rows,
    )
    paper = {p: PAPER_TABLE4_SORT_MINUTES[p] for p in ps
             if p in PAPER_TABLE4_SORT_MINUTES}
    return (
        "## Table 4: merge sort tool\n\n"
        f"{body}\n\n"
        f"Paper (local, merge, total) minutes: `{paper}`\n"
    )


def cache_section(system) -> str:
    """Per-LFS :class:`~repro.efs.cache.BlockCache` counters for a live
    system: hits, misses, hit rate, evictions, and dirty writebacks."""
    rows = []
    for slot, efs in enumerate(system.efs_servers):
        cache = efs.cache
        lookups = cache.hits + cache.misses
        rows.append(
            [slot, cache.hits, cache.misses,
             (cache.hits / lookups) if lookups else 0.0,
             cache.evictions, cache.writebacks]
        )
    totals = [sum(r[i] for r in rows) for i in (1, 2, 4, 5)]
    lookups = totals[0] + totals[1]
    rows.append(
        ["all", totals[0], totals[1],
         (totals[0] / lookups) if lookups else 0.0, totals[2], totals[3]]
    )
    body = format_markdown_table(
        ["LFS", "hits", "misses", "hit rate", "evictions", "writebacks"],
        rows,
    )
    return f"## Block cache\n\n{body}\n"


def bridge_cache_section(system) -> str:
    """S18 Bridge-server cache/prefetch counters for a live system:
    hit/miss traffic, invalidations, and read-ahead accounting (issued /
    used / wasted prefetches)."""
    stats = system.bridge.bridge_cache_stats()
    if stats is None:
        return (
            "## Bridge server cache\n\n"
            "Disabled (`bridge_cache_blocks=0`, the seed configuration).\n"
        )
    order = [
        "capacity", "cached_blocks", "hits", "misses", "hit_rate",
        "installs", "evictions", "invalidations", "prefetch_window",
        "stream_recognitions", "prefetch_issued", "prefetch_completed",
        "prefetch_installs", "prefetch_used", "prefetch_wasted",
        "prefetch_dropped",
    ]
    rows = [[key, stats[key]] for key in order if key in stats]
    body = format_markdown_table(["counter", "value"], rows)
    return f"## Bridge server cache\n\n{body}\n"


def prefetch_section(p: int = 8, blocks: Optional[int] = None,
                     windows: Sequence[int] = (1, 2, 4)) -> str:
    """The S18 ablation: cache off / cache only / read-ahead windows,
    streaming the same file twice per arm."""
    from repro.harness.experiments import run_prefetch_experiment

    runs = run_prefetch_experiment(p=p, blocks=blocks, windows=windows)
    rows = [
        [r.arm, r.ms_per_block, r.elapsed, r.repeat_seconds, r.speedup,
         r.repeat_speedup, r.hits, r.misses, r.prefetch_wasted,
         "ok" if r.content_ok else "MISMATCH"]
        for r in runs
    ]
    body = format_markdown_table(
        ["arm", "ms/blk", "cold (s)", "repeat (s)", "speedup",
         "repeat speedup", "hits", "misses", "wasted", "bytes"],
        rows,
    )
    model = next((r.model_seconds for r in runs if r.model_seconds), None)
    tail = (
        f"\nPipelined model: `{model:.4f}` s for the cold pass "
        "(exact in the client-bound steady state).\n" if model else "\n"
    )
    return (
        f"## Server-side caching & read-ahead (p={p})\n\n{body}\n{tail}"
    )


def redundancy_section(p: int = 4, blocks: Optional[int] = None) -> str:
    """None/mirror/parity through the fail -> rebuild lifecycle (S16),
    with the cache traffic each scheme generated."""
    from repro.harness.experiments import run_redundancy_experiment
    from repro.redundancy import SCHEMES

    # mirroring needs >= 2 slots, rotating parity >= 3
    schemes = [s for s in SCHEMES
               if (s == "none") or (s == "mirror" and p >= 2) or p >= 3]
    runs = [run_redundancy_experiment(s, p=p, blocks=blocks) for s in schemes]
    rows = [
        [r.scheme, r.storage_factor, r.write_ops_per_block,
         "survived" if r.survived else "LOST",
         "-" if r.rebuild_seconds is None else r.rebuild_seconds,
         "clean" if r.fsck_clean else "DIRTY",
         r.cache_hits, r.cache_misses, r.cache_evictions, r.cache_writebacks]
        for r in runs
    ]
    body = format_markdown_table(
        ["scheme", "storage", "dev writes/blk", "one failure", "rebuild s",
         "fsck", "cache hits", "misses", "evictions", "writebacks"],
        rows,
    )
    return f"## Redundancy schemes (p={p})\n\n{body}\n"


def observability_section(p: int = 8, blocks: Optional[int] = None) -> str:
    """S19: where does a naive read's latency go?  Critical-path
    attribution vs. the exact cost model, plus determinism and disk
    utilization from the timelines."""
    from repro.harness.experiments import run_obs_experiment

    run = run_obs_experiment(p=p, blocks=blocks)
    categories = sorted(run.attribution_seconds)
    rows = [
        [
            category,
            f"{run.attribution_seconds[category] * 1000:.2f}",
            f"{run.model_seconds.get(category, 0.0) * 1000:.2f}",
            f"{run.attribution_fractions[category] * 100:.1f}%",
        ]
        for category in categories
    ]
    body = format_markdown_table(
        ["component", "measured ms", "model ms", "share"], rows
    )
    busy = ", ".join(
        f"{name}={fraction:.3f}"
        for name, fraction in sorted(run.disk_busy_fractions.items())
    )
    return (
        f"## Observability: naive read critical path (p={p}, "
        f"n={run.blocks})\n\n{body}\n\n"
        f"- partition error: `{run.partition_error:.2e}` "
        "(attribution sums to measured latency by construction)\n"
        f"- worst model error: `{run.max_model_error:.2e}`\n"
        f"- event sequence identical with obs off: "
        f"`{run.event_sequence_identical}` "
        f"({run.events_obs_on} events)\n"
        f"- spans recorded: {run.span_count} "
        f"(dropped {run.spans_dropped})\n"
        f"- disk busy fractions: {busy}\n"
    )


def rebalance_section(rate: float = 150.0, duration: float = 16.0,
                      servers: int = 4, skew: float = 1.2,
                      seed: int = 7) -> str:
    """S24: the heat-driven rebalancer off (watching) vs on, on the same
    Zipf-skewed mix — utilization spread, goodput, read p99, and the
    popularity-weighted route bound recovered."""
    from repro.harness.experiments import run_rebalance_experiment

    runs = [
        run_rebalance_experiment(rate=rate, duration=duration,
                                 servers=servers, skew=skew, seed=seed,
                                 active=active)
        for active in (False, True)
    ]
    rows = [
        [
            "rebalance" if r.active else "static",
            f"{r.utilization_spread:.3f}",
            f"{r.final_imbalance:.2f}",
            r.actions,
            r.moves,
            f"{r.goodput:.1f}",
            f"{r.p99('read') * 1000:.1f}",
            f"{r.route_bound_final:.2f}",
            "intact" if r.files_intact and r.fsck_clean else "DAMAGED",
        ]
        for r in runs
    ]
    body = format_markdown_table(
        ["arm", "busy spread", "imbalance", "actions", "moves", "goodput",
         "read p99 ms", "route bound", "files"],
        rows,
    )
    return (
        f"## Load-aware rebalancing (servers={servers}, skew={skew})\n\n"
        f"{body}\n\n"
        f"Static-ring popularity-weighted route bound: "
        f"`{runs[0].route_bound_static:.2f}` of a perfect `{servers}.00`; "
        "the rebalance arm's bound is after its arc sheds.\n"
    )


def build_report(ps: Sequence[int] = (2, 4, 8),
                 blocks: Optional[int] = None,
                 records: Optional[int] = None,
                 title: str = "Bridge reproduction report") -> str:
    """Run the headline sweeps and render one markdown document."""
    if not ps:
        raise ValueError("need at least one processor count")
    sections = [
        f"# {title}\n",
        table2_section(ps),
        table3_section(ps, blocks=blocks),
        table4_section(ps, records=records),
        prefetch_section(p=max(ps), blocks=blocks),
        redundancy_section(p=max(ps)),
        observability_section(p=max(ps), blocks=blocks),
    ]
    return "\n".join(sections)
