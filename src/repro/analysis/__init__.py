"""Analysis: paper models, derived metrics, table formatting."""

from repro.analysis.metrics import (
    ScalingPoint,
    crossover_point,
    efficiency,
    is_superlinear,
    scaling_table,
    speedup,
    throughput,
)
from repro.analysis.models import (
    PAPER_COPY_PEAK_RECORDS_PER_SECOND,
    PAPER_FILE_BLOCKS,
    PAPER_SORT_BUFFER_RECORDS,
    PAPER_SORT_PEAK_RECORDS_PER_SECOND,
    PAPER_TABLE3_COPY_SECONDS,
    PAPER_TABLE4_SORT_MINUTES,
    fit_line,
    shape_ratio,
    speedup_series,
    table2_create_ms,
    table2_delete_ms,
    table2_open_ms,
    table2_read_ms,
    table2_write_ms,
)
from repro.analysis.report import (
    build_report,
    cache_section,
    redundancy_section,
)
from repro.analysis.tables import format_markdown_table, format_series, format_table

__all__ = [
    "PAPER_COPY_PEAK_RECORDS_PER_SECOND",
    "PAPER_FILE_BLOCKS",
    "PAPER_SORT_BUFFER_RECORDS",
    "PAPER_SORT_PEAK_RECORDS_PER_SECOND",
    "PAPER_TABLE3_COPY_SECONDS",
    "PAPER_TABLE4_SORT_MINUTES",
    "ScalingPoint",
    "build_report",
    "cache_section",
    "crossover_point",
    "efficiency",
    "fit_line",
    "format_markdown_table",
    "format_series",
    "format_table",
    "redundancy_section",
    "is_superlinear",
    "scaling_table",
    "shape_ratio",
    "speedup",
    "speedup_series",
    "table2_create_ms",
    "table2_delete_ms",
    "table2_open_ms",
    "table2_read_ms",
    "table2_write_ms",
    "throughput",
]
