"""Derived experiment metrics: speedup, efficiency, throughput."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def speedup(base_time: float, time: float) -> float:
    """How many times faster than the base configuration."""
    if time <= 0:
        return math.inf
    return base_time / time


def efficiency(base_time: float, base_p: int, time: float, p: int) -> float:
    """Speedup per added processor ratio (1.0 = perfectly linear)."""
    if p <= 0 or base_p <= 0:
        raise ValueError("processor counts must be positive")
    return speedup(base_time, time) / (p / base_p)


def throughput(units: int, elapsed: float) -> float:
    """Units per second (records, blocks, requests...)."""
    return units / elapsed if elapsed > 0 else 0.0


@dataclass
class ScalingPoint:
    """One row of a scaling experiment."""

    p: int
    time: float
    throughput: float
    speedup: float
    efficiency: float


def scaling_table(times: Dict[int, float], units: int) -> List[ScalingPoint]:
    """Build the standard scaling table from per-p times."""
    if not times:
        return []
    base_p = min(times)
    base_time = times[base_p]
    points = []
    for p in sorted(times):
        points.append(
            ScalingPoint(
                p=p,
                time=times[p],
                throughput=throughput(units, times[p]),
                speedup=speedup(base_time, times[p]),
                efficiency=efficiency(base_time, base_p, times[p], p),
            )
        )
    return points


def is_superlinear(times: Dict[int, float], slack: float = 1.0) -> bool:
    """True if every doubling of p improves time by more than 2x/slack."""
    ps = sorted(times)
    for smaller, larger in zip(ps, ps[1:]):
        factor = larger / smaller
        if times[smaller] / times[larger] <= factor * slack:
            return False
    return True


def crossover_point(series_a: Dict[int, float], series_b: Dict[int, float]) -> Optional[int]:
    """Smallest shared x where series_a drops below series_b (None if never)."""
    for x in sorted(set(series_a) & set(series_b)):
        if series_a[x] < series_b[x]:
            return x
    return None
