"""Paper-style table formatting for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table, right-aligned numbers."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_render_cell(c) for c in row) + " |")
    return "\n".join(lines)


def format_series(label: str, series: dict, unit: str = "") -> str:
    """One-line rendering of a p -> value series."""
    parts = [f"p={p}: {_render_cell(v)}{unit}" for p, v in sorted(series.items())]
    return f"{label}: " + ", ".join(parts)
