"""Bridge: a high-performance file system for parallel processors.

A complete reproduction of Dibble, Ellis & Scott (ICDCS 1988) as a Python
library: the Bridge Server with interleaved files and three user views,
the EFS local file systems, a discrete-event simulated multiprocessor
with per-node disks, the copy/filter/grep/sort tool suite, the baselines
the paper argues against (striping, chunking, hashing, storage arrays),
and a benchmark harness regenerating every table and figure.

Quickstart::

    from repro import BridgeSystem

    system = BridgeSystem(8)          # 8 LFS nodes with 15 ms disks
    client = system.naive_client()

    def app():
        yield from client.create("demo")
        yield from client.seq_write("demo", b"hello interleaved world")
        yield from client.open("demo")
        block, data = yield from client.seq_read("demo")
        return data

    print(system.run(app()))

See README.md for the architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

from repro._version import __version__
from repro.collective import Extent, ListIORequest, TwoPhaseIO
from repro.config import (
    BLOCK_SIZE,
    DATA_BYTES_PER_BLOCK,
    DEFAULT_CONFIG,
    CpuCosts,
    MessageCosts,
    SystemConfig,
)
from repro.core import (
    BridgeClient,
    BridgeServer,
    InterleaveMap,
    JobController,
    ParallelWorker,
)
from repro.harness import BridgeSystem, build_system, paper_system
from repro.tools import (
    CopyTool,
    EncryptTool,
    GrepTool,
    LineLexTool,
    SortTool,
    TranslateTool,
    WordCountTool,
)

__all__ = [
    "BLOCK_SIZE",
    "BridgeClient",
    "BridgeServer",
    "BridgeSystem",
    "CopyTool",
    "CpuCosts",
    "DATA_BYTES_PER_BLOCK",
    "DEFAULT_CONFIG",
    "EncryptTool",
    "Extent",
    "GrepTool",
    "InterleaveMap",
    "ListIORequest",
    "TwoPhaseIO",
    "JobController",
    "LineLexTool",
    "MessageCosts",
    "ParallelWorker",
    "SortTool",
    "SystemConfig",
    "TranslateTool",
    "WordCountTool",
    "__version__",
    "build_system",
    "paper_system",
]
