"""Experiment runners: one function per paper artifact.

Each function builds a fresh simulated system, runs the workload, and
returns a result record (see :mod:`repro.harness.results`).  The bench
scripts under ``benchmarks/`` are thin wrappers that sweep these runners
and print paper-vs-measured tables; the examples drive them
interactively.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis.models import (
    PAPER_TABLE3_COPY_SECONDS,
    PAPER_TABLE4_SORT_MINUTES,
)
from repro.baselines import SequentialSystem, StripedSystem
from repro.config import DEFAULT_CONFIG
from repro.core import JobController, ParallelWorker
from repro.faults import FaultInjector, MirroredFile
from repro.harness.builders import BridgeSystem, paper_system
from repro.rebalance.heat import HeatMap
from repro.harness.results import (
    CopyRun,
    CreateTreeRun,
    FaultsRun,
    RedundancyRun,
    SortRun,
    StorageDriverRun,
    StripingRun,
    Table2Measurement,
    TokenSaturationRun,
    ViewsRun,
)
from repro.tools import CopyTool, SortTool, WordCountTool
from repro.tools.sort import PairMerge
from repro.workloads import (
    build_file,
    build_record_file,
    pattern_chunks,
    record_chunks,
    uniform_keys,
)


def full_scale() -> bool:
    """True when REPRO_FULL=1: run the paper's 10 MB configuration."""
    return os.environ.get("REPRO_FULL", "") == "1"


def default_blocks() -> int:
    """Bench workload size: 10 922 blocks (paper) or a CI-sized 1 MB."""
    from repro.analysis.models import PAPER_FILE_BLOCKS

    return PAPER_FILE_BLOCKS if full_scale() else 1092


def default_sort_records() -> int:
    # ~0.19x of the paper's file by default: small enough for CI, large
    # enough that per-pass file management doesn't drown the p = 32 rows.
    return default_blocks() if full_scale() else 2048


# ---------------------------------------------------------------------------
# E2: Table 2 — basic operations
# ---------------------------------------------------------------------------


def measure_table2(p: int, file_blocks: int = 256, seed: int = 0) -> Table2Measurement:
    """Measure Open/Read/Write/Create/Delete through the naive view."""
    system = paper_system(p, seed=seed)
    client = system.naive_client()
    sim = system.sim
    chunks = pattern_chunks(file_blocks)

    def body():
        # Create (timed)
        start = sim.now
        yield from client.create("t2")
        create_ms = (sim.now - start) * 1e3
        # Write (amortized per block)
        start = sim.now
        yield from client.write_all("t2", chunks)
        write_ms = (sim.now - start) * 1e3 / file_blocks
        # Open (timed, warm directory)
        start = sim.now
        yield from client.open("t2")
        open_ms = (sim.now - start) * 1e3
        # Read (amortized per block, includes per-LFS startup)
        start = sim.now
        while True:
            block, _data = yield from client.seq_read("t2")
            if block is None:
                break
        read_ms = (sim.now - start) * 1e3 / file_blocks
        # Delete (total)
        start = sim.now
        yield from client.delete("t2")
        delete_ms = (sim.now - start) * 1e3
        return open_ms, read_ms, write_ms, create_ms, delete_ms

    open_ms, read_ms, write_ms, create_ms, delete_ms = system.run(body())
    return Table2Measurement(
        p=p,
        file_blocks=file_blocks,
        open_ms=open_ms,
        read_ms_per_block=read_ms,
        write_ms_per_block=write_ms,
        create_ms=create_ms,
        delete_ms_total=delete_ms,
    )


# ---------------------------------------------------------------------------
# E3/E4: Table 3 — copy tool
# ---------------------------------------------------------------------------


def run_copy_experiment(p: int, blocks: Optional[int] = None, seed: int = 0) -> CopyRun:
    blocks = blocks if blocks is not None else default_blocks()
    system = paper_system(p, seed=seed)
    build_file(system, "big", pattern_chunks(blocks))
    tool = CopyTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("big", "big-copy"))

    result = system.run(body(), name="copy-experiment")
    return CopyRun(
        p=p,
        blocks=blocks,
        elapsed=result.elapsed,
        paper_seconds=PAPER_TABLE3_COPY_SECONDS.get(p),
    )


# ---------------------------------------------------------------------------
# E5/E6: Table 4 — sort tool
# ---------------------------------------------------------------------------


def run_sort_experiment(p: int, records: Optional[int] = None, seed: int = 0,
                        buffer_records: Optional[int] = None) -> SortRun:
    records = records if records is not None else default_sort_records()
    config = DEFAULT_CONFIG
    if buffer_records is not None:
        config = config.with_changes(sort_buffer_records=buffer_records)
    system = paper_system(p, seed=seed, config=config)
    build_record_file(system, "unsorted", uniform_keys(records, seed=seed))
    tool = SortTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("unsorted", "sorted"))

    result = system.run(body(), name="sort-experiment")
    return SortRun(
        p=p,
        records=records,
        local_sort_seconds=result.local_sort_time,
        merge_seconds=result.merge_time,
        total_seconds=result.total_time,
        paper_minutes=PAPER_TABLE4_SORT_MINUTES.get(p),
    )


# ---------------------------------------------------------------------------
# E10: the three views (and the virtual-parallelism lock-step penalty)
# ---------------------------------------------------------------------------


def run_views_experiment(p: int, blocks: Optional[int] = None, seed: int = 0,
                         network: str = "butterfly") -> ViewsRun:
    """Compare the three views on one file.

    ``network`` may be ``"butterfly"`` (shared-memory queues; the paper's
    prototype) or ``"ethernet"`` (a shared 10 Mb/s bus — the environment
    where section 1 says moving code to the data matters most).
    """
    blocks = blocks if blocks is not None else max(64, default_blocks() // 4)
    if network == "butterfly":
        system = paper_system(p, seed=seed)
    elif network == "ethernet":
        from repro.machine import EthernetNetwork
        from repro.storage import FixedLatency

        system = BridgeSystem(
            p,
            seed=seed,
            disk_latency=FixedLatency(0.015),
            network=EthernetNetwork,
        )
    else:
        raise ValueError(f"unknown network model {network!r}")
    build_file(system, "viewed", pattern_chunks(blocks))
    sim = system.sim
    client = system.naive_client()

    def naive():
        yield from client.open("viewed")
        start = sim.now
        while True:
            block, _data = yield from client.seq_read("viewed")
            if block is None:
                break
        return sim.now - start

    naive_seconds = system.run(naive(), name="naive-view")

    def parallel_open(worker_count):
        workers = [ParallelWorker(system.client_node, i) for i in range(worker_count)]
        drained = []

        def drain(worker):
            while True:
                delivery = yield from worker.receive()
                if delivery.eof:
                    return

        processes = [
            system.client_node.spawn(drain(w), name=f"drain{w.index}")
            for w in workers
        ]

        def controller_body():
            controller = JobController(system.client_node, system.bridge.port)
            yield from controller.open("viewed", [w.port for w in workers])
            start = sim.now
            rounds = -(-blocks // worker_count) + 1
            for _ in range(rounds):
                yield from controller.read()
            elapsed = sim.now - start
            from repro.sim import join_all

            yield join_all(processes)
            return elapsed

        return system.run(controller_body(), name="parallel-view")

    parallel_seconds = parallel_open(p)
    virtual_seconds = parallel_open(2 * p)

    tool = WordCountTool(system.client_node, system.bridge.port, system.config)

    def tool_view():
        result = yield from tool.run("viewed")
        return result.elapsed

    tool_seconds = system.run(tool_view(), name="tool-view")
    return ViewsRun(
        p=p,
        blocks=blocks,
        naive_seconds=naive_seconds,
        parallel_open_seconds=parallel_seconds,
        tool_seconds=tool_seconds,
        virtual_parallel_seconds=virtual_seconds,
    )


# ---------------------------------------------------------------------------
# E12: Bridge vs striping vs a single conventional FS
# ---------------------------------------------------------------------------


def run_striping_comparison(devices: int, blocks: Optional[int] = None,
                            seed: int = 0) -> StripingRun:
    blocks = blocks if blocks is not None else max(128, default_blocks() // 4)
    chunks = pattern_chunks(blocks)

    bridge = paper_system(devices, seed=seed)
    build_file(bridge, "cmp", chunks)
    tool = CopyTool(bridge.client_node, bridge.bridge.port, bridge.config)

    def bridge_body():
        return (yield from tool.run("cmp", "cmp-out"))

    bridge_seconds = bridge.run(bridge_body()).elapsed

    striped = StripedSystem(devices, seed=seed)
    striped.build_file("cmp", chunks)
    _n, striped_seconds = striped.copy_file("cmp", "cmp-out")

    sequential = SequentialSystem(seed=seed)
    src = sequential.build_file(chunks)
    sequential_seconds = sequential.copy_file(src).elapsed

    return StripingRun(
        devices=devices,
        blocks=blocks,
        bridge_tool_seconds=bridge_seconds,
        striped_seconds=striped_seconds,
        sequential_seconds=sequential_seconds,
    )


# ---------------------------------------------------------------------------
# E11: token saturation — one pair merge at growing width
# ---------------------------------------------------------------------------


def run_token_saturation(width: int, records: Optional[int] = None,
                         seed: int = 0) -> TokenSaturationRun:
    """Merge two pre-sorted width/2 files into one width-wide file."""
    if width < 2 or width % 2:
        raise ValueError("merge width must be even and >= 2")
    records = records if records is not None else max(128, default_blocks() // 8)
    system = paper_system(width, seed=seed)
    keys = sorted(uniform_keys(records, seed=seed))
    half = width // 2
    left_keys = keys[0::2]
    right_keys = keys[1::2]
    build_record_file(system, "left", left_keys,
                      node_slots=list(range(half)), start=0)
    build_record_file(system, "right", right_keys,
                      node_slots=list(range(half, width)), start=0)
    client = system.naive_client()

    def body():
        yield from client.create("merged", node_slots=list(range(width)), start=0)
        left = yield from client.open("left")
        right = yield from client.open("right")
        out = yield from client.open("merged")
        merge = PairMerge(system.client_node, system.config)
        stats = yield from merge.run(
            left.constituents, right.constituents, out.constituents,
            left.total_blocks + right.total_blocks,
        )
        return stats

    stats = system.run(body(), name="token-saturation")
    return TokenSaturationRun(width=width, records=stats.records,
                              elapsed=stats.elapsed)


# ---------------------------------------------------------------------------
# E8: create dispatch — sequential vs embedded binary tree
# ---------------------------------------------------------------------------


def run_create_tree_experiment(p: int, seed: int = 0,
                               batch: int = 8) -> CreateTreeRun:
    def create_ms(use_tree: bool) -> float:
        config = DEFAULT_CONFIG.with_changes(create_uses_tree=use_tree)
        system = paper_system(p, seed=seed, config=config)
        client = system.naive_client()

        def body():
            start = system.sim.now
            yield from client.create("probe")
            return (system.sim.now - start) * 1e3

        return system.run(body(), name="create-probe")

    def batched_per_file_ms() -> float:
        # The S23 arm: one mcreate of ``batch`` identically-shaped
        # files amortizes the fixed per-request charges; the tree
        # dispatch (the winner above) serves each create inside it.
        config = DEFAULT_CONFIG.with_changes(create_uses_tree=True)
        system = paper_system(p, seed=seed, config=config)
        client = system.naive_client()
        names = [f"probe{index}" for index in range(batch)]

        def body():
            start = system.sim.now
            outcomes = yield from client.mcreate(names)
            for outcome in outcomes:
                outcome.unwrap()
            return (system.sim.now - start) * 1e3 / len(names)

        return system.run(body(), name="create-batch")

    return CreateTreeRun(
        p=p, sequential_ms=create_ms(False), tree_ms=create_ms(True),
        batched_per_file_ms=batched_per_file_ms(),
    )


# ---------------------------------------------------------------------------
# E24: batched metadata ops vs per-name loops
# ---------------------------------------------------------------------------


def run_metadata_experiment(servers: int = 4, names: int = 256, seed: int = 0,
                            window: int = 0, lfs_count: int = 4):
    """One S23 ablation point: the same metadata-pure name family pushed
    through a per-name loop and through the batched surface.

    Both arms run on identical fresh fabrics (``servers`` partitions
    over ``lfs_count`` LFS, ``bridge_fanout_limit = window``) and walk
    the same four phases — create, open, stat, delete — over ``names``
    empty width-1 files.  Wall clock and the summed Bridge-Server
    ``requests_served`` delta are recorded per phase; the RPC counts
    must match :func:`repro.analysis.batched_rpc_count` exactly (the
    bench and tests assert equality, not shape).  Returns a
    :class:`~repro.harness.results.MetadataRun`.
    """
    from repro.analysis.models import (
        batched_rpc_count,
        metadata_partition_buckets,
    )
    from repro.harness.results import MetadataRun

    name_family = [f"meta/d{i % 16:02d}/f{i:05d}" for i in range(names)]
    config = DEFAULT_CONFIG.with_changes(bridge_fanout_limit=window)

    def run_arm(batched: bool):
        system = paper_system(lfs_count, seed=seed,
                              bridge_server_count=servers, config=config)
        client = system.partitioned_client()
        ms: Dict[str, float] = {}
        rpcs: Dict[str, int] = {}
        errors = 0

        def served() -> int:
            return sum(bridge.requests_served for bridge in system.bridges)

        def phase(op, body):
            before_ms = system.sim.now
            before_rpcs = served()
            result = system.run(body(), name=f"meta-{op}")
            ms[op] = (system.sim.now - before_ms) * 1e3
            rpcs[op] = served() - before_rpcs
            return result

        if batched:
            def create():
                return (yield from client.mcreate(name_family, width=1))

            def open_():
                return (yield from client.mopen(name_family))

            def stat():
                return (yield from client.mstat(name_family))

            def delete():
                return (yield from client.mdelete(name_family))

            for op, body in (("create", create), ("open", open_)):
                for outcome in phase(op, body):
                    if not outcome.ok:
                        errors += 1
            stats = []
            for outcome in phase("stat", stat):
                if outcome.ok:
                    stats.append(outcome.value)
                else:
                    errors += 1
            freed = 0
            for outcome in phase("delete", delete):
                if outcome.ok:
                    freed += outcome.value
                else:
                    errors += 1
        else:
            def create():
                for name in name_family:
                    yield from client.create(name, width=1)

            def open_():
                for name in name_family:
                    yield from client.open(name)

            def stat():
                results = []
                for name in name_family:
                    results.append((yield from client.stat(name)))
                return results

            def delete():
                total = 0
                for name in name_family:
                    total += yield from client.delete(name)
                return total

            phase("create", create)
            phase("open", open_)
            stats = phase("stat", stat)
            freed = phase("delete", delete)

        return ms, rpcs, stats, freed, errors

    loop_ms, loop_rpcs, loop_stats, loop_freed, loop_errors = run_arm(False)
    batch_ms, batch_rpcs, batch_stats, batch_freed, batch_errors = (
        run_arm(True)
    )

    def shape(stat):
        return (stat.name, stat.width, stat.start, stat.total_blocks)

    content_ok = (
        len(loop_stats) == len(batch_stats) == names
        and all(shape(a) == shape(b)
                for a, b in zip(loop_stats, batch_stats))
        and loop_freed == batch_freed
    )
    buckets = metadata_partition_buckets(name_family, servers)
    return MetadataRun(
        servers=servers,
        names=names,
        window=window,
        partitions_touched=len(buckets),
        model_per_name_rpcs=names,
        model_batched_rpcs=batched_rpc_count(name_family, servers,
                                             window=window),
        per_name_ms=loop_ms,
        batched_ms=batch_ms,
        per_name_rpcs=loop_rpcs,
        batched_rpcs=batch_rpcs,
        errors=loop_errors + batch_errors,
        content_ok=content_ok,
    )


# ---------------------------------------------------------------------------
# E13: fault tolerance
# ---------------------------------------------------------------------------


def run_redundancy_experiment(scheme: str, p: int = 4, blocks: Optional[int] = None,
                              seed: int = 0, victim: int = 1,
                              rebuild_rate: Optional[float] = None) -> RedundancyRun:
    """One redundancy scheme through the full S16 lifecycle.

    Write a file under ``scheme`` (``"none"``, ``"mirror"``, or
    ``"parity"``), measure its storage and device write traffic, read it
    healthy, fail one slot and read it degraded (content-verified against
    the healthy read), then repair and — for parity — run the online
    rebuild sweep and fsck every LFS image.
    """
    from repro.efs.fsck import check_system
    from repro.errors import DeviceFailedError, ProcessError

    blocks = blocks if blocks is not None else 4 * p
    system = paper_system(p, seed=seed, redundancy=scheme,
                          rebuild_rate=rebuild_rate)
    rfile = system.redundant_file("protected")
    chunks = pattern_chunks(blocks)
    writes_before = sum(d.writes for d in system.disks)

    def setup():
        yield from rfile.create()
        yield from rfile.write_all(chunks)
        return (yield from rfile.storage_blocks())

    storage = system.run(setup(), name="redundancy-setup")
    write_ops = sum(d.writes for d in system.disks) - writes_before

    def timed_read():
        start = system.sim.now
        read_chunks, stats = yield from rfile.read_all()
        return read_chunks, stats, system.sim.now - start

    healthy, _stats, healthy_elapsed = system.run(
        timed_read(), name="healthy-read"
    )

    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    injector = FaultInjector(system)
    victim = victim % p
    injector.fail_slot(victim)

    reconstruct_before = (
        rfile.read_stats.degraded if scheme == "parity" else 0
    )
    survived = True
    content_ok = False
    degraded_elapsed: Optional[float] = None
    reconstructions = 0
    try:
        degraded, dstats, degraded_elapsed = system.run(
            timed_read(), name="degraded-read"
        )
    except ProcessError as err:
        if not isinstance(err.__cause__, DeviceFailedError):
            raise
        survived = False
    else:
        content_ok = degraded == healthy
        if scheme == "parity":
            reconstructions = dstats.degraded - reconstruct_before
        elif scheme == "mirror":
            reconstructions = dstats.fallbacks

    # Repair; under parity the manager auto-spawns the online rebuild.
    repair_at = system.sim.now
    injector.repair_slot(victim)
    rebuild_seconds: Optional[float] = None
    rebuild_blocks = 0
    if scheme == "parity":
        system.sim.run()  # drain the rebuild sweep
        rebuild = system.redundancy.rebuilds[-1]
        rebuild_seconds = system.sim.now - repair_at
        rebuild_blocks = rebuild.progress.blocks_written

    final, _stats, _elapsed = system.run(timed_read(), name="final-read")
    content_ok = content_ok and final == healthy if survived else final == healthy
    fsck_clean = all(report.clean for report in check_system(system))

    return RedundancyRun(
        scheme=scheme,
        p=p,
        blocks=blocks,
        storage_blocks=storage,
        write_device_ops=write_ops,
        healthy_read_s_per_block=healthy_elapsed / blocks,
        degraded_read_s_per_block=(
            degraded_elapsed / blocks if survived else None
        ),
        degraded_reconstructions=reconstructions,
        survived=survived,
        content_ok=content_ok,
        rebuild_seconds=rebuild_seconds,
        rebuild_blocks=rebuild_blocks,
        fsck_clean=fsck_clean,
        cache_hits=sum(e.cache.hits for e in system.efs_servers),
        cache_misses=sum(e.cache.misses for e in system.efs_servers),
        cache_evictions=sum(e.cache.evictions for e in system.efs_servers),
        cache_writebacks=sum(e.cache.writebacks for e in system.efs_servers),
    )


def run_collective_experiment(
    p: int = 8,
    workers: Optional[int] = None,
    blocks: Optional[int] = None,
    accesses: Optional[int] = None,
    pattern: str = "strided",
    stride: Optional[int] = None,
    seed: int = 0,
) -> "CollectiveRun":
    """Noncontiguous-access ablation (S17): naive vs list I/O vs two-phase.

    ``t`` workers (default ``p``) share ``accesses`` single-block reads
    of one interleaved file, shaped by ``pattern`` (``"strided"``,
    ``"scatter"``, or ``"hotspot"``; see :mod:`repro.workloads.traces`).
    Three arms move the same bytes:

    * **naive** — one ``random_read`` RPC per access;
    * **list I/O** — each worker ships its whole pattern as one
      ``list_read``, decomposed into at most p batched EFS requests;
    * **two-phase** — workers exchange patterns, interleave-aligned
      aggregators issue one local batched request per touched LFS.

    EFS caches are flushed and invalidated between arms so each pays its
    own disk traffic.  The measured request/message counts are paired
    with the analytic model (:mod:`repro.analysis.models`) for
    equality checks, and ``content_ok`` records that all three arms
    returned byte-identical data.
    """
    from repro.analysis.models import (
        listio_rpc_count,
        naive_rpc_count,
        twophase_message_counts,
    )
    from repro.collective import TwoPhaseIO
    from repro.harness.results import CollectiveRun
    from repro.workloads.traces import (
        hotspot_pattern,
        scatter_pattern,
        strided_pattern,
    )

    workers = workers if workers is not None else p
    blocks = blocks if blocks is not None else max(64, 8 * p)
    accesses = accesses if accesses is not None else max(32, 4 * p)
    if pattern == "strided":
        stride = stride if stride is not None else max(2, blocks // accesses)
        count = min(accesses, max(1, (blocks - 1) // stride + 1))
        trace = strided_pattern(0, stride, count)
    elif pattern == "scatter":
        trace = scatter_pattern(blocks, min(accesses, blocks), seed=seed)
    elif pattern == "hotspot":
        trace = hotspot_pattern(blocks, accesses, seed=seed)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    # Round-robin split: worker w takes trace[w::t].
    per_worker = [trace[w::workers] for w in range(workers)]
    per_worker = [blocks_ for blocks_ in per_worker if blocks_]

    system = paper_system(p, seed=seed)
    build_file(system, "coll", pattern_chunks(blocks))
    client = system.naive_client()
    sim = system.sim
    efs_total = lambda: sum(s.requests_served for s in system.efs_servers)

    def flush_caches():
        for efs in system.efs_servers:
            system.run(efs.cache.flush(), name="flush")
            efs.cache.invalidate_all()

    def naive_arm():
        yield from client.open("coll")
        before = efs_total()
        start = sim.now
        data = []
        for worker_blocks in per_worker:
            worker_data = []
            for block in worker_blocks:
                worker_data.append(
                    (yield from client.random_read("coll", block))
                )
            data.append(worker_data)
        return data, sim.now - start, efs_total() - before

    flush_caches()
    naive_data, naive_s, naive_reqs = system.run(naive_arm(), name="naive-arm")

    def listio_arm():
        yield from client.open("coll")
        before = efs_total()
        start = sim.now
        data = []
        for worker_blocks in per_worker:
            data.append((yield from client.list_read("coll", worker_blocks)))
        return data, sim.now - start, efs_total() - before

    flush_caches()
    listio_data, listio_s, listio_reqs = system.run(
        listio_arm(), name="listio-arm"
    )

    def twophase_arm():
        engine = TwoPhaseIO(system, "coll")
        yield from engine.open()  # warm, like the other arms' open()
        before = efs_total()
        start = sim.now
        data, stats = yield from engine.read(per_worker)
        return data, sim.now - start, efs_total() - before, stats

    flush_caches()
    twophase_data, twophase_s, twophase_reqs, tp_stats = system.run(
        twophase_arm(), name="twophase-arm"
    )

    model_tp = twophase_message_counts(per_worker, p)
    return CollectiveRun(
        p=p,
        workers=len(per_worker),
        blocks=blocks,
        accesses=sum(len(b) for b in per_worker),
        distinct_blocks=len({b for wb in per_worker for b in wb}),
        pattern=pattern,
        naive_seconds=naive_s,
        naive_efs_requests=naive_reqs,
        listio_seconds=listio_s,
        listio_efs_requests=listio_reqs,
        twophase_seconds=twophase_s,
        twophase_efs_requests=twophase_reqs,
        exchange_messages=tp_stats.exchange_messages,
        redistribution_messages=tp_stats.redistribution_messages,
        model_naive_requests=sum(naive_rpc_count(b) for b in per_worker),
        model_listio_requests=sum(
            listio_rpc_count(b, p) for b in per_worker
        ),
        model_twophase_requests=model_tp["efs_requests"],
        model_redistribution_messages=model_tp["redistribution_messages"],
        content_ok=(listio_data == naive_data and twophase_data == naive_data),
    )


def run_faults_experiment(p: int = 4, blocks: int = 16, seed: int = 0) -> FaultsRun:
    from repro.errors import DeviceFailedError

    system = paper_system(p, seed=seed)
    build_file(system, "plain", pattern_chunks(blocks))
    mirrored = MirroredFile(system, "guarded")

    def setup():
        yield from mirrored.create()
        yield from mirrored.write_all(pattern_chunks(blocks))
        return (yield from mirrored.storage_blocks())

    mirror_storage = system.run(setup(), name="fault-setup")
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    FaultInjector(system).fail_slot(seed % p)

    client = system.naive_client()

    def read_plain():
        try:
            for block in range(blocks):
                yield from client.random_read("plain", block)
        except DeviceFailedError:
            return True  # lost
        return False

    plain_lost = system.run(read_plain(), name="fault-plain")

    def read_mirrored():
        chunks, stats = yield from mirrored.read_all()
        return len(chunks) == blocks, stats.fallbacks

    recovered, fallbacks = system.run(read_mirrored(), name="fault-mirrored")
    return FaultsRun(
        p=p,
        blocks=blocks,
        plain_lost=plain_lost,
        mirrored_recovered=recovered,
        mirror_fallbacks=fallbacks,
        mirror_storage_blocks=mirror_storage,
        plain_storage_blocks=blocks,
    )


# ---------------------------------------------------------------------------
# S18: Bridge-server caching and striped read-ahead
# ---------------------------------------------------------------------------


def _prefetch_arm(arm: str, p: int, blocks: int, seed: int,
                  prefetch_window: int, cache_blocks: int):
    """One configuration reading one file twice through the naive view."""
    system = paper_system(
        p, seed=seed,
        prefetch_window=prefetch_window,
        bridge_cache_blocks=cache_blocks,
    )
    build_file(system, "stream", pattern_chunks(blocks))
    client = system.naive_client()

    def one_pass():
        # Time only the streaming loop (Open's ~80 ms is Table 2's
        # business and identical across arms).
        yield from client.open("stream")
        start = system.sim.now
        chunks = []
        while True:
            block_number, data = yield from client.seq_read("stream")
            if block_number is None:
                return system.sim.now - start, chunks
            chunks.append(data)

    cold, cold_data = system.run(one_pass(), name=f"prefetch-{arm}-cold")
    repeat, repeat_data = system.run(one_pass(), name=f"prefetch-{arm}-repeat")
    stats = system.bridge.bridge_cache_stats() or {}
    return cold, repeat, cold_data, repeat_data, stats


def run_prefetch_experiment(p: int = 8, blocks: Optional[int] = None,
                            windows=(1, 2, 4), seed: int = 0):
    """The S18 ablation: cache off / cache only / read-ahead windows.

    Every arm streams the same ``blocks``-block file through the naive
    view twice; returns one :class:`PrefetchRun` per arm with the
    cache-off cold pass as the common baseline.  The "cache" arm sizes
    the cache to hold the whole file, so its *repeat* pass shows what an
    LRU alone buys (the cold pass is identical to "off" — there are no
    repeats to hit); the window arms show the read-ahead pipeline.
    """
    from repro.analysis.models import pipelined_read_seconds
    from repro.harness.results import PrefetchRun

    blocks = blocks if blocks is not None else 256
    arms = [("off", 0, 0), ("cache", 0, blocks)]
    arms += [(f"window-{w}", w, 0) for w in windows]
    baseline = None
    baseline_data = None
    runs = []
    for arm, window, cache_blocks in arms:
        cold, repeat, cold_data, repeat_data, stats = _prefetch_arm(
            arm, p, blocks, seed, window, cache_blocks
        )
        if baseline is None:
            baseline, baseline_data = cold, cold_data
        runs.append(
            PrefetchRun(
                arm=arm,
                p=p,
                blocks=blocks,
                prefetch_window=window,
                cache_blocks=stats.get("capacity", cache_blocks),
                elapsed=cold,
                repeat_seconds=repeat,
                baseline_seconds=baseline,
                content_ok=(
                    cold_data == baseline_data
                    and repeat_data == baseline_data
                ),
                model_seconds=(
                    pipelined_read_seconds(blocks, p, DEFAULT_CONFIG)
                    if window > 0 else None
                ),
                hits=stats.get("hits", 0),
                misses=stats.get("misses", 0),
                prefetch_issued=stats.get("prefetch_issued", 0),
                prefetch_used=stats.get("prefetch_used", 0),
                prefetch_wasted=stats.get("prefetch_wasted", 0),
                invalidations=stats.get("invalidations", 0),
            )
        )
    return runs


def _obs_stream_workload(system, name: str, blocks: int):
    """Create + write ``blocks``, then stream them back naively."""
    client = system.naive_client()
    yield from client.create(name, width=system.width)
    for i in range(blocks):
        yield from client.seq_write(name, bytes([i % 256]) * 960)
    yield from client.open(name)
    for _ in range(blocks):
        yield from client.seq_read(name)


def run_obs_experiment(p: int = 8, blocks: Optional[int] = None,
                       seed: int = 0):
    """The S19 headline: run the naive sequential stream bare and
    instrumented, check the event sequences match, and attribute the
    read latency per component against the exact cost model.

    Returns an :class:`~repro.harness.results.ObsRun`.  The file is
    sized to stay resident in the EFS track caches (the paper's cached
    9 ms regime), so the model's ``resident=True`` arm applies.
    """
    from repro.analysis.models import naive_read_components
    from repro.harness.results import ObsRun
    from repro.obs import attribute_ops

    blocks = blocks if blocks is not None else 32 * p
    name = "obsfile"

    bare = paper_system(p, seed=seed)
    bare.run(_obs_stream_workload(bare, name, blocks))

    instrumented = paper_system(p, seed=seed, obs=True)
    instrumented.run(_obs_stream_workload(instrumented, name, blocks))
    obs = instrumented.obs

    agg = attribute_ops(obs, "call.seq_read")
    return ObsRun(
        p=p,
        blocks=blocks,
        ops=agg["ops"],
        latency_seconds=agg["latency_seconds"],
        attribution_seconds=agg["attribution_seconds"],
        attribution_fractions=agg["attribution_fractions"],
        model_seconds=naive_read_components(blocks, resident=True),
        span_count=len(obs.spans),
        spans_dropped=obs.spans_dropped,
        disk_busy_fractions=obs.timeline.disk_busy_fractions(
            0.0, instrumented.sim.now
        ),
        events_obs_off=bare.sim.events_executed,
        events_obs_on=instrumented.sim.events_executed,
        elapsed_obs_off=bare.sim.now,
        elapsed_obs_on=instrumented.sim.now,
    )


# ---------------------------------------------------------------------------
# S21: open-loop production traffic
# ---------------------------------------------------------------------------


def build_traffic_catalog(system, files: int, blocks: int, skew: float = 1.1):
    """Create the popularity catalog: ``files`` files of ``blocks`` blocks.

    Runs during setup (simulation time advances); returns the
    :class:`~repro.traffic.ZipfCatalog` the generator samples from.
    """
    from repro.traffic import ZipfCatalog

    names = [f"tf{index:03d}" for index in range(files)]
    for name in names:
        chunks = [b"%s-%03d|" % (name.encode(), i) for i in range(blocks)]
        build_file(system, name, chunks)
    return ZipfCatalog(names, blocks, skew=skew)


def run_traffic_experiment(
    rate: float,
    duration: float = 4.0,
    policy: str = "none",
    p: int = 4,
    servers: int = 1,
    seed: int = 0,
    files: int = 24,
    blocks: int = 12,
    mix: Optional[Dict[str, float]] = None,
    arrival_kind: str = "poisson",
    patience: Optional[float] = None,
    slow_fraction: float = 0.0,
    skew: float = 1.1,
    admission_params: Optional[Dict[str, object]] = None,
    obs: bool = False,
):
    """One open-loop traffic run: build, drive, account (S21 headline).

    The system uses fast fixed-latency disks so the Bridge Server's
    serial per-request CPU is the bottleneck — saturation is a *server*
    phenomenon, which is what admission control protects.  The policy is
    installed only after the catalog is built (setup must not be
    rate-limited).  Returns a :class:`~repro.harness.results.TrafficRun`.
    """
    from repro.analysis.models import md1_wait_seconds, mm1_wait_seconds
    from repro.harness.results import TrafficRun
    from repro.storage import FixedLatency
    from repro.traffic import RequestMix, SLORecorder, TrafficGenerator

    system = BridgeSystem(
        p, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, obs=obs,
    )
    catalog = build_traffic_catalog(system, files, blocks, skew=skew)
    if policy not in (None, "none"):
        spec = {"policy": policy, **(admission_params or {})}
        system.install_admission(spec)

    registry = system.obs.metrics if system.obs is not None else None
    recorder = SLORecorder(registry=registry)
    generator = TrafficGenerator(
        system, catalog,
        mix=RequestMix(mix) if mix is not None else None,
        recorder=recorder,
        patience=patience,
        slow_fraction=slow_fraction,
    )

    served_before = sum(b.requests_served for b in system.bridges)
    busy_marks = [b.busy_time for b in system.bridges]
    busy_before = sum(busy_marks)
    start = system.sim.now
    system.run(
        generator.open_loop(rate, duration, arrival_kind=arrival_kind),
        name="traffic-source",
    )
    makespan = system.sim.now

    served_delta = sum(b.requests_served for b in system.bridges) - served_before
    busy_delta = sum(b.busy_time for b in system.bridges) - busy_before
    # Measured per-server service capacity: requests per busy-second of
    # the fabric (fast rejects included — they are served work too).
    service_rate = served_delta / busy_delta if busy_delta > 0 else 0.0
    window = makespan - start
    served_rate = served_delta / window if window > 0 else 0.0
    busiest = max(
        ((b.busy_time - mark) / window if window > 0 else 0.0
         for b, mark in zip(system.bridges, busy_marks)),
        default=0.0,
    )

    # Queue-wait statistics from installed admission queues (empty when
    # the policy has no queue or no policy is installed).
    waits = [
        b.admission.queue.wait for b in system.bridges
        if b.admission is not None and b.admission.queue is not None
    ]
    observed = [w for w in waits if w.count]
    if observed:
        wait_mean = sum(w.total for w in observed) / sum(w.count for w in observed)
        wait_p99 = max(w.p99 for w in observed)
    else:
        wait_mean = 0.0
        wait_p99 = 0.0
    peak_depth = max(
        (b.admission.queue.peak_depth for b in system.bridges
         if b.admission is not None and b.admission.queue is not None),
        default=0,
    )

    # Per-server offered rate for the queueing predictions: arrivals
    # that reached a server, spread across partitions.
    per_server_lambda = (served_delta / window / servers) if window > 0 else 0.0
    per_server_mu = service_rate  # requests per busy-second of one loop
    if per_server_mu > 0:
        predicted_mm1 = mm1_wait_seconds(
            min(per_server_lambda, per_server_mu * 0.999), per_server_mu
        )
        predicted_md1 = md1_wait_seconds(
            min(per_server_lambda, per_server_mu * 0.999), per_server_mu
        )
    else:
        predicted_mm1 = 0.0
        predicted_md1 = 0.0

    return TrafficRun(
        policy=policy or "none",
        p=p,
        servers=servers,
        offered_rate=rate,
        duration=duration,
        arrival_kind=arrival_kind,
        offered=generator.spawned,
        # Goodput and rates are measured over the *service window* —
        # arrivals plus the post-source drain — so an unprotected run
        # that queues half its work past the driving window cannot
        # report goodput above the server's physical capacity.
        summary=recorder.summary(window),
        admission=system.admission_counters(),
        served_rate=served_rate,
        service_rate=service_rate,
        server_utilization=busiest,
        queue_wait_mean=wait_mean,
        queue_wait_p99=wait_p99,
        queue_peak_depth=peak_depth,
        predicted_wait_mm1=predicted_mm1,
        predicted_wait_md1=predicted_md1,
        makespan=makespan,
        events=system.sim.events_executed,
    )


# ---------------------------------------------------------------------------
# S22: resize-under-load (elastic fabric)
# ---------------------------------------------------------------------------


def run_elastic_experiment(
    rate: float = 60.0,
    duration: float = 2.0,
    start_servers: int = 2,
    end_servers: int = 4,
    provisioned: Optional[int] = None,
    p: int = 4,
    seed: int = 0,
    files: int = 24,
    blocks: int = 12,
    mix: Optional[Dict[str, float]] = None,
    skew: float = 1.1,
    moves_per_second: Optional[float] = None,
    forward_window: Optional[float] = 0.25,
    policy: str = "none",
    admission_params: Optional[Dict[str, object]] = None,
    obs: bool = False,
):
    """One resize-under-load run: steady / resize-under-traffic / steady.

    Three equal arrival windows drive the same catalog with independent
    SLO recorders; the fabric resize (grow or shrink, by consistent-hash
    ring + live migration) is spawned at the start of the middle window,
    so its summary *is* the during-migration latency distribution.
    After the final window quiesces, the safety oracle runs: directory
    ownership is scanned against the live ring (lost / misrouted /
    duplicated counts), EFS fsck checks every LFS, and every catalog
    file is read back twice — once routed through the fabric, once
    reconstructed directly from the LFS blocks via each constituent's
    entry — and byte-compared.  Returns an
    :class:`~repro.harness.results.ElasticRun`.
    """
    from repro.efs.fsck import check_system
    from repro.harness.results import ElasticRun
    from repro.storage import FixedLatency
    from repro.traffic import RequestMix, SLORecorder, TrafficGenerator

    if provisioned is None:
        provisioned = max(start_servers, end_servers)
    system = BridgeSystem(
        p, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=start_servers, elastic=provisioned, obs=obs,
    )
    catalog = build_traffic_catalog(system, files, blocks, skew=skew)
    if policy not in (None, "none"):
        spec = {"policy": policy, **(admission_params or {})}
        system.install_admission(spec)

    registry = system.obs.metrics if system.obs is not None else None
    request_mix = RequestMix(mix) if mix is not None else None
    report_box: Dict[str, object] = {}

    def run_phase(label, with_resize=False):
        recorder = SLORecorder(registry=registry)
        generator = TrafficGenerator(
            system, catalog, mix=request_mix, recorder=recorder,
        )

        def driver():
            if with_resize:
                def resize():
                    report = yield from system.resize_fabric(
                        end_servers, moves_per_second=moves_per_second,
                        forward_window=forward_window,
                    )
                    report_box["report"] = report

                system.client_node.spawn(resize(), name="elastic.resize")
            result = yield from generator.open_loop(rate, duration)
            return result

        start = system.sim.now
        system.run(driver(), name=f"traffic-{label}")
        return recorder.summary(system.sim.now - start)

    phases = {
        "before": run_phase("before"),
        "during": run_phase("during", with_resize=True),
        "after": run_phase("after"),
    }
    report = report_box["report"]

    oracle = fabric_safety_oracle(system, list(catalog.names))

    return ElasticRun(
        direction=report.direction,
        p=p,
        start_servers=start_servers,
        end_servers=end_servers,
        provisioned=provisioned,
        offered_rate=rate,
        phase_duration=duration,
        files=files,
        planned=report.planned,
        moved=report.moved,
        vanished=report.vanished,
        forwarded=report.forwarded,
        disruption=report.plan.disruption,
        migration_seconds=report.duration,
        moves_per_second=moves_per_second,
        phases=phases,
        lost=oracle["lost"],
        misrouted=oracle["misrouted"],
        duplicated=oracle["duplicated"],
        content_mismatched=oracle["content_mismatched"],
        fsck_clean=oracle["fsck_clean"],
        makespan=system.sim.now,
        events=system.sim.events_executed,
    )


def fabric_safety_oracle(system, names: List[str]) -> Dict[str, object]:
    """The quiesced-fabric safety scan shared by the S22 and S24 runs.

    Scans every partition directory against the live ring (``lost`` /
    ``misrouted`` / ``duplicated`` counts), fscks every LFS image, and
    reads every named file back twice — routed through the fabric and
    reconstructed directly from the LFS blocks via each constituent's
    entry — byte-comparing the two.  Run it only after traffic (and any
    migration sweeps) have drained.
    """
    from repro.efs.fsck import check_system

    fabric = system.fabric
    locations: Dict[str, List[int]] = {}
    for index, bridge in enumerate(system.bridges):
        for name in bridge.directory.names():
            locations.setdefault(name, []).append(index)
    lost = sum(1 for name in names if name not in locations)
    duplicated = sum(1 for spots in locations.values() if len(spots) > 1)
    misrouted = sum(
        1 for name, spots in locations.items()
        if len(spots) == 1 and spots[0] != fabric.partition_of(name)
    )
    fsck_clean = all(r.clean for r in check_system(system))

    def readback():
        client = system.partitioned_client()
        efs = [system.efs_client(slot, node=system.client_node)
               for slot in range(system.width)]
        mismatched = 0
        for name in names:
            owner = fabric.server_for(name)
            if not owner.directory.exists(name):
                continue  # counted above as lost/misrouted
            entry = owner.directory.lookup(name)
            routed = yield from client.read_all(name)
            direct = []
            for block in range(entry.total_blocks):
                slot, local = entry.locate_block(block)
                result = yield from efs[entry.node_indexes[slot]].read(
                    entry.efs_file_numbers[slot], local
                )
                direct.append(result.data)
            if routed != direct:
                mismatched += 1
        return mismatched

    content_mismatched = system.run(readback(), name="fabric-verify")
    return {
        "lost": lost,
        "misrouted": misrouted,
        "duplicated": duplicated,
        "content_mismatched": content_mismatched,
        "fsck_clean": fsck_clean,
    }


# ---------------------------------------------------------------------------
# S24: load-aware rebalancing (heat-driven control plane)
# ---------------------------------------------------------------------------


def run_rebalance_experiment(
    rate: float = 140.0,
    duration: float = 16.0,
    servers: int = 4,
    p: int = 4,
    seed: int = 0,
    files: int = 32,
    blocks: int = 12,
    mix: Optional[Dict[str, float]] = None,
    skew: float = 1.6,
    active: bool = True,
    rebalance_config=None,
    moves_per_second: Optional[float] = None,
    forward_window: Optional[float] = 0.25,
    obs: bool = False,
):
    """One S24 arm: a Zipf-skewed S21 mix with the rebalancer on or off.

    Both arms install the heat map and run the control loop; with
    ``active=False`` the loop runs ``watch_only`` — it records the same
    sweep-by-sweep imbalance trajectory but never acts, so off-vs-on is
    the policy's effect and nothing else.  ``skew`` is deliberately
    steep: the point is a fabric whose hash placement is busy-unbalanced
    so the rebalancer has heat to move.  After traffic and the control
    loop drain, the S22 safety oracle (directory ownership scan, fsck,
    routed-vs-direct readback) must come back clean across however many
    sweeps acted.  Returns a :class:`~repro.harness.results.RebalanceRun`.
    """
    from repro.analysis.models import fabric_speedup_bound
    from repro.harness.results import RebalanceRun
    from repro.rebalance import RebalanceConfig
    from repro.storage import FixedLatency
    from repro.traffic import RequestMix, SLORecorder, TrafficGenerator

    if rebalance_config is None:
        config = RebalanceConfig(watch_only=not active)
    elif isinstance(rebalance_config, RebalanceConfig):
        config = rebalance_config
    else:
        config = RebalanceConfig(**{"watch_only": not active,
                                    **rebalance_config})

    system = BridgeSystem(
        p, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, rebalance=config, obs=obs,
    )
    catalog = build_traffic_catalog(system, files, blocks, skew=skew)
    names = list(catalog.names)
    # Zipf popularity weights (rank r -> 1/(r+1)^skew): the route bound
    # that matters is over the *offered* load, not the raw namespace.
    popularity = {
        name: 1.0 / (rank + 1) ** skew for rank, name in enumerate(names)
    }
    initial_ring = system.fabric.ring

    registry = system.obs.metrics if system.obs is not None else None
    recorder = SLORecorder(registry=registry)
    system.rebalancer.attach(recorder)
    generator = TrafficGenerator(
        system, catalog,
        mix=RequestMix(mix) if mix is not None else None,
        recorder=recorder,
    )

    busy_marks = [b.busy_time for b in system.bridges]
    request_marks = [b.requests_served for b in system.bridges]
    start = system.sim.now

    def driver():
        system.client_node.spawn(system.rebalancer.run(duration),
                                 name="rebalancer")
        result = yield from generator.open_loop(rate, duration)
        return result

    system.run(driver(), name="rebalance-traffic")
    window = system.sim.now - start

    busy_fractions = [
        (b.busy_time - mark) / window if window > 0 else 0.0
        for b, mark in zip(system.bridges, busy_marks)
    ][:servers]

    oracle = fabric_safety_oracle(system, names)
    final_ring = system.fabric.ring
    rebalancer = system.rebalancer

    return RebalanceRun(
        active=active and not config.watch_only,
        servers=servers,
        p=p,
        offered_rate=rate,
        duration=duration,
        files=files,
        skew=skew,
        sweeps=[record.to_dict() for record in rebalancer.records],
        actions=rebalancer.actions,
        moves=rebalancer.moves_applied,
        arcs_shed=sum(len(r.shed) for r in rebalancer.records
                      if r.action == "rebalance"),
        busy_fractions=busy_fractions,
        final_imbalance=system.heat.imbalance(system.sim.now,
                                              active=servers),
        route_bound_static=fabric_speedup_bound(
            names, servers, requests=popularity, ring=initial_ring
        ),
        route_bound_final=fabric_speedup_bound(
            names, servers, requests=popularity, ring=final_ring
        ),
        summary=recorder.summary(window),
        heat=system.heat.snapshot(system.sim.now),
        lost=oracle["lost"],
        misrouted=oracle["misrouted"],
        duplicated=oracle["duplicated"],
        content_mismatched=oracle["content_mismatched"],
        fsck_clean=oracle["fsck_clean"],
        makespan=system.sim.now,
        events=system.sim.events_executed,
    )


# ---------------------------------------------------------------------------
# E26: pluggable storage drivers and heterogeneous fabrics (S25)
# ---------------------------------------------------------------------------


def run_storage_driver_experiment(
    p: int,
    blocks: Optional[int] = None,
    seed: int = 0,
    storage=None,
    label: Optional[str] = None,
    heat_window: float = 240.0,
) -> StorageDriverRun:
    """E26: one storage fabric under the standard build + contended read.

    ``storage`` is any :func:`repro.storage.storage_specs` spec — one
    driver spec for a homogeneous fabric or a per-slot list for a
    heterogeneous one (``["ram", "ram", "ram", "object"]``).  The
    workload is fixed across arms so only the device layer varies:

    1. **build** — write a ``blocks``-block interleaved file through the
       naive view (serial, so it prices raw device write latency);
    2. **contended read** — a virtual-parallel job with ``2 * p``
       workers, two per constituent, so every device serves two
       concurrent streams and queueing (or, for the object store,
       overlapped in-flight transfers) becomes visible.

    An S24 :class:`~repro.rebalance.HeatMap` keyed by LFS slot is
    installed at the device layer (``attach_storage_heat``), so the run
    reports where the fabric's busy time actually went — on the
    3-fast/1-slow arm the slow slot's share is the attribution headline.
    ``heat_window`` must cover the whole run; shares are
    window-independent as long as it does.
    """
    # The read phase must actually touch the devices: size the file past
    # the per-LFS EFS block cache (LRU + sequential scan = full miss on
    # the re-read once the per-node share exceeds the cache).
    cache_floor = (5 * p * DEFAULT_CONFIG.efs_cache_blocks) // 4
    blocks = blocks if blocks is not None else max(
        cache_floor, default_blocks() // 4)
    if blocks * 4 < cache_floor * 3:
        raise ValueError(
            f"blocks={blocks} fits the per-LFS cache at p={p}; the "
            f"contended read would never reach the devices "
            f"(need >= {(cache_floor * 3 + 3) // 4})"
        )
    system = BridgeSystem(p, seed=seed, storage=storage)
    heat = HeatMap(p, window=heat_window, buckets=8, max_names=8)
    system.attach_storage_heat(heat)
    sim = system.sim

    build_start = sim.now
    build_file(system, "driven", pattern_chunks(blocks))
    build_seconds = sim.now - build_start

    ops_marks = [disk.total_operations for disk in system.disks]
    busy_marks = [disk.busy_time for disk in system.disks]

    worker_count = 2 * p
    workers = [ParallelWorker(system.client_node, i)
               for i in range(worker_count)]

    def drain(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return

    processes = [
        system.client_node.spawn(drain(w), name=f"drain{w.index}")
        for w in workers
    ]

    def controller_body():
        controller = JobController(system.client_node, system.bridge.port)
        yield from controller.open("driven", [w.port for w in workers])
        start = sim.now
        rounds = -(-blocks // worker_count) + 1
        for _ in range(rounds):
            yield from controller.read()
        elapsed = sim.now - start
        from repro.sim import join_all

        yield join_all(processes)
        return elapsed

    read_seconds = system.run(controller_body(), name="contended-read")

    from repro.storage import normalize_driver_spec

    normalized = [
        {"kind": f"factory:{getattr(spec, '__name__', 'callable')}"}
        if callable(spec) else normalize_driver_spec(spec)
        for spec in system.storage_specs
    ]
    if label is None:
        label = storage if isinstance(storage, str) else (
            "ram" if storage is None else "custom")
    return StorageDriverRun(
        label=label,
        p=p,
        blocks=blocks,
        storage=normalized,
        driver_kinds=[type(disk).kind for disk in system.disks],
        build_seconds=build_seconds,
        read_seconds=read_seconds,
        node_read_ops=[disk.total_operations - mark
                       for disk, mark in zip(system.disks, ops_marks)],
        node_read_busy=[disk.busy_time - mark
                        for disk, mark in zip(system.disks, busy_marks)],
        node_wait_ms_mean=[disk.wait_times.mean * 1000.0
                           for disk in system.disks],
        node_wait_ms_max=[
            (disk.wait_times.max if disk.wait_times.count else 0.0) * 1000.0
            for disk in system.disks
        ],
        node_service_ms_mean=[disk.service_times.mean * 1000.0
                              for disk in system.disks],
        heat_busy_rates=heat.partition_rates(sim.now),
        makespan=sim.now,
        events=sim.events_executed,
    )
