"""Result records for the reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Table2Measurement:
    """Measured basic-operation costs for one configuration (ms)."""

    p: int
    file_blocks: int
    open_ms: float
    read_ms_per_block: float
    write_ms_per_block: float
    create_ms: float
    delete_ms_total: float

    @property
    def delete_ms_per_block_per_lfs(self) -> float:
        blocks_per_lfs = max(1, self.file_blocks // self.p)
        return self.delete_ms_total / blocks_per_lfs


@dataclass
class CopyRun:
    """One copy-tool configuration (Table 3 row)."""

    p: int
    blocks: int
    elapsed: float
    paper_seconds: Optional[float] = None

    @property
    def records_per_second(self) -> float:
        return self.blocks / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class SortRun:
    """One sort-tool configuration (Table 4 row)."""

    p: int
    records: int
    local_sort_seconds: float
    merge_seconds: float
    total_seconds: float
    paper_minutes: Optional[Tuple[float, float, float]] = None

    @property
    def records_per_second(self) -> float:
        return self.records / self.total_seconds if self.total_seconds > 0 else 0.0


@dataclass
class ViewsRun:
    """Throughput of the three user views reading the same file."""

    p: int
    blocks: int
    naive_seconds: float
    parallel_open_seconds: float
    tool_seconds: float
    virtual_parallel_seconds: float  # t = 2p, the lock-step penalty case

    def as_throughput(self) -> Dict[str, float]:
        return {
            "naive": self.blocks / self.naive_seconds,
            "parallel-open": self.blocks / self.parallel_open_seconds,
            "tool": self.blocks / self.tool_seconds,
            "virtual(t=2p)": self.blocks / self.virtual_parallel_seconds,
        }


@dataclass
class StripingRun:
    """Copy/read comparison: Bridge tool vs striping vs one disk."""

    devices: int
    blocks: int
    bridge_tool_seconds: float
    striped_seconds: float
    sequential_seconds: float


@dataclass
class TokenSaturationRun:
    """One pair-merge at a given output width."""

    width: int
    records: int
    elapsed: float

    @property
    def records_per_second(self) -> float:
        return self.records / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class CreateTreeRun:
    """Create latency: sequential vs tree dispatch (plus, since S23,
    the per-file cost of one batched ``mcreate`` amortizing the fixed
    per-request charges over the whole batch)."""

    p: int
    sequential_ms: float
    tree_ms: float
    batched_per_file_ms: float = 0.0


@dataclass
class FaultsRun:
    """Fault-tolerance ablation outcome."""

    p: int
    blocks: int
    plain_lost: bool
    mirrored_recovered: bool
    mirror_fallbacks: int
    mirror_storage_blocks: int
    plain_storage_blocks: int


@dataclass
class CollectiveRun:
    """Noncontiguous-access ablation: naive vs list I/O vs two-phase (S17).

    ``t`` workers each hold a noncontiguous read pattern over one shared
    interleaved file.  The three arms move the same bytes; only the
    request structure differs.  EFS request counts are measured as
    ``requests_served`` deltas and paired with the analytic model's
    predictions so tests can assert exact equality.
    """

    p: int
    workers: int
    blocks: int  # file size
    accesses: int  # total accesses across workers (dups included)
    distinct_blocks: int
    pattern: str
    naive_seconds: float
    naive_efs_requests: int
    listio_seconds: float
    listio_efs_requests: int
    twophase_seconds: float
    twophase_efs_requests: int
    exchange_messages: int
    redistribution_messages: int
    model_naive_requests: int
    model_listio_requests: int
    model_twophase_requests: int
    model_redistribution_messages: int
    content_ok: bool

    @property
    def listio_speedup(self) -> float:
        return (
            self.naive_seconds / self.listio_seconds
            if self.listio_seconds > 0 else 0.0
        )

    @property
    def twophase_speedup(self) -> float:
        return (
            self.naive_seconds / self.twophase_seconds
            if self.twophase_seconds > 0 else 0.0
        )

    @property
    def model_exact(self) -> bool:
        """Measured message counts equal to the analytic model's."""
        return (
            self.naive_efs_requests == self.model_naive_requests
            and self.listio_efs_requests == self.model_listio_requests
            and self.twophase_efs_requests == self.model_twophase_requests
            and self.redistribution_messages
            == self.model_redistribution_messages
        )


@dataclass
class RedundancyRun:
    """One redundancy scheme (none/mirror/parity) through the full
    fail -> degraded -> repair -> rebuild lifecycle (S16)."""

    scheme: str
    p: int
    blocks: int
    storage_blocks: int
    write_device_ops: int  # device writes issued while writing the file
    healthy_read_s_per_block: float
    degraded_read_s_per_block: Optional[float]  # None: file lost
    degraded_reconstructions: int
    survived: bool  # single failure survived
    content_ok: bool  # degraded reads byte-identical to healthy ones
    rebuild_seconds: Optional[float]  # None: no rebuild needed/possible
    rebuild_blocks: int
    fsck_clean: bool
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_writebacks: int = 0

    @property
    def storage_factor(self) -> float:
        return self.storage_blocks / self.blocks if self.blocks else 0.0

    @property
    def write_ops_per_block(self) -> float:
        return self.write_device_ops / self.blocks if self.blocks else 0.0

    @property
    def degraded_slowdown(self) -> Optional[float]:
        if self.degraded_read_s_per_block is None:
            return None
        if self.healthy_read_s_per_block <= 0:
            return None
        return self.degraded_read_s_per_block / self.healthy_read_s_per_block


@dataclass
class PrefetchRun:
    """One S18 caching/read-ahead arm streaming one file (two passes).

    All arms read the same file with the same client loop; only the
    Bridge Server's cache/prefetch configuration differs.  ``elapsed``
    is the first (cold) sequential pass, ``repeat_seconds`` the second
    pass over the same file — the pass that isolates pure cache value
    when read-ahead is off.
    """

    arm: str  # "off", "cache", "window-1", ...
    p: int
    blocks: int
    prefetch_window: int
    cache_blocks: int
    elapsed: float
    repeat_seconds: float
    baseline_seconds: float  # the cache-off arm's cold pass
    content_ok: bool  # both passes byte-identical to the off arm
    model_seconds: Optional[float]  # closed-form pipelined prediction
    hits: int = 0
    misses: int = 0
    prefetch_issued: int = 0
    prefetch_used: int = 0
    prefetch_wasted: int = 0
    invalidations: int = 0

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def repeat_speedup(self) -> float:
        return (
            self.baseline_seconds / self.repeat_seconds
            if self.repeat_seconds > 0 else 0.0
        )

    @property
    def ms_per_block(self) -> float:
        return 1000.0 * self.elapsed / self.blocks if self.blocks else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ObsRun:
    """One observability experiment (S19): the naive read path measured
    by the critical-path analyzer and cross-checked against the exact
    cost model."""

    p: int
    blocks: int
    ops: int  # seq_read root spans analyzed
    latency_seconds: float  # summed root-span latency
    attribution_seconds: Dict[str, float]
    attribution_fractions: Dict[str, float]
    model_seconds: Dict[str, float]  # naive_read_components prediction
    span_count: int
    spans_dropped: int
    disk_busy_fractions: Dict[str, float]
    events_obs_off: int
    events_obs_on: int
    elapsed_obs_off: float  # final simulated clock, bare run
    elapsed_obs_on: float

    @property
    def partition_error(self) -> float:
        """|sum(attribution) - latency| / latency — zero by construction."""
        if self.latency_seconds <= 0:
            return 0.0
        return abs(
            sum(self.attribution_seconds.values()) - self.latency_seconds
        ) / self.latency_seconds

    @property
    def max_model_error(self) -> float:
        """Worst per-category relative error against the cost model."""
        worst = 0.0
        for category, predicted in self.model_seconds.items():
            if predicted <= 0:
                continue
            got = self.attribution_seconds.get(category, 0.0)
            worst = max(worst, abs(got - predicted) / predicted)
        return worst

    @property
    def event_sequence_identical(self) -> bool:
        return (
            self.events_obs_off == self.events_obs_on
            and self.elapsed_obs_off == self.elapsed_obs_on
        )


@dataclass
class TrafficRun:
    """One S21 open-loop traffic run against one admission policy arm.

    ``summary`` is the :class:`~repro.traffic.SLORecorder` dump —
    per-class offered/outcome counts and p50/p99/p999 latencies;
    ``admission`` the per-class server-side outcome counters (``None``
    for the no-policy arm); the ``queue_wait_*``/``predicted_wait_*``
    pairs are the measured-vs-M/M/1-vs-M/D/1 cross-check inputs.
    """

    policy: str
    p: int
    servers: int
    offered_rate: float  # requested arrival rate (requests/second)
    duration: float  # source window, simulated seconds
    arrival_kind: str
    offered: int  # arrivals actually generated
    summary: Dict[str, object]  # SLORecorder.summary(duration)
    admission: Optional[Dict[str, Dict[str, int]]]
    served_rate: float  # server-side admitted+completed per second
    service_rate: float  # measured per-server service capacity (req/s)
    server_utilization: float  # busiest partition's busy fraction
    queue_wait_mean: float  # measured scheduler queue delay (seconds)
    queue_wait_p99: float
    queue_peak_depth: int
    predicted_wait_mm1: float
    predicted_wait_md1: float
    makespan: float  # final simulated clock (source window + drain)
    events: int

    @property
    def goodput(self) -> float:
        return float(self.summary["goodput"])

    @property
    def completed(self) -> int:
        return int(self.summary["completed"])

    @property
    def refusal_rate(self) -> float:
        return float(self.summary["refusal_rate"])

    def class_quantile(self, cls: str, which: str) -> float:
        """Per-class latency quantile ("p50"/"p99"/"p999") from the dump."""
        return float(self.summary["classes"][cls][which])


@dataclass
class ElasticRun:
    """One S22 resize-under-load run (grow or shrink, traffic running).

    ``phases`` maps ``"before"`` / ``"during"`` / ``"after"`` to the
    per-phase :class:`~repro.traffic.SLORecorder` summary — the
    p99-during-migration vs steady-state comparison reads straight out
    of it.  The three ``lost`` / ``misrouted`` / ``content_mismatched``
    counts are the post-resize safety oracle: directory ownership
    scanned against the live ring, EFS fsck, and a byte-compare of every
    surviving file read through the fabric vs reconstructed directly
    from the LFS blocks.
    """

    direction: str  # "grow" | "shrink"
    p: int
    start_servers: int
    end_servers: int
    provisioned: int
    offered_rate: float
    phase_duration: float  # arrival window per phase, simulated seconds
    files: int
    planned: int  # moves in the resize plan
    moved: int
    vanished: int
    forwarded: int  # requests redirected by the double-read window
    disruption: float  # planned moves / namespace size
    migration_seconds: float  # ring flip -> window retired
    moves_per_second: Optional[float]
    phases: Dict[str, Dict[str, object]]  # phase -> SLO summary
    lost: int  # catalog names in no partition directory
    misrouted: int  # names owned by a partition the ring disagrees with
    duplicated: int  # names present in more than one directory
    content_mismatched: int  # routed read-back != direct LFS reconstruction
    fsck_clean: bool
    makespan: float
    events: int

    @property
    def files_intact(self) -> bool:
        return (self.lost == 0 and self.misrouted == 0
                and self.duplicated == 0 and self.content_mismatched == 0)

    def phase_quantile(self, phase: str, cls: str, which: str) -> float:
        """Per-phase per-class latency quantile from the SLO dump."""
        return float(self.phases[phase]["classes"][cls][which])

    def failed(self) -> int:
        """Hard failures summed across all three phases."""
        return sum(int(summary["failed"]) for summary in self.phases.values())


@dataclass
class MetadataRun:
    """One S23 batched-metadata ablation point (E24).

    Both arms drive the same empty-file name family through the same
    partitioned fabric — the per-name arm loops the singleton ops, the
    batched arm issues one ``m*`` call per phase — so the wall-clock
    ratio isolates the batching win and the RPC counters can be checked
    against :func:`repro.analysis.batched_rpc_count` for equality.
    """

    servers: int
    names: int
    window: int  # effective bridge_fanout_limit (0 = unbounded)
    partitions_touched: int
    model_per_name_rpcs: int
    model_batched_rpcs: int
    per_name_ms: Dict[str, float]  # op -> phase wall clock, ms
    batched_ms: Dict[str, float]
    per_name_rpcs: Dict[str, int]  # op -> observed server request delta
    batched_rpcs: Dict[str, int]
    errors: int
    content_ok: bool

    def speedup(self, op: str) -> float:
        batched = self.batched_ms[op]
        return self.per_name_ms[op] / batched if batched > 0 else float("inf")


@dataclass
class RebalanceRun:
    """One S24 arm: a skewed S21 mix with the rebalancer on or watching.

    ``sweeps`` is the control loop's decision log (one dict per
    :class:`~repro.rebalance.SweepRecord`: rates, imbalance, action,
    moves, cumulative per-class p99) — the off arm records the same
    trajectory with ``watch_only`` so on-vs-off isolates the policy's
    effect.  ``busy_fractions`` are the measured per-partition busy
    shares over the service window; their spread (hot minus cold) is the
    headline the E25 bench compares.  The safety counts are the shared
    S22 oracle, run after everything drains.
    """

    active: bool  # False = watch_only (heat + sweeps, no action)
    servers: int
    p: int
    offered_rate: float
    duration: float
    files: int
    skew: float  # Zipf skew of the offered catalog
    sweeps: List[Dict[str, object]]  # SweepRecord.to_dict() per sweep
    actions: int  # sweeps that applied a new ring
    moves: int  # entries migrated across all sweeps
    arcs_shed: int
    busy_fractions: List[float]  # per-partition busy share of the window
    final_imbalance: float  # heat-map peak/mean at drain time
    route_bound_static: float  # popularity-weighted, initial ring
    route_bound_final: float  # popularity-weighted, final ring
    summary: Dict[str, object]  # SLORecorder summary over the window
    heat: Dict[str, object]  # HeatMap.snapshot at drain time
    lost: int
    misrouted: int
    duplicated: int
    content_mismatched: int
    fsck_clean: bool
    makespan: float
    events: int

    @property
    def files_intact(self) -> bool:
        return (self.lost == 0 and self.misrouted == 0
                and self.duplicated == 0 and self.content_mismatched == 0)

    @property
    def utilization_spread(self) -> float:
        """Hot-minus-cold busy fraction across the active partitions."""
        return max(self.busy_fractions) - min(self.busy_fractions)

    @property
    def goodput(self) -> float:
        return float(self.summary["goodput"])

    def p99(self, cls: str) -> float:
        """Final cumulative p99 for one traffic class."""
        return float(self.summary["classes"][cls]["p99"])

    def p99_trajectory(self, cls: str) -> List[float]:
        """Cumulative p99 of ``cls`` sweep by sweep (0.0 before any
        completion)."""
        return [float(sweep["p99"].get(cls, 0.0)) for sweep in self.sweeps]


@dataclass
class StorageDriverRun:
    """One E26 arm: the standard build + contended-read workload on one
    storage fabric (S25).

    Every arm runs the identical logical workload — build an interleaved
    file through the naive view, then read it back through a
    virtual-parallel job with two workers per constituent so every
    device serves two concurrent streams — and differs only in the
    ``storage=`` spec handed to :class:`~repro.harness.builders.BridgeSystem`.
    ``node_*`` vectors are indexed by LFS slot.  The read-phase deltas
    (``node_read_ops`` / ``node_read_busy``) isolate the contended read;
    the wait/service summaries and the S24 heat rates cover the whole
    run (the build phase is serial, so its waits are ~0 on every arm and
    dilute all slots equally).
    """

    label: str
    p: int
    blocks: int
    storage: List[Dict[str, object]]  # normalized per-slot driver specs
    driver_kinds: List[str]  # registry kind per LFS slot
    build_seconds: float
    read_seconds: float
    node_read_ops: List[int]  # device ops per slot during the read
    node_read_busy: List[float]  # busy seconds per slot during the read
    node_wait_ms_mean: List[float]  # whole-run queueing wait, per slot
    node_wait_ms_max: List[float]
    node_service_ms_mean: List[float]  # whole-run service time, per slot
    heat_busy_rates: List[float]  # S24 HeatMap busy-seconds/s, per slot
    makespan: float
    events: int

    @property
    def read_blocks_per_second(self) -> float:
        return self.blocks / self.read_seconds if self.read_seconds > 0 else 0.0

    @property
    def node_busy_fractions(self) -> List[float]:
        """Busy fraction of the read window per slot (an object-store
        slot can exceed 1.0: overlapping in-flight transfers)."""
        if self.read_seconds <= 0:
            return [0.0] * len(self.node_read_busy)
        return [busy / self.read_seconds for busy in self.node_read_busy]

    @property
    def heat_busy_shares(self) -> List[float]:
        """Each slot's share of the fabric's total attributed busy time
        (sums to 1.0) — window-independent, so this is the headline the
        heterogeneous arm's attribution check reads."""
        total = sum(self.heat_busy_rates)
        if total <= 0:
            return [0.0] * len(self.heat_busy_rates)
        return [rate / total for rate in self.heat_busy_rates]

    @property
    def hottest_slot(self) -> int:
        """The slot the S24 heat map attributes the most busy time to."""
        shares = self.heat_busy_shares
        return shares.index(max(shares))
