"""System builders: assemble a complete simulated Bridge installation.

The canonical layout mirrors the paper's Figure 2: nodes ``0..p-1`` each
carry a disk and an LFS (EFS) instance; one extra node hosts the Bridge
Server; one more hosts client/controller processes (the "front end").
Tool workers are spawned onto the LFS nodes at run time, which is the
whole point of the tool interface.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core import (
    BridgeClient,
    BridgeServer,
    JobController,
    LFSHandle,
    PartitionedBridge,
    PartitionedClient,
    RelayServer,
)
from repro.efs import EFSClient, EFSServer
from repro.machine import Machine
from repro.sim import Simulator
from repro.storage import BlockStoreABC, make_driver, storage_specs


class BridgeSystem:
    """A fully wired Bridge installation on a simulated machine."""

    def __init__(
        self,
        lfs_count: int,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        disk_capacity_blocks: int = 65_536,
        disk_latency=None,
        storage=None,
        network=None,
        with_relays: bool = True,
        bridge_server_count: int = 1,
        redundancy: str = "none",
        rebuild_rate=None,
        prefetch_window: Optional[int] = None,
        bridge_cache_blocks: Optional[int] = None,
        obs=False,
        trace_export: Optional[str] = None,
        admission=None,
        elastic=None,
        rebalance=None,
    ) -> None:
        if lfs_count < 1:
            raise ValueError("a Bridge system needs at least one LFS node")
        if bridge_server_count < 1:
            raise ValueError("need at least one Bridge Server")
        # S22: ``elastic`` makes the fabric resizable online.  ``None``
        # (the default) is the rigid seed fabric — mod-k routing, no
        # extra nodes, byte-identical event sequence.  ``True`` routes
        # by consistent hash over ``bridge_server_count`` partitions
        # (shrinkable/regrowable in place); an int additionally
        # *provisions* that many server nodes up front so the fabric can
        # grow past its starting count (idle provisioned servers cost
        # nothing in the event sequence until the ring routes to them).
        self.elastic = elastic not in (None, False)
        # S24: ``rebalance`` installs the heat-driven control plane.
        # ``None``/``False`` (the default) runs without heat accounting or
        # a rebalancer — the seed event sequence exactly.  ``True`` uses
        # the default RebalanceConfig; a RebalanceConfig or a dict of its
        # fields overrides it.  Rebalancing steers the consistent-hash
        # ring, so it implies ``elastic`` (a rigid mod-k fabric has no
        # arcs to shed).
        self._rebalance_spec = rebalance if rebalance not in (None, False) else None
        if self._rebalance_spec is not None and not self.elastic:
            self.elastic = True
        provisioned = bridge_server_count
        if self.elastic and elastic not in (None, False, True):
            provisioned = int(elastic)
            if provisioned < bridge_server_count:
                raise ValueError(
                    f"elastic={provisioned} provisions fewer servers than "
                    f"bridge_server_count={bridge_server_count}"
                )
        self.config = config or DEFAULT_CONFIG
        # S18 knobs: override the config without forcing callers to build
        # a SystemConfig by hand.  Defaults (None) leave the config as-is,
        # which is cache-off / prefetch-off unless the config says else.
        overrides = {}
        if prefetch_window is not None:
            overrides["prefetch_window"] = prefetch_window
        if bridge_cache_blocks is not None:
            overrides["bridge_cache_blocks"] = bridge_cache_blocks
        if overrides:
            self.config = self.config.with_changes(**overrides)
        # S19 observability: ``obs=True`` attaches a fresh Observability,
        # ``obs=<instance>`` attaches a caller-provided one, ``obs=False``
        # (the default) runs bare — same event sequence either way.
        # ``trace_export`` names a Chrome-trace JSON file that run()
        # writes after each driver completes (implies obs).
        from repro.obs import Observability

        if obs is True or (obs is False and trace_export is not None):
            obs = Observability()
        elif obs is False:
            obs = None
        self.obs = obs
        self.trace_export = trace_export
        self.sim = Simulator(seed=seed, obs=obs)
        # ``network`` may be an instance or a factory taking the simulator
        # (e.g. ``EthernetNetwork`` itself, whose bus process needs the sim).
        if callable(network):
            network = network(self.sim)
        # p LFS nodes + k server nodes (provisioned) + 1 client node
        self.machine = Machine(
            self.sim,
            lfs_count + provisioned + 1,
            config=self.config,
            network=network,
        )
        self.lfs_nodes = [self.machine.node(i) for i in range(lfs_count)]
        self.server_nodes = [
            self.machine.node(lfs_count + i) for i in range(provisioned)
        ]
        self.server_node = self.server_nodes[0]
        self.client_node = self.machine.node(lfs_count + provisioned)

        # S25: every LFS node's device is built by the driver registry.
        # ``storage=`` takes one spec or a per-node list (heterogeneous
        # fabrics); unset, the default ``ram`` driver reproduces the seed
        # event sequence byte-for-byte.  ``disk_latency`` stays the
        # caller-level default for latency-model drivers.
        self.storage_specs = storage_specs(storage, lfs_count)
        self.disks: List[BlockStoreABC] = []
        self.efs_servers: List[EFSServer] = []
        self.relays: List[RelayServer] = []
        for node, spec in zip(self.lfs_nodes, self.storage_specs):
            disk = make_driver(
                spec, self.sim, name=f"disk{node.index}",
                capacity_blocks=disk_capacity_blocks,
                default_latency=disk_latency,
            )
            disk.heat_slot = node.index
            self.disks.append(disk)
            efs = EFSServer(node, disk, self.config)
            self.efs_servers.append(efs)
            if with_relays:
                self.relays.append(RelayServer(node, efs.port, self.config))

        handles = [LFSHandle(n.index, s.port) for n, s in zip(self.lfs_nodes, self.efs_servers)]
        relay_ports = [r.port for r in self.relays] if with_relays else None
        self.bridges = [
            BridgeServer(
                node, handles, self.config, relay_ports=relay_ports,
                name=f"bridge{index}" if index else "bridge",
                file_id_start=index + 1,
                file_id_step=len(self.server_nodes),
            )
            for index, node in enumerate(self.server_nodes)
        ]
        self.bridge = self.bridges[0]
        # S20: the partitioned fabric router.  Every surface (naive
        # clients, job controllers, tools, redundancy wrappers) accepts
        # it in place of a single server port; with one server it simply
        # routes everything to that server.  Elastic systems route by a
        # seeded consistent-hash ring over the *active* count instead of
        # the seed's mod-k map, so resizes move only the reassigned arcs.
        ring = None
        if self.elastic:
            from repro.elastic.ring import ConsistentHashRing

            ring = ConsistentHashRing(bridge_server_count, seed=seed)
        self.fabric = PartitionedBridge(self.bridges, ring=ring)

        # S24 load-aware rebalancing: heat accounting on every bridge
        # (a seam in the base server loop — no events scheduled) plus
        # the policy process, built but not started; experiments spawn
        # ``system.rebalancer.run(duration)`` next to their traffic.
        self.heat = None
        self.rebalancer = None
        if self._rebalance_spec is not None:
            from repro.rebalance import HeatMap, RebalanceConfig, Rebalancer

            spec = self._rebalance_spec
            if spec is True:
                rb_config = RebalanceConfig()
            elif isinstance(spec, RebalanceConfig):
                rb_config = spec
            elif isinstance(spec, dict):
                rb_config = RebalanceConfig(**spec)
            else:
                raise ValueError(
                    f"rebalance= takes True, a RebalanceConfig, or a dict "
                    f"of its fields, not {spec!r}"
                )
            self.heat = HeatMap(len(self.bridges))
            for index, bridge in enumerate(self.bridges):
                bridge.heat = self.heat
                bridge.heat_partition = index
            self.rebalancer = Rebalancer(self, self.heat, config=rb_config)

        # Redundancy scheme knob (S16): every experiment can run the same
        # workload unprotected, mirrored (2x), or parity-protected
        # (p/(p-1)x).  The manager also receives the fault injector's
        # fail/repair notifications and auto-starts online rebuilds.
        from repro.redundancy.manager import RedundancyManager

        self.redundancy = RedundancyManager(
            self, redundancy, rebuild_rate=rebuild_rate
        )

        # S21 admission control: ``None`` (the default) leaves every
        # server policy-free — the seed event sequence exactly.  A spec
        # (policy name or dict, see repro.traffic.build_admission) builds
        # one independent control per partition; experiments that must
        # not rate-limit their own setup instead call
        # ``install_admission`` after building their catalog.
        if admission is not None:
            self.install_admission(admission)

        if self.obs is not None:
            self._bind_observability()

    def install_admission(self, spec) -> None:
        """(Re)install an admission policy on every Bridge partition."""
        from repro.traffic.admission import build_admission

        for bridge in self.bridges:
            bridge.install_admission(build_admission(spec))

    def admission_counters(self):
        """Aggregated per-class admission outcomes across partitions
        (``None`` when no partition has a control installed)."""
        live = [b.admission for b in self.bridges if b.admission is not None]
        if not live:
            return None
        totals = {"offered": {}, "admitted": {}, "throttled": {}, "shed": {}}
        for control in live:
            for key, table in control.counters().items():
                bucket = totals[key]
                for cls, count in table.items():
                    bucket[cls] = bucket.get(cls, 0) + count
        return {key: dict(sorted(table.items()))
                for key, table in totals.items()}

    def _bind_observability(self) -> None:
        """Adopt component counters into the registry; tag disks with
        their owning node for span/export grouping."""
        registry = self.obs.metrics
        for disk, node in zip(self.disks, self.lfs_nodes):
            disk.obs_node = node.index
        for node, efs in zip(self.lfs_nodes, self.efs_servers):
            efs.cache.bind_metrics(registry, prefix=f"efs.{node.index}.cache")
        for bridge in self.bridges:
            if bridge._cache is not None:
                bridge._cache.bind_metrics(
                    registry, prefix=f"{bridge.name}.cache"
                )

    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """p: the number of LFS instances."""
        return len(self.efs_servers)

    def naive_client(self, node=None):
        """A naive-view client, by default on the front-end node.

        On a multi-server fabric this returns the partition-routed
        client (the full ``BridgeClient`` surface, routed by name), so
        every naive-view consumer — including the S16 redundancy
        wrappers — works unchanged at ``bridge_server_count > 1``.
        Elastic systems always route through the fabric (the owner of a
        name can change under a live resize)."""
        if len(self.bridges) > 1 or self.elastic:
            return self.partitioned_client(node)
        return BridgeClient(node or self.client_node, self.bridge.port)

    def partitioned_client(self, node=None) -> PartitionedClient:
        """A client routing by name across all Bridge Server partitions."""
        return PartitionedClient(node or self.client_node, self.fabric)

    def job_controller(self, node=None, name: str = "controller") -> JobController:
        """A parallel-view controller; partition-routed on a fabric."""
        return JobController(node or self.client_node, self.server_target(),
                             name=name)

    def server_target(self):
        """What to hand anything that takes a ``server_port``: the single
        server's port, or the fabric router at bridge_server_count > 1
        (tools and job controllers resolve partitions per name).
        Elastic systems always hand out the fabric."""
        if len(self.bridges) > 1 or self.elastic:
            return self.fabric
        return self.bridge.port

    def resize_fabric(self, new_count: int,
                      moves_per_second: Optional[float] = None,
                      forward_window: Optional[float] = 0.25):
        """Generator: resize the fabric to ``new_count`` active
        partitions while it serves traffic (S22).

        Drive it inside the running simulation — spawned next to a
        workload (``system.client_node.spawn(system.resize_fabric(4))``)
        or as its own driver (``system.run(system.resize_fabric(4))``).
        ``moves_per_second`` throttles the migration sweep;
        ``forward_window`` is how long old-route redirects stay up after
        the sweep.  Returns a
        :class:`~repro.elastic.migrate.MigrationReport`.
        """
        from repro.elastic.migrate import FabricResizer

        resizer = FabricResizer(self, moves_per_second=moves_per_second,
                                forward_window=forward_window)
        report = yield from resizer.resize(new_count)
        return report

    def redundant_file(self, name: str):
        """A file wrapper under this system's redundancy scheme: a
        :class:`~repro.redundancy.manager.PlainFile`,
        :class:`~repro.faults.mirror.MirroredFile`, or
        :class:`~repro.redundancy.parity.ParityFile`."""
        return self.redundancy.file(name)

    def efs_client(self, slot: int, node=None) -> EFSClient:
        """A direct EFS client for LFS ``slot`` (tool-style access)."""
        target = self.efs_servers[slot]
        return EFSClient(node or self.lfs_nodes[slot], target.port)

    def run(self, generator, name: str = "main"):
        """Spawn a driver process and run the simulation to completion.

        With ``trace_export`` set, the accumulated span tree is written
        as Chrome trace-event JSON after the driver finishes (each run
        overwrites the file with the trace so far)."""
        result = self.sim.run_process(generator, name=name)
        if self.trace_export is not None and self.obs is not None:
            from repro.obs import export_chrome_trace

            export_chrome_trace(self.obs, self.trace_export)
        return result

    # ------------------------------------------------------------------

    def attach_storage_heat(self, heat) -> None:
        """Install a :class:`~repro.rebalance.heat.HeatMap` keyed by LFS
        slot on every storage driver (S24-style busy attribution at the
        device layer; schedules no events)."""
        for slot, disk in enumerate(self.disks):
            disk.heat = heat
            disk.heat_slot = slot

    def total_disk_ops(self) -> int:
        return sum(d.total_operations for d in self.disks)

    def disk_utilizations(self) -> List[float]:
        return [d.utilization() for d in self.disks]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BridgeSystem(p={self.width}, now={self.sim.now:.3f}s)"


def build_system(lfs_count: int, **kwargs) -> BridgeSystem:
    """Convenience alias used throughout the examples and benches."""
    return BridgeSystem(lfs_count, **kwargs)


def paper_system(lfs_count: int, seed: int = 0, **kwargs) -> BridgeSystem:
    """The paper's configuration: 15 ms fixed-latency Wren-class disks.

    Since S25 that *is* the default driver spec
    (:data:`repro.storage.DEFAULT_ACCESS_TIME` through the ``ram``
    driver), so this is a named alias for the default build — ``storage=``
    and every other knob pass through."""
    return BridgeSystem(lfs_count, seed=seed, **kwargs)
