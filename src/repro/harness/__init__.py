"""Experiment harness: system builders, runners, and result records."""

from repro.harness.builders import BridgeSystem, build_system, paper_system
from repro.harness.results import CollectiveRun, ObsRun, TrafficRun

__all__ = [
    "BridgeSystem", "CollectiveRun", "ObsRun", "TrafficRun", "build_system",
    "paper_system",
]
