"""Experiment harness: system builders, runners, and result records."""

from repro.harness.builders import BridgeSystem, build_system, paper_system
from repro.harness.results import (
    CollectiveRun,
    ObsRun,
    RebalanceRun,
    TrafficRun,
)

__all__ = [
    "BridgeSystem", "CollectiveRun", "ObsRun", "RebalanceRun", "TrafficRun",
    "build_system", "paper_system",
]
