"""Experiment harness: system builders, runners, and result records."""

from repro.harness.builders import BridgeSystem, build_system, paper_system

__all__ = ["BridgeSystem", "build_system", "paper_system"]
