"""S19 observability subsystem: causal spans, metrics, timelines, profiling.

One :class:`Observability` instance attaches to a simulator (``sim.obs``)
and every instrumented layer records into it — synchronously, scheduling
zero extra simulation events, so an obs-enabled run executes the exact
event sequence of a bare run.  ``sim.obs is None`` (the default) skips
everything.

Quickstart::

    from repro.harness import paper_system
    from repro.obs import attribute_ops, export_chrome_trace

    system = paper_system(lfs_count=8, obs=True)
    system.run(my_workload(system))
    print(attribute_ops(system.sim.obs, "bridge.seq_read"))
    export_chrome_trace(system.sim.obs, "trace.json")  # load in Perfetto
"""

from repro.obs.critical import (
    attribute,
    attribute_ops,
    compare_to_model,
    critical_path,
    slowest_ops,
)
from repro.obs.export import (
    chrome_trace_document,
    diff_trace_documents,
    chrome_trace_events,
    export_chrome_trace,
    span_tree_lines,
    validate_trace_document,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import CATEGORIES, Observability, Span, SpanContext
from repro.obs.timeline import (
    DiskTimeline,
    NodeTraffic,
    QueueSamples,
    UtilizationTimeline,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "DiskTimeline",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeTraffic",
    "Observability",
    "QueueSamples",
    "Span",
    "SpanContext",
    "UtilizationTimeline",
    "attribute",
    "attribute_ops",
    "chrome_trace_document",
    "diff_trace_documents",
    "chrome_trace_events",
    "compare_to_model",
    "critical_path",
    "export_chrome_trace",
    "slowest_ops",
    "span_tree_lines",
    "validate_trace_document",
]
