"""Utilization timelines: who was busy when, and how deep the queues got.

Three harvests, all pull- or hook-based so the simulation schedules no
extra events:

* **disk busy segments** — every :class:`repro.storage.base.BlockStoreABC` driver
  reports each service interval as it completes; ``busy_fraction``
  integrates them over any window;
* **interconnect traffic** — per-node message/byte counts recorded from
  the ``Machine.send`` hook;
* **queue-depth samples** — :class:`repro.sim.resources.Resource` (and
  the disk queue) report depth at every acquire/release transition.

Sample streams are capped (keep-first, count-the-rest) so a long run
cannot grow memory without bound; the ``*_dropped`` counters make the
truncation visible instead of silent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Default cap on stored (time, depth) samples per queue.
DEFAULT_SAMPLE_CAPACITY = 100_000


class DiskTimeline:
    """Completed service intervals for one disk, in completion order."""

    __slots__ = ("segments", "ops", "busy_total")

    def __init__(self) -> None:
        self.segments: List[Tuple[float, float]] = []
        self.ops = 0
        self.busy_total = 0.0

    def record(self, start: float, end: float) -> None:
        self.segments.append((start, end))
        self.ops += 1
        self.busy_total += end - start

    def busy_fraction(self, start: float, end: float) -> float:
        """Fraction of [start, end] this disk spent servicing requests."""
        window = end - start
        if window <= 0.0:
            return 0.0
        busy = 0.0
        for seg_start, seg_end in self.segments:
            lo = max(seg_start, start)
            hi = min(seg_end, end)
            if hi > lo:
                busy += hi - lo
        return busy / window


class NodeTraffic:
    """Interconnect send/receive accounting for one node."""

    __slots__ = ("messages_sent", "bytes_sent", "messages_received",
                 "bytes_received")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.bytes_received = 0


class QueueSamples:
    """(time, depth) samples for one queue, capped at ``capacity``."""

    __slots__ = ("samples", "dropped", "capacity", "max_depth")

    def __init__(self, capacity: int = DEFAULT_SAMPLE_CAPACITY) -> None:
        self.samples: List[Tuple[float, int]] = []
        self.dropped = 0
        self.capacity = capacity
        self.max_depth = 0

    def record(self, time: float, depth: int) -> None:
        if depth > self.max_depth:
            self.max_depth = depth
        if len(self.samples) >= self.capacity:
            self.dropped += 1
            return
        self.samples.append((time, depth))

    def mean_depth(self) -> float:
        """Time-weighted mean depth over the sampled transition stream."""
        if len(self.samples) < 2:
            return float(self.samples[0][1]) if self.samples else 0.0
        weighted = 0.0
        span = self.samples[-1][0] - self.samples[0][0]
        if span <= 0.0:
            return float(self.samples[-1][1])
        for (t0, depth), (t1, _) in zip(self.samples, self.samples[1:]):
            weighted += depth * (t1 - t0)
        return weighted / span


class UtilizationTimeline:
    """The S19 timeline store: disks, node traffic, queue depths."""

    def __init__(self, sample_capacity: int = DEFAULT_SAMPLE_CAPACITY) -> None:
        self.disks: Dict[str, DiskTimeline] = {}
        self.nodes: Dict[int, NodeTraffic] = {}
        self.queues: Dict[str, QueueSamples] = {}
        self.sample_capacity = sample_capacity

    # -- hooks ---------------------------------------------------------

    def record_disk_busy(self, disk_name: str, start: float,
                         end: float) -> None:
        timeline = self.disks.get(disk_name)
        if timeline is None:
            timeline = self.disks[disk_name] = DiskTimeline()
        timeline.record(start, end)

    def record_message(self, src: int, dst: int, size: int,
                       time: float) -> None:
        sender = self.nodes.get(src)
        if sender is None:
            sender = self.nodes[src] = NodeTraffic()
        sender.messages_sent += 1
        sender.bytes_sent += size
        receiver = self.nodes.get(dst)
        if receiver is None:
            receiver = self.nodes[dst] = NodeTraffic()
        receiver.messages_received += 1
        receiver.bytes_received += size

    def record_queue_depth(self, name: str, time: float, depth: int) -> None:
        samples = self.queues.get(name)
        if samples is None:
            samples = self.queues[name] = QueueSamples(self.sample_capacity)
        samples.record(time, depth)

    # -- summaries -----------------------------------------------------

    def disk_busy_fractions(self, start: float,
                            end: float) -> Dict[str, float]:
        return {
            name: timeline.busy_fraction(start, end)
            for name, timeline in sorted(self.disks.items())
        }

    def snapshot(self, end: Optional[float] = None) -> Dict[str, object]:
        """Plain-data dump (deterministic ordering) for reports/JSON."""
        horizon = end
        if horizon is None:
            horizon = max(
                (seg[1] for tl in self.disks.values() for seg in tl.segments),
                default=0.0,
            )
        return {
            "disks": {
                str(index): {
                    "ops": tl.ops,
                    "busy_seconds": tl.busy_total,
                    "busy_fraction": tl.busy_fraction(0.0, horizon),
                }
                for index, tl in sorted(self.disks.items())
            },
            "nodes": {
                str(index): {
                    "messages_sent": traffic.messages_sent,
                    "bytes_sent": traffic.bytes_sent,
                    "messages_received": traffic.messages_received,
                    "bytes_received": traffic.bytes_received,
                }
                for index, traffic in sorted(self.nodes.items())
            },
            "queues": {
                name: {
                    "samples": len(q.samples),
                    "dropped": q.dropped,
                    "max_depth": q.max_depth,
                    "mean_depth": q.mean_depth(),
                }
                for name, q in sorted(self.queues.items())
            },
        }
