"""The metrics half of the observability subsystem (S19).

Three instrument kinds, all fully deterministic (no wall clock, no
sampling randomness):

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a last-value-wins float;
* :class:`Histogram` — a fixed-bucket latency histogram whose quantiles
  (p50/p95/p99) are interpolated from the bucket counts, so two
  identical runs produce byte-identical summaries.

Instruments live in a :class:`MetricsRegistry` under dotted component
namespaces (``bridge.op.seq_read``, ``efs.3.cache.hits``,
``disk0.service``).  Components may also *create instruments standalone*
and adopt them into a registry later — that is how the pre-S19 ad-hoc
cache counters (:mod:`repro.core.cache`, :mod:`repro.efs.cache`) keep
their public integer-attribute API while the registry observes the very
same objects.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency bucket upper bounds, in seconds.  Chosen to straddle
#: the cost model: sub-millisecond message/CPU charges at the bottom,
#: 15 ms disk accesses in the middle, multi-second tool phases on top.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0002, 0.0005, 0.001, 0.002, 0.005, 0.010, 0.015, 0.020, 0.030,
    0.050, 0.100, 0.200, 0.500, 1.0, 2.0, 5.0, 10.0, 30.0, 100.0,
)


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.value})"


class Gauge:
    """A last-value-wins float instrument (queue depths, cache sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket histogram with deterministic quantile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything larger.  ``quantile``
    interpolates linearly inside the winning bucket, which keeps the
    estimate deterministic and stable across runs — the point is
    comparing runs, not statistical perfection.
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError("histogram bounds must be a sorted, non-empty sequence")
        self.bounds: Tuple[float, ...] = chosen
        self.counts: List[int] = [0] * len(chosen)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1), interpolated within its bucket.

        The estimate is clamped to the observed ``[min, max]`` range:
        with few samples the in-bucket interpolation can wander past
        values that were ever recorded (one 1.5 ms sample in a
        [1, 2] ms bucket would report p999 ≈ 2 ms), and tail quantiles
        of a histogram must never exceed the largest observation.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        estimate = None
        for upper, bucket_count in zip(self.bounds, self.counts):
            if bucket_count:
                cumulative += bucket_count
                if cumulative >= target:
                    # Linear interpolation inside [lower, upper].
                    within = target - (cumulative - bucket_count)
                    estimate = lower + (upper - lower) * within / bucket_count
                    break
            lower = upper
        if estimate is None:
            # Landed in the overflow bucket: the observed maximum is the
            # only defensible point estimate.
            estimate = self.max if self.max is not None else self.bounds[-1]
        if self.min is not None and estimate < self.min:
            estimate = self.min
        if self.max is not None and estimate > self.max:
            estimate = self.max
        return estimate

    def quantiles(self, qs: Sequence[float]) -> Dict[float, float]:
        """Many quantiles at once: ``{q: estimate}`` for each q in ``qs``."""
        return {q: self.quantile(q) for q in qs}

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def bucket_snapshot(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs plus the overflow bucket."""
        snapshot = list(zip(self.bounds, self.counts))
        snapshot.append((float("inf"), self.overflow))
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram(n={self.count}, p50={self.p50:.6f})"


class MetricsRegistry:
    """A flat, name-ordered collection of instruments.

    Names are dotted component paths.  ``counter``/``gauge``/``histogram``
    get-or-create (so hot paths need no existence checks); ``adopt``
    registers an instrument created elsewhere — the compatibility facade
    for pre-existing component counters.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Counter()
            self._instruments[name] = instrument
        elif not isinstance(instrument, Counter):
            raise TypeError(f"{name!r} is a {type(instrument).__name__}, not a Counter")
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Gauge()
            self._instruments[name] = instrument
        elif not isinstance(instrument, Gauge):
            raise TypeError(f"{name!r} is a {type(instrument).__name__}, not a Gauge")
        return instrument

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(bounds)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"{name!r} is a {type(instrument).__name__}, not a Histogram"
            )
        return instrument

    def adopt(self, name: str, instrument) -> None:
        """Register an existing instrument under ``name`` (facade path)."""
        existing = self._instruments.get(name)
        if existing is not None and existing is not instrument:
            raise ValueError(f"metric {name!r} already registered")
        self._instruments[name] = instrument

    # ------------------------------------------------------------------

    def get(self, name: str):
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def items(self, prefix: str = "") -> Iterable[Tuple[str, object]]:
        for name in self.names(prefix):
            yield name, self._instruments[name]

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """A plain-data dump (deterministic ordering) for reports/JSON."""
        out: Dict[str, object] = {}
        for name, instrument in self.items(prefix):
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = instrument.value
            elif isinstance(instrument, Histogram):
                out[name] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "mean": instrument.mean,
                    "p50": instrument.p50,
                    "p95": instrument.p95,
                    "p99": instrument.p99,
                    "p999": instrument.p999,
                    # inf is not valid strict JSON: the overflow bucket's
                    # edge is rendered as None in snapshots.
                    "buckets": [
                        [None if bound == float("inf") else bound, count]
                        for bound, count in instrument.bucket_snapshot()
                    ],
                }
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry({len(self._instruments)} instruments)"
