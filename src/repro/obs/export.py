"""Chrome trace-event export: load span trees in Perfetto / chrome://tracing.

Emits the legacy JSON trace-event format (the one both Perfetto and
``chrome://tracing`` accept): a ``traceEvents`` array of complete
(``"ph": "X"``) events with microsecond timestamps.  Simulated nodes map
to *pids* and span categories to *tids*, so each node renders as a
process row with client / net / server / disk / queue tracks — a naive
read draws as a staircase Bridge -> LFS -> disk and back.

Span ancestry does not survive the flame rendering for spans that live
on different nodes, so every event's ``args`` carries ``span_id`` /
``parent_id``; the determinism tests reload the tree from those.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Track (tid) ordering within a node's process row.
_CATEGORY_TRACKS = {"client": 0, "server": 1, "disk": 2, "queue": 3, "net": 4}


def chrome_trace_events(obs) -> List[Dict[str, object]]:
    """Render an Observability's finished spans as trace-event dicts."""
    events: List[Dict[str, object]] = []
    for span in obs.spans:
        if span.end is None:
            continue
        args: Dict[str, object] = {
            "span_id": span.id,
            "parent_id": span.parent_id,
        }
        if span.background:
            args["background"] = True
        if span.args:
            args.update(span.args)
        pid = span.node if span.node is not None else 0
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": _CATEGORY_TRACKS.get(span.category, 9),
            "args": args,
        })
    return events


def chrome_trace_document(obs) -> Dict[str, object]:
    """The full JSON-object trace: events plus display metadata."""
    events = chrome_trace_events(obs)
    # Metadata events name the pid/tid rows in the viewer.
    nodes = sorted({e["pid"] for e in events})
    for pid in nodes:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"node {pid}"},
        })
        for category, tid in sorted(_CATEGORY_TRACKS.items(),
                                    key=lambda item: item[1]):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": category},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(obs.spans),
            "spans_dropped": obs.spans_dropped,
        },
    }


def export_chrome_trace(obs, path: str) -> str:
    """Write the trace JSON to ``path`` (deterministic bytes) and return it."""
    document = chrome_trace_document(obs)
    text = json.dumps(document, indent=1, sort_keys=True, allow_nan=False)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
    return path


def validate_trace_document(document: Dict[str, object]) -> List[str]:
    """Check a trace document against the trace-event schema basics.

    Returns a list of problems (empty means valid).  Used by the tests
    and the CI artifact step instead of shipping a JSON-schema dep.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"event {i}: unexpected phase {phase!r}")
            continue
        for key, kinds in (("name", str), ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), kinds):
                problems.append(f"event {i}: bad {key!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"event {i}: bad {key!r}")
    return problems


def diff_trace_documents(baseline: Dict[str, object],
                         candidate: Dict[str, object]) -> List[str]:
    """Span-for-span comparison of two exported trace documents.

    Returns an empty list when the traces are identical.  On drift it
    returns a report naming the first diverging span event and rendering
    the offending subtree from both documents, so a CI failure shows
    *where* in the request path the event sequence changed rather than
    just that it did.
    """
    base_events = [e for e in baseline.get("traceEvents", []) if e.get("ph") == "X"]
    cand_events = [e for e in candidate.get("traceEvents", []) if e.get("ph") == "X"]

    def key(event):
        return (event["name"], event["cat"], event["pid"], event["tid"],
                event["ts"], event["dur"], event["args"].get("parent_id"))

    first = None
    for index in range(min(len(base_events), len(cand_events))):
        if key(base_events[index]) != key(cand_events[index]):
            first = index
            break
    if first is None:
        if len(base_events) != len(cand_events):
            first = min(len(base_events), len(cand_events))
        elif baseline != candidate:
            return ["trace documents differ outside span events "
                    "(metadata / otherData)"]
        else:
            return []
    report = [
        f"span sequence drift at event index {first} "
        f"(baseline: {len(base_events)} spans, candidate: {len(cand_events)})"
    ]
    for label, events in (("baseline", base_events), ("candidate", cand_events)):
        report.append(f"--- offending subtree ({label}) ---")
        report.extend(_offending_subtree(events, first) or ["  <no span at this index>"])
    return report


def _offending_subtree(events: List[Dict[str, object]], index: int,
                       max_lines: int = 80) -> List[str]:
    """Render the root-anchored subtree containing ``events[index]``,
    marking the offending span with ``>>``."""
    if index >= len(events):
        return []
    by_id = {e["args"]["span_id"]: e for e in events}
    children: Dict[object, List[Dict[str, object]]] = {}
    for event in events:
        children.setdefault(event["args"].get("parent_id"), []).append(event)
    target = events[index]
    root = target
    while root["args"].get("parent_id") in by_id:
        root = by_id[root["args"]["parent_id"]]
    lines: List[str] = []

    def render(event, depth: int) -> None:
        if len(lines) >= max_lines:
            return
        marker = ">> " if event is target else "   "
        lines.append(
            f"{marker}{'  ' * depth}{event['name']} [{event['cat']}] "
            f"pid={event['pid']} ts={event['ts']:.3f} dur={event['dur']:.3f}"
        )
        for child in children.get(event["args"]["span_id"], ()):
            render(child, depth + 1)

    render(root, 0)
    if len(lines) >= max_lines:
        lines.append("   ... (subtree truncated)")
    return lines


def span_tree_lines(obs, root=None, max_depth: Optional[int] = None) -> List[str]:
    """ASCII rendering of a span tree, for reports and examples."""
    children = obs.children_index()

    def render(span, depth: int, out: List[str]) -> None:
        if max_depth is not None and depth > max_depth:
            return
        marker = " (bg)" if span.background else ""
        out.append(
            f"{'  ' * depth}{span.name} [{span.category}] "
            f"{span.start * 1e3:.3f}..{(span.end or span.start) * 1e3:.3f} ms"
            f"{marker}"
        )
        for child in children.get(span.id, ()):
            render(child, depth + 1, out)

    lines: List[str] = []
    roots = [root] if root is not None else obs.roots()
    for span in roots:
        render(span, 0, lines)
    return lines
