"""Causal spans: request-scoped trees of timed, attributed intervals.

A :class:`Span` is one interval of simulated time with a *category*
(``client`` / ``net`` / ``server`` / ``disk`` / ``queue``), an optional
owning node, and a parent — so one naive Bridge read produces a linked
tree: client op span -> request message -> Bridge Server handler -> EFS
handler -> disk access -> response message.  Span IDs come from a
monotonic counter (no wall clock, no RNG): two identical runs produce
byte-identical trees.

Causality crosses process and node boundaries via :class:`SpanContext`
objects carried on :class:`repro.machine.rpc.Request` envelopes, and
crosses *process spawns* via the per-process ``obs_ctx`` attribute that
:class:`Observability` maintains (a spawned process inherits the
spawner's current span; every scheduler step restores the stepping
process's context).  Nothing here schedules simulation events: with the
subsystem attached, the event sequence is identical to a run without it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import UtilizationTimeline

#: Attribution categories (others are allowed; these are the canonical set).
CATEGORIES = ("client", "net", "server", "disk", "queue")


class Span:
    """One timed interval in a causal tree.  Created via Observability."""

    __slots__ = (
        "id", "parent_id", "name", "category", "node",
        "start", "end", "args", "background",
    )

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 category: str, node: Optional[int], start: float,
                 background: bool = False) -> None:
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.args: Optional[Dict[str, Any]] = None
        self.background = background

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (
            f"Span(#{self.id} {self.name!r} cat={self.category} "
            f"[{self.start:.6f}, {end}])"
        )


class SpanContext:
    """Trace context carried on an RPC request envelope.

    ``span`` is the sender-side parent span; ``deliver_at`` is stamped by
    the interconnect instrumentation when the message's arrival time is
    known, so the receiver can attribute mailbox residency to *queueing*
    (delivered long before the server got to it) rather than to the
    network.
    """

    __slots__ = ("span", "sent_at", "deliver_at", "net_span")

    def __init__(self, span: Optional[Span]) -> None:
        self.span = span
        #: When the carrying message entered the network.
        self.sent_at: Optional[float] = None
        #: When it reaches the destination mailbox — stamped up front by
        #: networks that price transit at send time, or by
        #: :meth:`Observability.on_bus_drain` when a shared-medium model
        #: drains the frame.  None only while the frame is still queued.
        self.deliver_at: Optional[float] = None
        #: The pending ``msg`` span of a bus-queued frame, held until
        #: ``on_bus_drain`` can rewrite it with the exact wait/service
        #: breakdown.
        self.net_span: Optional[Span] = None


class Observability:
    """The S19 hub: spans + metrics + timelines for one simulation.

    Attach one instance to a :class:`~repro.sim.Simulator` (``sim.obs``);
    every instrumented layer guards with ``if sim.obs is not None`` so a
    detached run costs one branch per touch point and records nothing.

    ``capacity`` bounds the span list (a ring is pointless for causal
    trees, so overflow simply stops recording new spans and counts them
    in ``spans_dropped`` — the bound is a memory guard for very long
    simulations, not a sampling strategy).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.spans: List[Span] = []
        self.spans_dropped = 0
        self.capacity = capacity
        self.metrics = MetricsRegistry()
        self.timeline = UtilizationTimeline()
        #: The span context of the currently-stepping process (None when
        #: no span is active).  Maintained by Process._step and by the
        #: instrumented server loops; read at message-send/span-begin time.
        self.current: Optional[Span] = None
        #: The Process whose generator is currently being stepped, so
        #: in-process code (which has no handle to its own Process) can
        #: rebind its context via :meth:`set_current`.
        self.current_process = None
        self._next_span_id = 1
        self._sim = None

    def attach(self, sim) -> "Observability":
        self._sim = sim
        return self

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def begin(self, name: str, category: str,
              parent: Optional[Span] = None, *, inherit: bool = True,
              node: Optional[int] = None, start: Optional[float] = None,
              background: bool = False) -> Optional[Span]:
        """Open a span.  ``parent=None`` with ``inherit=True`` (the
        default) parents under the current context; pass ``inherit=False``
        to force a root span.  Returns ``None`` once ``capacity`` spans
        have been recorded (callers must tolerate a ``None`` span)."""
        if self.capacity is not None and len(self.spans) >= self.capacity:
            self.spans_dropped += 1
            return None
        if parent is None and inherit:
            parent = self.current
        span = Span(
            self._next_span_id,
            parent.id if parent is not None else None,
            name,
            category,
            node,
            self.now if start is None else start,
            background=background,
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Optional[Span], end: Optional[float] = None,
            **args: Any) -> None:
        """Close a span (no-op for ``None``, so callers need no guard)."""
        if span is None:
            return
        span.end = self.now if end is None else end
        if args:
            if span.args is None:
                span.args = {}
            span.args.update(args)

    def event(self, name: str, category: str, duration: float = 0.0,
              parent: Optional[Span] = None, node: Optional[int] = None,
              background: bool = False, **args: Any) -> Optional[Span]:
        """A complete span of known duration, opened and closed at once."""
        span = self.begin(name, category, parent, node=node,
                          background=background)
        if span is not None:
            self.end(span, end=span.start + duration, **args)
        return span

    # ------------------------------------------------------------------
    # Process context plumbing
    # ------------------------------------------------------------------

    def set_current(self, span: Optional[Span]) -> None:
        """Make ``span`` the current context *and* the stepping process's
        sticky context, so it survives the process's subsequent yields
        (every scheduler step restores ``current`` from the process).

        Used by server loops (per-request), clients (per-call), and the
        prefetcher's slot workers (per-fetch).
        """
        self.current = span
        if self.current_process is not None:
            self.current_process.obs_ctx = span

    def set_process_ctx(self, process, span: Optional[Span]) -> None:
        """Bind ``span`` to an explicit process (spawn-time propagation)."""
        process.obs_ctx = span

    # ------------------------------------------------------------------
    # Interconnect hook (called by Machine.send when attached)
    # ------------------------------------------------------------------

    def on_send(self, src_node, port, message: Any, size: int,
                latency: Optional[float]) -> None:
        """Record one message: a ``net`` span under the sender's current
        context, per-node traffic counts, and — when the message is an
        RPC envelope — trace-context propagation and arrival stamping."""
        src = src_node.index
        dst = port.node.index
        self.timeline.record_message(src, dst, size, self.now)
        # Propagate causality on anything that can carry it (Request
        # envelopes have a trace_ctx field; payload messages do not).
        ctx = getattr(message, "trace_ctx", False)
        if ctx is None and self.current is not None:
            ctx = SpanContext(self.current)
            message.trace_ctx = ctx
        span = self.event(
            "msg", "net",
            duration=latency if latency is not None else 0.0,
            node=src, src=src, dst=dst, size=size,
        )
        if ctx:
            ctx.sent_at = self.now
            if latency is not None:
                ctx.deliver_at = self.now + latency
        if span is not None and latency is None:
            # The network model could not price this message up front
            # (e.g. the Ethernet bus queues it); mark the span so the
            # analyzer treats it as a zero-width marker until the bus
            # drains the frame and on_bus_drain rewrites it.
            span.args["queued"] = True
            if ctx:
                ctx.net_span = span

    def on_bus_drain(self, message: Any, start: float, end: float) -> None:
        """Stamp the exact arrival time of a bus-queued message.

        Shared-medium models (:class:`repro.machine.network.EthernetNetwork`)
        cannot price a remote frame at send time; they call back here once
        the transmitter has drained it.  The frame's pending ``msg`` span
        is rewritten to cover ``[sent_at, end)`` with a wait/service
        breakdown — time queued behind the bus vs. time on the wire — so
        the critical-path analyzer splits transit between ``net`` and
        ``queue`` exactly, and ``deliver_at`` is stamped so receiver-side
        mailbox residency is attributed to queueing, not the network.
        """
        ctx = getattr(message, "trace_ctx", None)
        if ctx is None:
            return
        ctx.deliver_at = end
        span = ctx.net_span
        if span is None:
            return
        ctx.net_span = None
        sent = ctx.sent_at if ctx.sent_at is not None else start
        span.end = end
        if span.args is None:
            span.args = {}
        span.args.pop("queued", None)
        span.args["wait"] = max(0.0, start - sent)
        span.args["service"] = max(0.0, end - start)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def roots(self) -> List[Span]:
        """All parentless spans, in creation (= start) order."""
        return [s for s in self.spans if s.parent_id is None]

    def children_index(self) -> Dict[Optional[int], List[Span]]:
        """Map parent span id -> children in creation order."""
        index: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            index.setdefault(span.parent_id, []).append(span)
        return index

    def find(self, name_prefix: str) -> List[Span]:
        return [s for s in self.spans if s.name.startswith(name_prefix)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Observability({len(self.spans)} spans, "
            f"{len(self.metrics)} metrics)"
        )
