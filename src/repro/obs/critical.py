"""Critical-path analysis: where did this operation's latency go?

The analyzer walks one op's span tree and *partitions* the root interval
across attribution categories — disk, interconnect (net), server,
client, queueing.  Partitioning (rather than summing child durations)
is what makes the invariant hold by construction:

    sum(attribution.values()) == root.duration   (exactly)

Rules:

* a child span owns the sub-interval it covers, clipped to its parent's
  window and to the walk cursor (overlap is never double-counted);
* time inside a span not covered by any foreground child is *self time*
  and goes to the span's own category;
* ``background=True`` spans (prefetch fetches that overlap and outlive
  the demand path) are excluded from the partition — they still appear
  in exports, but attributing them would double-count wall time;
* a span carrying a wait/service breakdown in its args — disk accesses
  (time waiting for the arm) and Ethernet frames (time queued behind the
  shared bus) — has its self time split between its own category (the
  service share) and ``queue`` (the wait share).

The module cross-checks against :mod:`repro.analysis.models`: the exact
cost model predicts per-category totals for a steady-state naive read,
and :func:`compare_to_model` reports the relative error per category.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.obs.spans import CATEGORIES, Observability, Span


def attribute(obs: Observability, root: Span) -> Dict[str, float]:
    """Partition ``root``'s latency over categories; sums to its duration."""
    totals: Dict[str, float] = {category: 0.0 for category in CATEGORIES}
    children = obs.children_index()
    _walk(root, root.start, root.end if root.end is not None else root.start,
          children, totals)
    return totals


def _credit_self(span: Span, amount: float, totals: Dict[str, float]) -> None:
    """Credit a span's self time.

    A span stamped with a ``wait``/``service`` breakdown — disk accesses
    waiting for the arm, bus-queued messages waiting for the shared
    medium — splits its self time between its own category (the service
    share) and ``queue`` (the wait share)."""
    if amount <= 0.0:
        return
    if span.args:
        wait = span.args.get("wait")
        service = span.args.get("service")
        if wait is not None and service is not None and (wait + service) > 0.0:
            own_share = amount * service / (wait + service)
            totals[span.category] = totals.get(span.category, 0.0) + own_share
            totals["queue"] = totals.get("queue", 0.0) + (amount - own_share)
            return
    totals[span.category] = totals.get(span.category, 0.0) + amount


def _walk(span: Span, lo: float, hi: float,
          children: Dict[Optional[int], List[Span]],
          totals: Dict[str, float]) -> None:
    cursor = lo
    for child in children.get(span.id, ()):
        if child.background or child.end is None:
            continue
        child_lo = max(child.start, cursor)
        child_hi = min(child.end, hi)
        if child_hi <= child_lo:
            continue
        _credit_self(span, child_lo - cursor, totals)
        _walk(child, child_lo, child_hi, children, totals)
        cursor = child_hi
    _credit_self(span, hi - cursor, totals)


def attribute_ops(obs: Observability,
                  name_prefix: str = "") -> Dict[str, object]:
    """Aggregate attribution over every finished root span matching
    ``name_prefix`` (empty prefix = all roots)."""
    totals: Dict[str, float] = {category: 0.0 for category in CATEGORIES}
    latency = 0.0
    count = 0
    for root in obs.roots():
        if root.end is None or root.background:
            continue
        if name_prefix and not root.name.startswith(name_prefix):
            continue
        for category, seconds in attribute(obs, root).items():
            totals[category] = totals.get(category, 0.0) + seconds
        latency += root.duration
        count += 1
    return {
        "ops": count,
        "latency_seconds": latency,
        "attribution_seconds": totals,
        "attribution_fractions": {
            category: (seconds / latency if latency > 0.0 else 0.0)
            for category, seconds in totals.items()
        },
    }


def compare_to_model(measured: Dict[str, float],
                     predicted: Dict[str, float]) -> Dict[str, object]:
    """Per-category relative error of a measured attribution against an
    exact-model prediction (categories absent from the model are skipped)."""
    rows: Dict[str, object] = {}
    for category in sorted(set(measured) | set(predicted)):
        want = predicted.get(category)
        if want is None:
            continue
        got = measured.get(category, 0.0)
        error = (got - want) / want if want else (1.0 if got else 0.0)
        rows[category] = {
            "measured": got,
            "predicted": want,
            "relative_error": error,
        }
    return rows


def critical_path(obs: Observability, root: Span) -> List[Span]:
    """The chain of foreground spans covering the largest share of each
    level's window — the op's critical path, root first."""
    children = obs.children_index()
    path = [root]
    span = root
    while True:
        candidates = [
            child for child in children.get(span.id, ())
            if not child.background and child.end is not None
        ]
        if not candidates:
            return path
        span = max(candidates, key=lambda child: (child.duration, -child.id))
        path.append(span)


def slowest_ops(obs: Observability, name_prefix: str = "",
                limit: int = 5) -> List[Span]:
    """The ``limit`` slowest finished root spans matching ``name_prefix``."""
    roots = [
        root for root in obs.roots()
        if root.end is not None and not root.background
        and (not name_prefix or root.name.startswith(name_prefix))
    ]
    roots.sort(key=lambda span: (-span.duration, span.id))
    return roots[:limit]
