"""Central cost-model configuration for the simulated Butterfly.

Every timing constant the simulation charges lives here, with the
calibration rationale.  The paper (section 4.4) simulates its disks in RAM
with a fixed 15 ms sleep approximating a CDC Wren-class drive; the message
and CPU costs below are calibrated so that the *measured* Table 2 costs of
our reproduction land near the published formulas:

==========  =====================  =========================================
Operation   Paper (Table 2)        Where the cost comes from here
==========  =====================  =========================================
Read        9.0 + 500 p/n ms       track-buffered disk reads: one 15 ms miss
                                   per track + cheap buffer hits, plus EFS
                                   request CPU; per-LFS startup reads are
                                   amortized over n blocks
Write       31 ms                  write-through data block (15 ms) + tail
                                   pointer update (15 ms) + request CPU
Open        80 ms                  Bridge directory probe + parallel per-LFS
                                   path setup
Create      145 + 17.5 p ms        sequential per-LFS initiation on the
                                   Bridge Server, parallel LFS work
Delete      20 n/p ms              sequential per-block traversal-and-free
                                   on each LFS, all LFS in parallel
==========  =====================  =========================================

These are *shape* calibrations: our substrate is a simulator, not the
authors' Butterfly, so we target who-wins/what-scales rather than absolute
numbers (see EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

MS = 1e-3
US = 1e-6

#: Bytes per raw device block (paper section 4.3).
BLOCK_SIZE = 1024

#: Bytes of the original Cronus EFS block header.
EFS_HEADER_SIZE = 24

#: Additional Bridge header bytes taken from the data area (section 4.3).
BRIDGE_HEADER_SIZE = 40

#: Usable data bytes per block: 1024 - 24 - 40 = 960 (section 4.3).
DATA_BYTES_PER_BLOCK = BLOCK_SIZE - EFS_HEADER_SIZE - BRIDGE_HEADER_SIZE


@dataclass(frozen=True)
class MessageCosts:
    """Latency of message passing between simulated processes.

    On the Butterfly, messages are atomic queues in shared memory: cheap,
    and nearly distance-independent.  ``per_byte`` models the copy cost of
    a block transfer through the switch.
    """

    local_latency: float = 0.1 * MS
    remote_latency: float = 0.5 * MS
    per_byte: float = 0.25 * US  # ~4 MB/s block-copy path

    def latency(self, same_node: bool, size: int = 0) -> float:
        base = self.local_latency if same_node else self.remote_latency
        return base + size * self.per_byte


@dataclass(frozen=True)
class CpuCosts:
    """Per-request CPU charges for the 1988-era (~0.5 MIPS) node processors."""

    #: EFS request decode, directory hash, cache lookup.
    efs_request: float = 1.0 * MS
    #: Following one link while walking a file's block list (cache hit).
    efs_link_step: float = 0.2 * MS
    #: Serving a block read out of the cache/track buffer.
    efs_cache_hit: float = 1.0 * MS
    #: Free-list bookkeeping when allocating or freeing one block.
    efs_free_op: float = 3.0 * MS
    #: Bridge Server request decode + directory consult.
    bridge_request: float = 1.0 * MS
    #: Per-LFS sequential initiation work during Create (section 4.5 notes
    #: initiation/termination are sequential; calibrated to the 17.5 ms/LFS
    #: slope of Table 2).
    bridge_create_dispatch: float = 15.0 * MS
    #: Bridge directory probe during Open/Create (hash + entry fetch from
    #: the server's own metadata storage; calibrated so Open lands near
    #: Table 2's 80 ms).
    bridge_directory_probe: float = 70.0 * MS
    #: Persistent Bridge directory update (Create/Delete write the entry
    #: through to the server's metadata storage; two device writes).
    bridge_directory_update: float = 60.0 * MS
    #: Serving a naive-view block out of the Bridge Server's own block
    #: cache (S18): a hash probe and an LRU touch, no EFS message and no
    #: directory/metadata work — charged *instead of* ``bridge_request``
    #: on the hit path.
    bridge_cache_hit: float = 0.2 * MS
    #: Refusing a request at the admission stage (S21): decode the
    #: envelope, consult the policy, ship the typed error — no directory
    #: consult, no EFS traffic.  Cheap by design: shedding only protects
    #: the server if a reject costs far less than full service.
    bridge_fast_reject: float = 0.2 * MS
    #: Redirecting a misrouted request during an S22 live resize: decode
    #: the envelope, probe the forwarding table, re-send.  Only charged
    #: inside a migration's double-read window — never with elasticity
    #: off, so the seed event sequence is untouched.
    bridge_forward: float = 0.3 * MS
    #: Per-name work inside an S23 batched metadata op (``mopen`` /
    #: ``mstat`` / ``mcreate`` / ``mdelete``): one directory hash and
    #: entry touch.  A batch pays ``bridge_request`` and the
    #: ``bridge_directory_probe`` *once* — a single sweep of the server's
    #: metadata storage fetches every requested entry — so per-name cost
    #: drops from the full 71 ms decode+probe to this charge.  Never
    #: charged on the singleton paths, so the seed event sequence is
    #: untouched.
    bridge_batch_name: float = 2.0 * MS
    #: Tool worker per-record handling (format/compare/copy).
    tool_record: float = 1.0 * MS
    #: One key comparison during in-core sorting.
    compare: float = 40.0 * US
    #: Cost of creating a subprocess on a (possibly remote) node.
    spawn: float = 5.0 * MS


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration handed to the system builders."""

    messages: MessageCosts = field(default_factory=MessageCosts)
    cpu: CpuCosts = field(default_factory=CpuCosts)
    #: Blocks kept by the EFS block cache (per LFS instance).
    efs_cache_blocks: int = 64
    #: Consecutive blocks pulled in by one full-track read (section 4.3's
    #: full-track buffering; calibrated so sequential reads average ~9 ms).
    efs_track_buffer_blocks: int = 4
    #: In-core sort buffer, in records (paper section 5.2: c = 512).
    sort_buffer_records: int = 512
    #: Use an embedded binary tree for Create start-up/completion messages
    #: (section 4.5 suggests this as an improvement; off = paper behavior).
    create_uses_tree: bool = False
    #: Fan-out window for the Bridge Server's batched list-I/O gather: at
    #: most this many per-LFS batch requests are outstanding at once
    #: (0 = unbounded, fine at paper scale; bound it when p grows past
    #: what one server's mailbox should absorb in a burst).
    bridge_fanout_limit: int = 0  # 0 = unbounded
    #: Write-behind in the LFS (section 6 assumes read-ahead *and*
    #: write-behind for the naive view to become compute-bound).  Off by
    #: default: the measured prototype's 31 ms writes are write-through.
    #: When on, appends land in the cache and reach the device on eviction
    #: or flush; durability is traded for latency, exactly as in a real
    #: write-behind file system.
    efs_write_behind: bool = False
    #: S18 striped read-ahead window, in stripes: once the Bridge Server
    #: recognizes a sequential stream it keeps ``prefetch_window * p``
    #: blocks in flight or cached ahead of the reader (window 1 = one
    #: block per constituent, the geometry's natural unit).  0 disables
    #: read-ahead entirely — the seed configuration, reproducing the
    #: paper's serial naive path exactly.
    prefetch_window: int = 0
    #: Capacity of the Bridge Server's block cache, in blocks.  0 disables
    #: the cache (seed behavior) unless ``prefetch_window > 0``, in which
    #: case the builders auto-size it to ``4 * prefetch_window * p``.
    bridge_cache_blocks: int = 0

    def with_changes(self, **changes) -> "SystemConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)


DEFAULT_CONFIG = SystemConfig()
