"""List-I/O request descriptors (S17).

Bridge's three views move whole contiguous block runs, but the workloads
the paper targets — tools, the parallel sort, and every parallel-I/O
successor — are dominated by *noncontiguous* access: strided records,
scattered slots, many small requests.  Following Ching et al.'s
"Noncontiguous I/O through PVFS", a :class:`ListIORequest` describes an
arbitrary noncontiguous access as a list of ``(start, count)`` extents in
global block numbers.  The Bridge Server (``list_read``/``list_write``)
decomposes one descriptor per-LFS and ships it as *one* batched EFS
message per constituent, collapsing thousands of single-block RPCs into
at most ``p`` requests.

This module is pure arithmetic — descriptors, constructors, and the
per-LFS decomposition — exercised by unit tests without any simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.addressing import InterleaveMap


@dataclass(frozen=True)
class Extent:
    """One contiguous run of ``count`` blocks starting at ``start``."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"extent start must be >= 0, got {self.start}")
        if self.count < 1:
            raise ValueError(f"extent count must be >= 1, got {self.count}")

    @property
    def stop(self) -> int:
        """One past the last block of the extent."""
        return self.start + self.count

    def blocks(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))


class ListIORequest:
    """A noncontiguous access pattern: an ordered list of extents.

    The extent order is the *request order* — data moved by a list read
    or write is delivered in exactly this order, so a descriptor is a
    complete replacement for a sequence of single-block operations.
    Extents may touch the same block more than once (a re-read); the
    per-LFS decomposition deduplicates so each block crosses the wire
    once per batched request.
    """

    __slots__ = ("extents",)

    def __init__(self, extents: Iterable) -> None:
        normalized: List[Extent] = []
        for extent in extents:
            if isinstance(extent, Extent):
                normalized.append(extent)
            else:
                start, count = extent
                normalized.append(Extent(start, count))
        self.extents: Tuple[Extent, ...] = tuple(normalized)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def contiguous(cls, start: int, count: int) -> "ListIORequest":
        """A single contiguous run (degenerate but uniform case)."""
        return cls([Extent(start, count)])

    @classmethod
    def strided(cls, start: int, stride: int, count: int,
                run_length: int = 1) -> "ListIORequest":
        """``count`` runs of ``run_length`` blocks every ``stride`` blocks.

        The classic strided pattern: record ``i`` of a fixed-stride file
        layout lives at ``start + i * stride``.  ``stride`` must be at
        least ``run_length`` (runs may touch but not overlap).
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if run_length < 1:
            raise ValueError(f"run length must be >= 1, got {run_length}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if run_length > stride:
            raise ValueError(
                f"run length {run_length} overlaps the next run "
                f"(stride {stride})"
            )
        return cls(
            [Extent(start + i * stride, run_length) for i in range(count)]
        )

    @classmethod
    def vector(cls, offsets: Sequence[int], run_length: int = 1) -> "ListIORequest":
        """Runs of a common length at arbitrary offsets (MPI-style vector)."""
        if run_length < 1:
            raise ValueError(f"run length must be >= 1, got {run_length}")
        if not offsets:
            raise ValueError("vector request needs at least one offset")
        return cls([Extent(offset, run_length) for offset in offsets])

    @classmethod
    def from_blocks(cls, blocks: Sequence[int]) -> "ListIORequest":
        """Coalesce an ordered block list into maximal contiguous extents."""
        if not blocks:
            raise ValueError("block list must not be empty")
        extents: List[Extent] = []
        run_start = blocks[0]
        run_len = 1
        for block in blocks[1:]:
            if block == run_start + run_len:
                run_len += 1
            else:
                extents.append(Extent(run_start, run_len))
                run_start, run_len = block, 1
        extents.append(Extent(run_start, run_len))
        return cls(extents)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        """Blocks moved by the request (duplicates counted)."""
        return sum(extent.count for extent in self.extents)

    @property
    def max_block(self) -> int:
        """The highest global block touched."""
        return max(extent.stop - 1 for extent in self.extents)

    @property
    def min_block(self) -> int:
        return min(extent.start for extent in self.extents)

    def blocks(self) -> Iterator[int]:
        """Every global block in request order (duplicates preserved)."""
        for extent in self.extents:
            yield from extent.blocks()

    def block_list(self) -> List[int]:
        return list(self.blocks())

    def __len__(self) -> int:
        return len(self.extents)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ListIORequest) and self.extents == other.extents
        )

    def __hash__(self) -> int:
        return hash(self.extents)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        runs = ", ".join(f"{e.start}+{e.count}" for e in self.extents[:4])
        suffix = ", ..." if len(self.extents) > 4 else ""
        return f"ListIORequest([{runs}{suffix}], blocks={self.total_blocks})"

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------

    def decompose(self, interleave: InterleaveMap) -> Dict[int, List[int]]:
        """Per-LFS local block lists: ``{slot: sorted local blocks}``.

        Each slot's list is ascending and deduplicated — the shape a
        batched EFS request wants, so hint threading walks each
        constituent file strictly forward.
        """
        per_slot: Dict[int, set] = {}
        for block in self.blocks():
            slot, local = interleave.locate(block)
            per_slot.setdefault(slot, set()).add(local)
        return {slot: sorted(locals_) for slot, locals_ in per_slot.items()}

    def slots_touched(self, interleave: InterleaveMap) -> List[int]:
        """The LFS slots this request reaches (sorted)."""
        return sorted(self.decompose(interleave))


def coalesce_blocks(blocks: Sequence[int]) -> List[Extent]:
    """Maximal contiguous extents of an ascending block list.

    The EFS batch server uses this to count how many distinct *runs* a
    batched request decays into once sorted — adjacent blocks share
    track reads, so runs (not blocks) drive the device cost.
    """
    if not blocks:
        return []
    return list(ListIORequest.from_blocks(list(blocks)).extents)
