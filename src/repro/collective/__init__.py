"""Noncontiguous & collective I/O (S17): list I/O and two-phase access."""

from repro.collective.listio import (
    Extent,
    ListIORequest,
    coalesce_blocks,
)
from repro.collective.twophase import (
    DESCRIPTOR_BYTES_PER_BLOCK,
    CollectiveStats,
    TwoPhaseIO,
    as_block_lists,
    elect_aggregators,
)

__all__ = [
    "Extent",
    "ListIORequest",
    "coalesce_blocks",
    "DESCRIPTOR_BYTES_PER_BLOCK",
    "CollectiveStats",
    "TwoPhaseIO",
    "as_block_lists",
    "elect_aggregators",
]
