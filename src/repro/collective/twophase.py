"""Two-phase collective I/O (S17).

A job of ``t`` workers each holding a *noncontiguous* request pattern is
the worst case for per-block RPC: poorly aligned per-worker patterns turn
into thousands of tiny requests criss-crossing the interconnect.  The
two-phase scheme (cf. ViPIOS and ROMIO's collective buffering) fixes the
alignment first and moves data second:

* **Phase 1 — exchange & election.**  Workers exchange their request
  descriptors; one *aggregator* is elected per touched LFS slot, aligned
  to the interleave, and spawned *on that LFS node* (the tool-view trick:
  ship code to data).  Each aggregator receives the merged descriptor for
  its slot.
* **Phase 2 — aligned access & redistribution.**  Each aggregator issues
  exactly **one** batched ``read_blocks``/``write_blocks`` request to its
  *local* EFS — each LFS sees a single sorted run instead of t
  interleaved dribbles — and the data is redistributed between
  aggregators and workers over the interconnect, one sized message per
  (worker, slot) pair.

The result: ``A <= p`` EFS requests total (versus one per block), every
EFS request local to its disk, and all cross-machine traffic batched into
at most ``A * t`` sized messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.addressing import InterleaveMap
from repro.efs.client import EFSClient
from repro.errors import BridgeBadRequestError
from repro.machine import Client


#: Modeled wire bytes per block address in an exchanged request descriptor.
DESCRIPTOR_BYTES_PER_BLOCK = 8


@dataclass
class CollectiveStats:
    """Accounting of one collective operation."""

    workers: int
    aggregators: int
    blocks: int  # distinct global blocks moved
    efs_requests: int  # batched EFS requests issued (one per aggregator)
    exchange_messages: int  # phase-1 descriptor shipments
    redistribution_messages: int  # phase-2 (worker, slot) data messages
    bytes_redistributed: int
    elapsed: float


def as_block_lists(worker_patterns: Sequence) -> List[List[int]]:
    """Per-worker global block lists from ListIORequests / iterables."""
    lists = []
    for pattern in worker_patterns:
        if hasattr(pattern, "blocks"):
            lists.append(list(pattern.blocks()))
        else:
            lists.append(list(pattern))
    return lists


def elect_aggregators(
    interleave: InterleaveMap, per_worker_blocks: Sequence[Sequence[int]]
) -> Dict[int, Dict[int, List[int]]]:
    """The exchange outcome: ``{slot: {worker: [global blocks]}}``.

    One aggregator per touched slot, aligned to the interleave — the
    election rule that guarantees each LFS sees exactly one batched
    request.  Worker block lists keep request order (duplicates removed).
    """
    assignment: Dict[int, Dict[int, List[int]]] = {}
    for worker, blocks in enumerate(per_worker_blocks):
        seen = set()
        for block in blocks:
            if block in seen:
                continue
            seen.add(block)
            slot = interleave.slot_of(block)
            assignment.setdefault(slot, {}).setdefault(worker, []).append(block)
    return assignment


class TwoPhaseIO:
    """Two-phase collective reads/writes over one Bridge file.

    Create with a :class:`~repro.harness.builders.BridgeSystem` and a
    file name; drive :meth:`read` / :meth:`write` inside a simulated
    process.  The engine plays the job-controller role: it opens the file
    through the Bridge Server (structure only — block traffic never
    touches the central server), spawns aggregators on the LFS nodes, and
    collects the redistributed data for the workers.
    """

    def __init__(self, system, name: str, node=None) -> None:
        self.system = system
        self.name = name
        self.node = node or system.client_node
        self.machine = system.machine
        self._rpc = Client(self.node, f"twophase:{name}")
        self._opened = None

    # ------------------------------------------------------------------

    def open(self):
        """Open (or re-open) the file; caches the structural result so
        repeated collective calls don't re-pay the open (and its per-LFS
        info RPCs) every time."""
        client = self.system.naive_client(self.node)
        self._opened = yield from client.open(self.name)
        return self._opened

    def _ensure_open(self):
        if self._opened is None:
            yield from self.open()
        return self._opened

    # ------------------------------------------------------------------
    # Collective read
    # ------------------------------------------------------------------

    def read(self, worker_patterns: Sequence):
        """Collective read: one pattern per worker.

        Returns ``(per_worker_chunks, CollectiveStats)`` where
        ``per_worker_chunks[w]`` follows worker ``w``'s request order.
        """
        per_worker = as_block_lists(worker_patterns)
        if not per_worker:
            raise BridgeBadRequestError("collective read needs >= 1 worker")
        opened = yield from self._ensure_open()
        imap = InterleaveMap(opened.width, opened.start)
        for worker, blocks in enumerate(per_worker):
            for block in blocks:
                if not 0 <= block < opened.total_blocks:
                    raise BridgeBadRequestError(
                        f"{self.name!r}: worker {worker} requests block "
                        f"{block} outside file of {opened.total_blocks} blocks"
                    )
        sim = self.system.sim
        start = sim.now
        obs = sim.obs
        op_span = None
        prev = None
        if obs is not None:
            prev = obs.current
            op_span = obs.begin("collective_read", "client",
                                node=self.node.index)
            obs.set_current(op_span)
            obs.metrics.counter("collective.read").inc()
        assignment = elect_aggregators(imap, per_worker)
        # All redistribution messages land on one coordinator-owned port;
        # each carries its (slot, worker) origin, so the coordinator can
        # deliver to the right worker regardless of arrival order.
        collect_port = self.node.port("twophase.collect")
        exchange_messages = 0
        expected = 0
        phase1 = None
        if obs is not None:
            phase1 = obs.begin("exchange", "client", node=self.node.index)
            obs.set_current(phase1)
        for slot in sorted(assignment):
            constituent = opened.constituents[slot]
            lfs_node = self.machine.node(constituent.node_index)
            agg_port = lfs_node.port(f"twophase.agg{slot}")
            yield self.machine.spawn_remote(
                lfs_node,
                self._read_aggregator(
                    slot, constituent, imap, assignment[slot],
                    agg_port, collect_port,
                ),
                name=f"twophase.agg{slot}",
            )
            descriptor_blocks = sum(
                len(blocks) for blocks in assignment[slot].values()
            )
            self.node.send(
                agg_port, assignment[slot],
                size=DESCRIPTOR_BYTES_PER_BLOCK * descriptor_blocks,
            )
            exchange_messages += 1
            expected += len(assignment[slot])
        phase2 = None
        if obs is not None:
            obs.end(phase1)
            phase2 = obs.begin("redistribute", "client", parent=op_span,
                               inherit=False, node=self.node.index)
            obs.set_current(phase2)
        by_block: List[Dict[int, bytes]] = [dict() for _ in per_worker]
        bytes_redistributed = 0
        for _ in range(expected):
            _slot, worker, payload = yield collect_port.recv()
            for block, data in payload:
                by_block[worker][block] = data
                bytes_redistributed += len(data)
        if obs is not None:
            obs.end(phase2)
            obs.end(op_span, workers=len(per_worker),
                    aggregators=len(assignment))
            obs.set_current(prev)
        chunks = [
            [by_block[worker][block] for block in blocks]
            for worker, blocks in enumerate(per_worker)
        ]
        distinct = len({b for blocks in per_worker for b in blocks})
        stats = CollectiveStats(
            workers=len(per_worker),
            aggregators=len(assignment),
            blocks=distinct,
            efs_requests=len(assignment),
            exchange_messages=exchange_messages,
            redistribution_messages=expected,
            bytes_redistributed=bytes_redistributed,
            elapsed=sim.now - start,
        )
        return chunks, stats

    def _read_aggregator(self, slot, constituent, imap, slot_assignment,
                         agg_port, collect_port):
        """Aggregator body: one local batched read, then redistribute."""
        yield agg_port.recv()  # phase 1: the merged descriptor arrives
        lfs_node = self.machine.node(constituent.node_index)
        efs = EFSClient(lfs_node, constituent.lfs_port, name=f"agg{slot}")
        union_locals = sorted({
            imap.local_block(block)
            for blocks in slot_assignment.values()
            for block in blocks
        })
        batch = yield from efs.read_blocks(
            constituent.efs_file_number, union_locals,
            hint=constituent.head_addr,
        )
        by_local = {r.block_number: r.data for r in batch.results}
        for worker, blocks in sorted(slot_assignment.items()):
            payload = [
                (block, by_local[imap.local_block(block)]) for block in blocks
            ]
            lfs_node.send(
                collect_port,
                (slot, worker, payload),
                size=sum(len(data) for _block, data in payload),
            )

    # ------------------------------------------------------------------
    # Collective write
    # ------------------------------------------------------------------

    def write(self, worker_writes: Sequence[Sequence[Tuple[int, bytes]]]):
        """Collective write: per worker, a list of (global_block, data).

        In-place updates may scatter anywhere; appended blocks must form
        a dense run from the current end (the same no-sparse rule as the
        Bridge list write).  If two workers write the same block the
        higher-numbered worker wins — deterministic, unlike t racing
        single-block RPCs.  Returns ``(new_total_blocks,
        CollectiveStats)``.
        """
        per_worker = [list(writes) for writes in worker_writes]
        if not per_worker:
            raise BridgeBadRequestError("collective write needs >= 1 worker")
        opened = yield from self._ensure_open()
        imap = InterleaveMap(opened.width, opened.start)
        targets = {block for writes in per_worker for block, _data in writes}
        if not targets:
            return opened.total_blocks, CollectiveStats(
                len(per_worker), 0, 0, 0, 0, 0, 0, 0.0
            )
        if min(targets) < 0:
            raise BridgeBadRequestError(
                f"{self.name!r}: negative block in collective write"
            )
        new_total = max(opened.total_blocks, max(targets) + 1)
        missing = [
            block for block in range(opened.total_blocks, new_total)
            if block not in targets
        ]
        if missing:
            raise BridgeBadRequestError(
                f"{self.name!r}: collective write appends must be dense; "
                f"{len(missing)} blocks between the current end "
                f"({opened.total_blocks}) and {new_total - 1} are uncovered"
            )
        sim = self.system.sim
        start = sim.now
        obs = sim.obs
        op_span = None
        prev = None
        if obs is not None:
            prev = obs.current
            op_span = obs.begin("collective_write", "client",
                                node=self.node.index)
            obs.set_current(op_span)
            obs.metrics.counter("collective.write").inc()
        # Election over the write targets: {slot: {worker: [(global, data)]}}
        assignment: Dict[int, Dict[int, List[Tuple[int, bytes]]]] = {}
        for worker, writes in enumerate(per_worker):
            deduped: Dict[int, bytes] = {}
            for block, data in writes:
                deduped[block] = data  # last write of one worker wins
            for block, data in deduped.items():
                slot = imap.slot_of(block)
                assignment.setdefault(slot, {}).setdefault(worker, []).append(
                    (block, data)
                )
        done_port = self.node.port("twophase.write.done")
        exchange_messages = 0
        redistribution = 0
        bytes_redistributed = 0
        phase1 = None
        if obs is not None:
            phase1 = obs.begin("exchange", "client", node=self.node.index)
            obs.set_current(phase1)
        for slot in sorted(assignment):
            constituent = opened.constituents[slot]
            lfs_node = self.machine.node(constituent.node_index)
            agg_port = lfs_node.port(f"twophase.agg{slot}")
            senders = sorted(assignment[slot])
            yield self.machine.spawn_remote(
                lfs_node,
                self._write_aggregator(
                    slot, constituent, imap, len(senders), agg_port, done_port
                ),
                name=f"twophase.agg{slot}",
            )
            # Phase 1: each worker ships its slot-bound data to the
            # elected aggregator — one sized message per (worker, slot).
            for worker in senders:
                payload = assignment[slot][worker]
                size = sum(len(data) for _block, data in payload)
                self.node.send(agg_port, (worker, payload), size=size)
                redistribution += 1
                bytes_redistributed += size
            exchange_messages += 1
        phase2 = None
        if obs is not None:
            obs.end(phase1)
            phase2 = obs.begin("access", "client", parent=op_span,
                               inherit=False, node=self.node.index)
            obs.set_current(phase2)
        for _ in range(len(assignment)):
            yield done_port.recv()
        if obs is not None:
            obs.end(phase2)
            obs.end(op_span, workers=len(per_worker),
                    aggregators=len(assignment))
            obs.set_current(prev)
        # Appends happened behind the Bridge Server's back (tool-style
        # direct EFS access); re-open so the directory entry resyncs its
        # size from the constituents before anyone trusts it again.
        if new_total > opened.total_blocks:
            yield from self.open()
        stats = CollectiveStats(
            workers=len(per_worker),
            aggregators=len(assignment),
            blocks=len(targets),
            efs_requests=len(assignment),
            exchange_messages=exchange_messages,
            redistribution_messages=redistribution,
            bytes_redistributed=bytes_redistributed,
            elapsed=sim.now - start,
        )
        return new_total, stats

    def _write_aggregator(self, slot, constituent, imap, sender_count,
                          agg_port, done_port):
        """Aggregator body: collect worker data, one local batched write."""
        received: List[Tuple[int, List[Tuple[int, bytes]]]] = []
        for _ in range(sender_count):
            worker, payload = yield agg_port.recv()
            received.append((worker, payload))
        # Deterministic conflict rule regardless of arrival order: merge
        # in worker order, so the highest-numbered worker wins a block.
        merged: Dict[int, bytes] = {}
        for _worker, payload in sorted(received):
            for block, data in payload:
                merged[block] = data
        lfs_node = self.machine.node(constituent.node_index)
        efs = EFSClient(lfs_node, constituent.lfs_port, name=f"agg{slot}")
        writes = [
            (imap.local_block(block), merged[block])
            for block in sorted(merged)
        ]
        result = yield from efs.write_blocks(
            constituent.efs_file_number, writes, hint=constituent.head_addr
        )
        lfs_node.send(done_port, (slot, result.appended))
