"""The ``ram`` driver: the paper's RAM-simulated block device.

One :class:`SimulatedDisk` is a DES process serving a queue of block
requests one at a time (a single arm).  Service time comes from a latency
model (fixed 15 ms in paper mode).  Block contents are real bytes held in
memory — exactly the paper's approach of simulating 64 MB of "disk" in the
Butterfly's RAM (section 4.4).

Since S25 this is the *reference driver* of the storage kernel: the
queueing, span-stamping, and fault machinery live in
:class:`~repro.storage.base.SingleArmBlockStore`, and this class only
binds them to an in-memory block dict.  Register-by-name construction
goes through :func:`repro.storage.drivers.make_driver` (``"ram"``).

Fault injection (section 6's Murphy's-law discussion) is supported via
:meth:`~repro.storage.base.BlockStoreABC.fail`: a failed disk errors
every subsequent request, which is what makes an interleaved file system
lose *every* file when any one device dies.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.storage.base import SingleArmBlockStore
from repro.storage.parameters import DiskParameters


class SimulatedDisk(SingleArmBlockStore):
    """A single-arm RAM-backed block device with pluggable latency and
    scheduling — the ``ram`` driver."""

    kind = "ram"

    def __init__(
        self,
        sim,
        params: DiskParameters,
        latency_model=None,
        scheduler=None,
        name: Optional[str] = None,
        rng_stream: str = "disk",
    ) -> None:
        self.blocks: Dict[int, bytes] = {}
        super().__init__(
            sim, params, latency_model, scheduler=scheduler, name=name,
            rng_stream=rng_stream,
        )

    def _read_block(self, block: int) -> bytes:
        return self.blocks.get(block, b"\x00" * self.params.block_size)

    def _write_block(self, block: int, data: bytes) -> None:
        self.blocks[block] = data
