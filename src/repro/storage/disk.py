"""The simulated block device.

One :class:`SimulatedDisk` is a DES process serving a queue of block
requests one at a time (a single arm).  Service time comes from a latency
model (fixed 15 ms in paper mode).  Block contents are real bytes held in
memory — exactly the paper's approach of simulating 64 MB of "disk" in the
Butterfly's RAM (section 4.4).

Fault injection (section 6's Murphy's-law discussion) is supported via
:meth:`fail`: a failed disk errors every subsequent request, which is what
makes an interleaved file system lose *every* file when any one device
dies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BadBlockAddressError, DeviceFailedError
from repro.sim import Mailbox, Summary, Timeout
from repro.storage.parameters import DiskParameters, FixedLatency
from repro.storage.scheduler import FCFSScheduler


class _DiskRequest:
    __slots__ = ("op", "block", "data", "waiter", "enqueued_at", "result",
                 "error", "wait", "service")

    def __init__(self, op: str, block: int, data: Optional[bytes], now: float) -> None:
        self.op = op
        self.block = block
        self.data = data
        self.waiter = None
        self.enqueued_at = now
        self.result: Optional[bytes] = None
        self.error: Optional[Exception] = None
        # Stamped by the driver loop so the caller's observability span
        # can split its interval into queueing vs. arm service.
        self.wait: Optional[float] = None
        self.service: Optional[float] = None


class _Submit:
    """Waitable that parks the calling process until its request is served."""

    __slots__ = ("disk", "request")

    def __init__(self, disk: "SimulatedDisk", request: _DiskRequest) -> None:
        self.disk = disk
        self.request = request

    def _wait(self, process) -> None:
        self.request.waiter = process
        self.disk._pending.append(self.request)
        obs = self.disk.sim.obs
        if obs is not None:
            obs.timeline.record_queue_depth(
                f"{self.disk.name}.queue", self.disk.sim.now,
                len(self.disk._pending),
            )
        self.disk._wakeup.deliver(None)


class SimulatedDisk:
    """A single-arm block device with pluggable latency and scheduling."""

    def __init__(
        self,
        sim,
        params: DiskParameters,
        latency_model=None,
        scheduler=None,
        name: Optional[str] = None,
        rng_stream: str = "disk",
    ) -> None:
        self.sim = sim
        self.params = params
        self.latency = latency_model or FixedLatency(0.015)
        self.scheduler = scheduler or FCFSScheduler()
        self.name = name or params.name
        self.blocks: Dict[int, bytes] = {}
        self.head_position = 0
        self.failed = False
        self._pending: List[_DiskRequest] = []
        self._wakeup = Mailbox(sim, f"{self.name}.wakeup")
        self._rng = sim.random.stream(f"{rng_stream}.{self.name}")
        self.reads = 0
        self.writes = 0
        self.busy_time = 0.0
        self.wait_times = Summary(f"{self.name}.wait")
        self.service_times = Summary(f"{self.name}.service")
        # Node index for observability spans (disks have no node of their
        # own; the harness sets this to the owning LFS node).
        self.obs_node: Optional[int] = None
        sim.spawn(self._loop(), name=f"{self.name}.driver", daemon=True)

    # ------------------------------------------------------------------
    # Client API (generator style: value = yield from disk.read(addr))
    # ------------------------------------------------------------------

    def read(self, block: int):
        """Read one block; returns its bytes (zeros if never written)."""
        request = _DiskRequest("read", block, None, self.sim.now)
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.begin(f"{self.name}.read", "disk", node=self.obs_node)
        result = yield _Submit(self, request)
        if obs is not None:
            obs.end(span, block=block, wait=result.wait, service=result.service)
        if result.error is not None:
            raise result.error
        return result.result

    def write(self, block: int, data: bytes):
        """Write one block (data must not exceed the block size)."""
        request = _DiskRequest("write", block, bytes(data), self.sim.now)
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.begin(f"{self.name}.write", "disk", node=self.obs_node)
        result = yield _Submit(self, request)
        if obs is not None:
            obs.end(span, block=block, wait=result.wait, service=result.service)
        if result.error is not None:
            raise result.error
        return None

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Fail the device: all queued and future requests error."""
        self.failed = True
        self._wakeup.deliver(None)

    def repair(self) -> None:
        """Clear the failure flag (contents are preserved: a 'reconnect')."""
        self.failed = False

    # ------------------------------------------------------------------

    def _perform(self, request: _DiskRequest) -> None:
        if not 0 <= request.block < self.params.capacity_blocks:
            request.error = BadBlockAddressError(
                f"{self.name}: block {request.block} out of range "
                f"[0, {self.params.capacity_blocks})"
            )
            return
        if request.op == "read":
            self.reads += 1
            request.result = self.blocks.get(
                request.block, b"\x00" * self.params.block_size
            )
        else:
            if len(request.data) > self.params.block_size:
                request.error = BadBlockAddressError(
                    f"{self.name}: write of {len(request.data)} bytes exceeds "
                    f"block size {self.params.block_size}"
                )
                return
            self.writes += 1
            self.blocks[request.block] = request.data

    def _loop(self):
        sim = self.sim
        while True:
            if not self._pending:
                yield self._wakeup.recv()
                continue
            if self.failed:
                for request in self._pending:
                    request.error = DeviceFailedError(f"{self.name} has failed")
                    sim._schedule(0.0, request.waiter._resume, request)
                self._pending.clear()
                continue
            index = self.scheduler.select(self._pending, self.head_position)
            request = self._pending.pop(index)
            service, new_position = self.latency.access(
                self._rng, self.head_position, request.block, sim.now
            )
            wait = sim.now - request.enqueued_at
            request.wait = wait
            request.service = service
            self.wait_times.observe(wait)
            self.service_times.observe(service)
            obs = sim.obs
            if obs is not None:
                obs.timeline.record_queue_depth(
                    f"{self.name}.queue", sim.now, len(self._pending)
                )
                obs.metrics.histogram(f"{self.name}.service").observe(service)
                obs.metrics.histogram(f"{self.name}.wait").observe(wait)
            yield Timeout(service)
            self.busy_time += service
            if obs is not None:
                obs.timeline.record_disk_busy(self.name, sim.now - service, sim.now)
            self.head_position = new_position
            self._perform(request)
            sim._schedule(0.0, request.waiter._resume, request)

    # ------------------------------------------------------------------

    @property
    def total_operations(self) -> int:
        return self.reads + self.writes

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    def utilization(self) -> float:
        """Fraction of simulated time the arm was busy."""
        now = self.sim.now
        return self.busy_time / now if now > 0 else 0.0

    def load_image(self, blocks: Dict[int, bytes]) -> None:
        """Install block contents directly (test/bench setup, no time cost)."""
        for address, data in blocks.items():
            if not 0 <= address < self.params.capacity_blocks:
                raise BadBlockAddressError(f"image block {address} out of range")
            self.blocks[address] = bytes(data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedDisk({self.name!r}, ops={self.total_operations}, "
            f"queued={len(self._pending)})"
        )
