"""Simulated storage devices: disks, latency models, schedulers, arrays."""

from repro.storage.array import StorageArray
from repro.storage.disk import SimulatedDisk
from repro.storage.geometry import DiskGeometry
from repro.storage.parameters import (
    DiskParameters,
    FixedLatency,
    GeometricLatency,
    ramdisk,
    wren_fixed,
    wren_geometric,
)
from repro.storage.scheduler import (
    ElevatorScheduler,
    FCFSScheduler,
    SSTFScheduler,
    make_scheduler,
)

__all__ = [
    "DiskGeometry",
    "DiskParameters",
    "ElevatorScheduler",
    "FCFSScheduler",
    "FixedLatency",
    "GeometricLatency",
    "SSTFScheduler",
    "SimulatedDisk",
    "StorageArray",
    "make_scheduler",
    "ramdisk",
    "wren_fixed",
    "wren_geometric",
]
