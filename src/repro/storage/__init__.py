"""Simulated storage: the block-store kernel, registered drivers,
latency models, schedulers, and arrays."""

from repro.storage.array import StorageArray
from repro.storage.base import (
    BlockStoreABC,
    IOScheduler,
    LatencyModel,
    SingleArmBlockStore,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.drivers import (
    DRIVER_KINDS,
    make_driver,
    normalize_driver_spec,
    register_driver,
    storage_specs,
)
from repro.storage.geometry import DiskGeometry
from repro.storage.hostfs import HostFSDisk
from repro.storage.objectstore import ObjectStoreDisk, ObjectStoreLatency
from repro.storage.parameters import (
    DEFAULT_ACCESS_TIME,
    DiskParameters,
    FixedLatency,
    GeometricLatency,
    ramdisk,
    wren_fixed,
    wren_geometric,
)
from repro.storage.scheduler import (
    ElevatorScheduler,
    FCFSScheduler,
    SSTFScheduler,
    make_scheduler,
)

__all__ = [
    "BlockStoreABC",
    "IOScheduler",
    "LatencyModel",
    "DEFAULT_ACCESS_TIME",
    "DRIVER_KINDS",
    "DiskGeometry",
    "DiskParameters",
    "ElevatorScheduler",
    "FCFSScheduler",
    "FixedLatency",
    "GeometricLatency",
    "HostFSDisk",
    "ObjectStoreDisk",
    "ObjectStoreLatency",
    "SSTFScheduler",
    "SimulatedDisk",
    "SingleArmBlockStore",
    "StorageArray",
    "make_driver",
    "make_scheduler",
    "normalize_driver_spec",
    "ramdisk",
    "register_driver",
    "storage_specs",
    "wren_fixed",
    "wren_geometric",
]
