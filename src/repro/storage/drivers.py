"""The storage-driver registry: specs in, :class:`BlockStoreABC` out.

Every construction site in the reproduction — harness builders,
baselines, test harnesses — resolves its device through
:func:`make_driver`, so the set of available backends is a single
registry (:data:`DRIVER_KINDS`) instead of hard-coded class names.

A **spec** is any of:

* ``None`` — the default driver (``ram`` with the paper's 15 ms);
* a string — a registered kind with its defaults: ``"ram"``,
  ``"hostfs"``, ``"object"``;
* a dict — a kind plus per-driver fields, e.g.
  ``{"kind": "ram", "access_time": 0.001}``,
  ``{"kind": "hostfs", "root": "/tmp/blocks", "fsync": "always"}``,
  ``{"kind": "object", "first_byte": 0.05, "max_inflight": 8}``
  (``kind`` defaults to ``"ram"`` when omitted);
* a callable ``factory(sim, name, capacity_blocks) -> BlockStoreABC``
  — full custom construction (what third-party drivers use before
  registering a kind).

Unknown kinds and unknown fields raise :class:`ValueError` at
construction time — a misspelled spec never silently falls back to the
default device.

Per-driver fields
-----------------

``ram``     — ``access_time``, ``jitter``, ``latency`` (a model
              instance, overrides the former two), ``scheduler``
              (``"fcfs"``/``"sstf"``/``"elevator"``),
              ``capacity_blocks``.
``hostfs``  — ``root`` (required; blocks live in ``root/<name>/`` so
              one spec serves a whole fabric of named disks), ``fsync``
              (``"never"``/``"always"``), plus the ``ram`` latency and
              scheduler fields.
``object``  — ``first_byte``, ``bandwidth`` (bytes/s),
              ``max_inflight``, ``capacity_blocks``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Union

from repro.storage.base import BlockStoreABC
from repro.storage.disk import SimulatedDisk
from repro.storage.hostfs import FSYNC_POLICIES, HostFSDisk
from repro.storage.objectstore import (
    DEFAULT_BANDWIDTH,
    DEFAULT_FIRST_BYTE,
    DEFAULT_MAX_INFLIGHT,
    ObjectStoreDisk,
)
from repro.storage.parameters import DiskParameters, FixedLatency
from repro.storage.scheduler import make_scheduler

DriverSpec = Union[None, str, dict, Callable]

#: Default capacity when neither the caller nor the spec says: the
#: paper's 64 MB image.
DEFAULT_CAPACITY_BLOCKS = 65_536

_COMMON_FIELDS = frozenset({"kind", "capacity_blocks"})
_LATENCY_FIELDS = frozenset({"access_time", "jitter", "latency", "scheduler"})


def _resolve_latency(spec: dict, default_latency):
    """The latency model for a single-arm driver: an explicit model
    beats access_time/jitter fields, which beat the caller's default
    (``None`` falls through to ``DiskParameters.default_latency``)."""
    model = spec.get("latency")
    if model is not None:
        return model
    if "access_time" in spec or "jitter" in spec:
        kwargs = {}
        if "access_time" in spec:
            kwargs["access_time"] = spec["access_time"]
        if "jitter" in spec:
            kwargs["jitter"] = spec["jitter"]
        return FixedLatency(**kwargs)
    return default_latency


def _resolve_scheduler(spec: dict):
    scheduler = spec.get("scheduler")
    if scheduler is None or not isinstance(scheduler, str):
        return scheduler
    return make_scheduler(scheduler)


def _build_ram(sim, spec, name, capacity_blocks, default_latency):
    params = DiskParameters(
        name=name, capacity_blocks=spec.get("capacity_blocks", capacity_blocks)
    )
    return SimulatedDisk(
        sim, params, _resolve_latency(spec, default_latency),
        scheduler=_resolve_scheduler(spec), name=name,
    )


def _build_hostfs(sim, spec, name, capacity_blocks, default_latency):
    root = spec.get("root")
    if not root:
        raise ValueError(
            "hostfs driver spec requires a 'root' directory for its blocks"
        )
    fsync = spec.get("fsync", "never")
    if fsync not in FSYNC_POLICIES:
        raise ValueError(
            f"hostfs fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
        )
    params = DiskParameters(
        name=name, capacity_blocks=spec.get("capacity_blocks", capacity_blocks)
    )
    return HostFSDisk(
        sim, params, os.path.join(os.fspath(root), name),
        latency_model=_resolve_latency(spec, default_latency),
        scheduler=_resolve_scheduler(spec), name=name, fsync=fsync,
    )


def _build_object(sim, spec, name, capacity_blocks, default_latency):
    params = DiskParameters(
        name=name, capacity_blocks=spec.get("capacity_blocks", capacity_blocks)
    )
    return ObjectStoreDisk(
        sim, params,
        first_byte=spec.get("first_byte", DEFAULT_FIRST_BYTE),
        bandwidth=spec.get("bandwidth", DEFAULT_BANDWIDTH),
        max_inflight=spec.get("max_inflight", DEFAULT_MAX_INFLIGHT),
        name=name,
    )


#: kind -> (factory, allowed spec fields).  ``register_driver`` extends it.
DRIVER_KINDS: Dict[str, tuple] = {
    "ram": (_build_ram, _COMMON_FIELDS | _LATENCY_FIELDS),
    "hostfs": (_build_hostfs, _COMMON_FIELDS | _LATENCY_FIELDS
               | frozenset({"root", "fsync"})),
    "object": (_build_object, _COMMON_FIELDS
               | frozenset({"first_byte", "bandwidth", "max_inflight"})),
}


def register_driver(kind: str, factory, fields=frozenset()) -> None:
    """Register (or replace) a driver kind.

    ``factory(sim, spec, name, capacity_blocks, default_latency)`` must
    return a :class:`BlockStoreABC`; ``fields`` names the spec keys the
    factory understands beyond ``kind``/``capacity_blocks``.
    """
    DRIVER_KINDS[kind] = (factory, _COMMON_FIELDS | frozenset(fields))


def normalize_driver_spec(spec: DriverSpec) -> dict:
    """Canonicalize a spec to a validated ``{"kind": ..., ...}`` dict.

    Raises :class:`ValueError` on unknown kinds, non-spec values, and
    fields the kind's factory does not understand.
    """
    if spec is None:
        spec = {"kind": "ram"}
    elif isinstance(spec, str):
        spec = {"kind": spec}
    elif isinstance(spec, dict):
        spec = dict(spec)
        spec.setdefault("kind", "ram")
    else:
        raise ValueError(
            f"storage driver spec must be a kind name, a dict, or a "
            f"factory callable, not {spec!r}"
        )
    kind = spec["kind"]
    if not isinstance(kind, str) or kind not in DRIVER_KINDS:
        raise ValueError(
            f"unknown storage driver kind {kind!r}; registered kinds: "
            f"{sorted(DRIVER_KINDS)}"
        )
    allowed = DRIVER_KINDS[kind][1]
    unknown = sorted(set(spec) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown field(s) {unknown} for storage driver kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
    return spec


def storage_specs(storage, count: int) -> list:
    """Expand a ``storage=`` knob into one driver spec per device.

    ``None`` or a single spec (kind string, dict, factory callable)
    applies to every device; a list/tuple gives one spec per device —
    the heterogeneous-fabric form — and must match ``count``.
    """
    if storage is None or isinstance(storage, (str, dict)) or callable(storage):
        return [storage] * count
    specs = list(storage)
    if len(specs) != count:
        raise ValueError(
            f"storage= lists one driver spec per device: got "
            f"{len(specs)} specs for {count} devices"
        )
    return specs


def make_driver(
    spec: DriverSpec,
    sim,
    *,
    name: str,
    capacity_blocks: int = DEFAULT_CAPACITY_BLOCKS,
    default_latency=None,
) -> BlockStoreABC:
    """Build one block-store driver from a spec.

    ``name`` is the device name (``disk0``...); ``capacity_blocks`` and
    ``default_latency`` are the *caller's* defaults — the spec's own
    fields override them, and a ``default_latency`` of ``None`` falls
    through to the paper's 15 ms
    (:meth:`~repro.storage.parameters.DiskParameters.default_latency`).
    """
    if callable(spec) and not isinstance(spec, (str, dict)):
        driver = spec(sim, name, capacity_blocks)
        if not isinstance(driver, BlockStoreABC):
            raise ValueError(
                f"storage driver factory {spec!r} returned "
                f"{type(driver).__name__}, not a BlockStoreABC"
            )
        return driver
    spec = normalize_driver_spec(spec)
    factory = DRIVER_KINDS[spec["kind"]][0]
    return factory(sim, spec, name, capacity_blocks, default_latency)
