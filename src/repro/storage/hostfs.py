"""The ``hostfs`` driver: blocks persisted to a real host directory.

Where the ``ram`` driver holds block bytes in a Python dict, this driver
stores each written block as one file (``block_00000042.bin``) under a
host directory, so:

* runs perform **real I/O** — every simulated device access reads or
  writes the host filesystem, not process memory;
* the device image **survives re-instantiation** — a new
  :class:`HostFSDisk` (in a fresh simulator, or a fresh process) over
  the same directory sees every block the previous instance wrote,
  which is what makes restart tests possible;
* the image is **inspectable and editable** from outside the simulator
  (corruption tests and external tooling just edit the files).

Simulated *time* still comes from the latency model — the host I/O cost
is real but does not advance the simulation clock, keeping results
deterministic regardless of host speed.

Durability is explicit: ``fsync="never"`` (default) leaves durability
to the OS page cache; ``fsync="always"`` fsyncs every block write;
:meth:`~repro.storage.base.BlockStoreABC.flush` fsyncs all block files
and the directory under either policy.  The driver is also
*mtime-aware*: it records each block file's modification time as it
loads or writes it, and :meth:`modified_externally` reports blocks
whose host mtime has drifted — an external edit detector for tests and
tooling that share the directory with a live driver.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, MutableMapping, Optional

from repro.storage.base import SingleArmBlockStore
from repro.storage.parameters import DiskParameters

_BLOCK_PREFIX = "block_"
_BLOCK_SUFFIX = ".bin"

FSYNC_POLICIES = ("never", "always")


def _block_filename(block: int) -> str:
    return f"{_BLOCK_PREFIX}{block:08d}{_BLOCK_SUFFIX}"


def _parse_block_filename(filename: str) -> Optional[int]:
    if not (filename.startswith(_BLOCK_PREFIX) and filename.endswith(_BLOCK_SUFFIX)):
        return None
    digits = filename[len(_BLOCK_PREFIX):-len(_BLOCK_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class HostBlockMap(MutableMapping):
    """``store.blocks`` for the host-fs driver: a write-through mutable
    mapping over the block files.  Reads hit the host file each time, so
    external edits are visible; writes go straight to the file (and are
    mtime-recorded, so they do not count as external edits)."""

    __slots__ = ("_store",)

    def __init__(self, store: "HostFSDisk") -> None:
        self._store = store

    def __getitem__(self, block: int) -> bytes:
        path = self._store._block_path(block)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise KeyError(block) from None

    def __setitem__(self, block: int, data: bytes) -> None:
        self._store._write_block(block, bytes(data))

    def __delitem__(self, block: int) -> None:
        path = self._store._block_path(block)
        try:
            os.unlink(path)
        except FileNotFoundError:
            raise KeyError(block) from None
        self._store._mtimes.pop(block, None)

    def __iter__(self) -> Iterator[int]:
        return iter(self._store._scan_blocks())

    def __len__(self) -> int:
        return len(self._store._scan_blocks())


class HostFSDisk(SingleArmBlockStore):
    """A single-arm block device persisted to a host directory."""

    kind = "hostfs"

    def __init__(
        self,
        sim,
        params: DiskParameters,
        root: str,
        latency_model=None,
        scheduler=None,
        name: Optional[str] = None,
        fsync: str = "never",
        rng_stream: str = "disk",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.root = os.fspath(root)
        self.fsync = fsync
        os.makedirs(self.root, exist_ok=True)
        # mtimes recorded at adoption/write time: the baseline that
        # modified_externally() compares host state against.
        self._mtimes: Dict[int, float] = {}
        self.blocks = HostBlockMap(self)
        super().__init__(
            sim, params, latency_model, scheduler=scheduler, name=name,
            rng_stream=rng_stream,
        )
        # Adopt any blocks a previous instance left behind (restart
        # survival): record their mtimes so they read as in-sync.
        for block in self._scan_blocks():
            self._record_mtime(block)

    # ------------------------------------------------------------------
    # Storage hooks (real host I/O; simulated time paid by the arm loop)
    # ------------------------------------------------------------------

    def _block_path(self, block: int) -> str:
        return os.path.join(self.root, _block_filename(block))

    def _read_block(self, block: int) -> bytes:
        try:
            with open(self._block_path(block), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return b"\x00" * self.params.block_size
        self._record_mtime(block)
        return data

    def _write_block(self, block: int, data: bytes) -> None:
        path = self._block_path(block)
        with open(path, "wb") as handle:
            handle.write(data)
            if self.fsync == "always":
                handle.flush()
                os.fsync(handle.fileno())
        self._record_mtime(block)

    def flush(self) -> None:
        """Fsync every block file (and the directory) regardless of the
        write-time policy — the host-durability barrier."""
        for block in self._scan_blocks():
            path = self._block_path(block)
            try:
                fd = os.open(path, os.O_RDONLY)
            except FileNotFoundError:
                continue
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # mtime awareness
    # ------------------------------------------------------------------

    def _record_mtime(self, block: int) -> None:
        try:
            self._mtimes[block] = os.stat(self._block_path(block)).st_mtime_ns
        except FileNotFoundError:
            self._mtimes.pop(block, None)

    def modified_externally(self):
        """Blocks whose host files changed (or vanished) since this
        driver last read or wrote them — i.e. edits made behind the
        driver's back.  Returns a sorted list of block addresses."""
        drifted = []
        known = dict(self._mtimes)
        for block, recorded in known.items():
            try:
                current = os.stat(self._block_path(block)).st_mtime_ns
            except FileNotFoundError:
                drifted.append(block)
                continue
            if current != recorded:
                drifted.append(block)
        for block in self._scan_blocks():
            if block not in known:
                drifted.append(block)
        return sorted(drifted)

    # ------------------------------------------------------------------

    def _scan_blocks(self):
        blocks = []
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return blocks
        for filename in names:
            block = _parse_block_filename(filename)
            if block is not None:
                blocks.append(block)
        blocks.sort()
        return blocks
