"""Disk geometry: mapping block addresses onto cylinders/tracks/sectors.

Only the geometric latency model and the elevator scheduler care about
geometry; the paper's own experiments used a flat 15 ms access time
(section 4.4), for which geometry is irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DiskGeometry:
    """A classic CHS layout.

    ``blocks_per_track`` doubles as the unit of full-track buffering: the
    EFS cache reads whole tracks, which is what drives the sequential-read
    advantage in Table 2.
    """

    cylinders: int
    tracks_per_cylinder: int
    blocks_per_track: int

    @property
    def capacity_blocks(self) -> int:
        return self.cylinders * self.tracks_per_cylinder * self.blocks_per_track

    def locate(self, block: int) -> Tuple[int, int, int]:
        """Map a block address to ``(cylinder, track, sector)``."""
        if not 0 <= block < self.capacity_blocks:
            raise ValueError(
                f"block {block} outside geometry capacity {self.capacity_blocks}"
            )
        sector = block % self.blocks_per_track
        track_index = block // self.blocks_per_track
        track = track_index % self.tracks_per_cylinder
        cylinder = track_index // self.tracks_per_cylinder
        return cylinder, track, sector

    def cylinder_of(self, block: int) -> int:
        return self.locate(block)[0]

    def track_id(self, block: int) -> int:
        """A dense id for the physical track containing ``block``."""
        return block // self.blocks_per_track

    def track_blocks(self, block: int) -> range:
        """All block addresses sharing a physical track with ``block``."""
        start = self.track_id(block) * self.blocks_per_track
        return range(start, start + self.blocks_per_track)
