"""Disk parameter presets and latency models.

The paper's device driver "includes a variable-length sleep interval to
simulate seek and rotational delay...  set to 15 ms, to approximate the
performance of a CDC Wren-class hard disk" (section 4.4).
:class:`FixedLatency` reproduces exactly that; :class:`GeometricLatency`
is a more detailed model (seek curve + rotating platter + transfer) used
in ablations and available to downstream users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.config import BLOCK_SIZE
from repro.storage.geometry import DiskGeometry


#: The paper's 15 ms Wren-class access time.  This is the *single source
#: of truth* for the default device latency: every constructor that
#: needs a default — drivers, harness builders, baselines — resolves it
#: through :meth:`DiskParameters.default_latency` rather than repeating
#: the constant.
DEFAULT_ACCESS_TIME = 0.015


class FixedLatency:
    """Every access costs the same: the paper's 15 ms sleep.

    Optional uniform jitter (``+/- jitter`` seconds) can model variance
    without changing the mean; the paper used none.
    """

    def __init__(self, access_time: float = DEFAULT_ACCESS_TIME, jitter: float = 0.0) -> None:
        if access_time < 0 or jitter < 0:
            raise ValueError("latencies must be non-negative")
        self.access_time = access_time
        self.jitter = jitter

    def access(self, rng, head_position: int, block: int, now: float) -> Tuple[float, int]:
        """Return ``(service_time, new_head_position)`` for one block access."""
        time = self.access_time
        if self.jitter:
            time += rng.uniform(-self.jitter, self.jitter)
        return max(time, 0.0), block

    def mean_access_time(self) -> float:
        return self.access_time


class GeometricLatency:
    """Seek + rotation + transfer against a real geometry.

    * seek: ``seek_min + seek_factor * sqrt(cylinder distance)`` (classic
      acceleration-limited arm model), zero if already on-cylinder;
    * rotation: the platter spins continuously; the wait is the angle to
      the target sector at the moment the seek completes;
    * transfer: one sector time per block.
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        rotation_time: float = 0.0167,  # 3600 RPM
        seek_min: float = 0.004,
        seek_factor: float = 0.0006,
    ) -> None:
        self.geometry = geometry
        self.rotation_time = rotation_time
        self.seek_min = seek_min
        self.seek_factor = seek_factor

    def seek_time(self, from_block: int, to_block: int) -> float:
        from_cyl = self.geometry.cylinder_of(from_block)
        to_cyl = self.geometry.cylinder_of(to_block)
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        return self.seek_min + self.seek_factor * math.sqrt(distance)

    def access(self, rng, head_position: int, block: int, now: float) -> Tuple[float, int]:
        seek = self.seek_time(head_position, block)
        sectors = self.geometry.blocks_per_track
        sector_time = self.rotation_time / sectors
        _cyl, _track, sector = self.geometry.locate(block)
        arrive = now + seek
        angle_now = (arrive % self.rotation_time) / self.rotation_time
        target_angle = sector / sectors
        wait_fraction = (target_angle - angle_now) % 1.0
        rotation = wait_fraction * self.rotation_time
        return seek + rotation + sector_time, block

    def mean_access_time(self) -> float:
        return self.seek_min + self.rotation_time / 2 + self.rotation_time / (
            self.geometry.blocks_per_track
        )


@dataclass(frozen=True)
class DiskParameters:
    """Capacity and identity of one simulated drive."""

    name: str
    capacity_blocks: int
    block_size: int = BLOCK_SIZE
    geometry: Optional[DiskGeometry] = None

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * self.block_size

    def default_latency(self) -> FixedLatency:
        """The default device latency model: the paper's flat 15 ms
        (:data:`DEFAULT_ACCESS_TIME`).  Drivers and builders that take
        an optional latency model fall back to this, so the constant
        lives in exactly one place."""
        return FixedLatency(DEFAULT_ACCESS_TIME)


def wren_fixed(capacity_blocks: int = 65_536) -> Tuple[DiskParameters, FixedLatency]:
    """The paper's configuration: 64 MB RAM-simulated disk, flat 15 ms."""
    params = DiskParameters(name="cdc-wren-fixed", capacity_blocks=capacity_blocks)
    return params, params.default_latency()


def wren_geometric(capacity_blocks: int = 65_536) -> Tuple[DiskParameters, GeometricLatency]:
    """A Wren-like drive with explicit geometry (16 KB tracks)."""
    blocks_per_track = 16
    tracks_per_cylinder = 8
    cylinders = max(1, capacity_blocks // (blocks_per_track * tracks_per_cylinder))
    geometry = DiskGeometry(cylinders, tracks_per_cylinder, blocks_per_track)
    params = DiskParameters(
        name="cdc-wren-geometric",
        capacity_blocks=geometry.capacity_blocks,
        geometry=geometry,
    )
    return params, GeometricLatency(geometry)


def ramdisk(capacity_blocks: int = 65_536) -> Tuple[DiskParameters, FixedLatency]:
    """A Butterfly RAMFile-style memory disk (section 3's caching remark)."""
    params = DiskParameters(name="ramdisk", capacity_blocks=capacity_blocks)
    return params, FixedLatency(0.0002)
