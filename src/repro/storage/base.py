"""The storage kernel: the block-store contract every driver implements.

ViPIOS structures a parallel-I/O system as a minimal kernel over
swappable I/O subsystems; this module is that kernel for the Bridge
reproduction.  Everything above the device — EFS servers, the track
buffer/cache, parity and degraded paths, the fault injector, the
observability timelines, every harness builder — talks to a
:class:`BlockStoreABC`, never to a concrete device class, so storage
backends are interchangeable *drivers* (see
:mod:`repro.storage.drivers` for the registry).

The contract a driver must keep:

* **Generator API** — ``data = yield from store.read(block)`` and
  ``yield from store.write(block, data)`` park the calling process for
  the device's simulated latency and raise
  :class:`~repro.errors.BadBlockAddressError` /
  :class:`~repro.errors.DeviceFailedError` on bad addresses or a failed
  device.  Unwritten blocks read as zeros.
* **Wait/service stamping** — every served request is stamped with its
  queueing ``wait`` and arm ``service`` time, and the request's
  observability span ends with ``wait=``/``service=`` args.  The S19
  critical-path analyzer splits disk time into queueing vs. service
  from exactly these stamps; a driver that omits them breaks the
  analyzer's exact latency accounting.
* **Counters** — ``reads``/``writes``/``busy_time`` plus the
  ``wait_times``/``service_times`` summaries, so
  ``disk_utilizations()`` and every bench read the same telemetry from
  any backend.
* **Fault hooks** — :meth:`fail` errors all queued and future requests
  (what makes an interleaved file system lose *every* file when one
  device dies); :meth:`repair` restores service with contents intact.
* **Raw image access** — ``store.blocks`` is a mutable mapping of
  written block address to raw bytes.  fsck materializes it to audit
  the on-device image, and corruption tests poke it directly; drivers
  with external media (the host-fs driver) expose a write-through view.
* **Heat attribution** — when an experiment installs a
  :class:`~repro.rebalance.heat.HeatMap` on ``store.heat`` (with
  ``store.heat_slot`` naming the owning LFS node), the driver reports
  each request's busy time into it.  Like all S19/S24 instrumentation
  this schedules no events, so installing it cannot perturb the
  simulated event sequence.

:class:`SingleArmBlockStore` carries the shared single-arm machinery —
one request served at a time, pluggable latency model and scheduler —
that the ``ram`` and ``hostfs`` drivers inherit; the object-store
driver replaces the loop with a bounded-concurrency transfer pool.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import BadBlockAddressError, DeviceFailedError
from repro.sim import Mailbox, Summary, Timeout
from repro.storage.parameters import DiskParameters
from repro.storage.scheduler import FCFSScheduler


@runtime_checkable
class LatencyModel(Protocol):
    """The pluggable cost model of a single-arm device.

    ``access`` prices one block operation: given the driver's RNG
    stream, the current head position, the target block, and the
    simulated time, it returns ``(service_seconds, new_head_position)``.
    :class:`~repro.storage.parameters.FixedLatency` and
    :class:`~repro.storage.parameters.GeometricLatency` are the two
    shipped implementations.
    """

    def access(self, rng, head_position: int, block: int,
               now: float) -> Tuple[float, int]:
        ...


@runtime_checkable
class IOScheduler(Protocol):
    """The pluggable queue discipline of a single-arm device.

    ``select`` picks which pending request the arm serves next, given
    the queue and the current head position, and returns its index into
    ``pending``.  FCFS / SSTF / elevator live in
    :mod:`repro.storage.scheduler`.
    """

    def select(self, pending: List, head_position: int) -> int:
        ...


class BlockRequest:
    """One queued block operation, stamped as the driver serves it."""

    __slots__ = ("op", "block", "data", "waiter", "enqueued_at", "result",
                 "error", "wait", "service")

    def __init__(self, op: str, block: int, data: Optional[bytes], now: float) -> None:
        self.op = op
        self.block = block
        self.data = data
        self.waiter = None
        self.enqueued_at = now
        self.result: Optional[bytes] = None
        self.error: Optional[Exception] = None
        # Stamped by the driver loop so the caller's observability span
        # can split its interval into queueing vs. arm service.
        self.wait: Optional[float] = None
        self.service: Optional[float] = None


class _Submit:
    """Waitable that parks the calling process until its request is served."""

    __slots__ = ("store", "request")

    def __init__(self, store: "BlockStoreABC", request: BlockRequest) -> None:
        self.store = store
        self.request = request

    def _wait(self, process) -> None:
        self.request.waiter = process
        self.store._pending.append(self.request)
        obs = self.store.sim.obs
        if obs is not None:
            obs.timeline.record_queue_depth(
                f"{self.store.name}.queue", self.store.sim.now,
                len(self.store._pending),
            )
        self.store._wakeup.deliver(None)


class BlockStoreABC(abc.ABC):
    """Abstract block store: the device interface of the storage kernel.

    Subclasses provide a serving ``_loop`` (spawned at construction) and
    the raw storage hooks ``_read_block``/``_write_block``; everything
    else — the generator client API, span emission, failure semantics,
    counters — is shared, so every driver keeps the same contract by
    construction.
    """

    #: Registry name of this driver (see ``repro.storage.drivers``).
    kind: str = "abstract"

    def __init__(
        self,
        sim,
        params: DiskParameters,
        name: Optional[str] = None,
        rng_stream: str = "disk",
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name or params.name
        self.failed = False
        self._pending: List[BlockRequest] = []
        self._wakeup = Mailbox(sim, f"{self.name}.wakeup")
        self._rng = sim.random.stream(f"{rng_stream}.{self.name}")
        self.reads = 0
        self.writes = 0
        self.busy_time = 0.0
        self.wait_times = Summary(f"{self.name}.wait")
        self.service_times = Summary(f"{self.name}.service")
        # Node index for observability spans (disks have no node of their
        # own; the harness sets this to the owning LFS node).
        self.obs_node: Optional[int] = None
        # S24 heat attribution at the storage layer: experiments install
        # a HeatMap keyed by LFS slot; the driver reports each request's
        # busy time (no events scheduled — safe to install anywhere).
        self.heat = None
        self.heat_slot = 0
        sim.spawn(self._loop(), name=f"{self.name}.driver", daemon=True)

    # ------------------------------------------------------------------
    # Client API (generator style: value = yield from store.read(addr))
    # ------------------------------------------------------------------

    def read(self, block: int):
        """Read one block; returns its bytes (zeros if never written)."""
        request = BlockRequest("read", block, None, self.sim.now)
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.begin(f"{self.name}.read", "disk", node=self.obs_node)
        result = yield _Submit(self, request)
        if obs is not None:
            obs.end(span, block=block, wait=result.wait, service=result.service)
        if result.error is not None:
            raise result.error
        return result.result

    def write(self, block: int, data: bytes):
        """Write one block (data must not exceed the block size)."""
        request = BlockRequest("write", block, bytes(data), self.sim.now)
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.begin(f"{self.name}.write", "disk", node=self.obs_node)
        result = yield _Submit(self, request)
        if obs is not None:
            obs.end(span, block=block, wait=result.wait, service=result.service)
        if result.error is not None:
            raise result.error
        return None

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Fail the device: all queued and future requests error."""
        self.failed = True
        self._wakeup.deliver(None)

    def repair(self) -> None:
        """Clear the failure flag (contents are preserved: a 'reconnect')."""
        self.failed = False

    # ------------------------------------------------------------------
    # Storage hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _loop(self):
        """The serving process: drain ``_pending``, stamping each request."""

    @abc.abstractmethod
    def _read_block(self, block: int) -> bytes:
        """Return the raw bytes of ``block`` (zeros if never written)."""

    @abc.abstractmethod
    def _write_block(self, block: int, data: bytes) -> None:
        """Persist ``data`` as the new contents of ``block``."""

    def _perform(self, request: BlockRequest) -> None:
        """Validate and execute one request against the storage hooks."""
        if not 0 <= request.block < self.params.capacity_blocks:
            request.error = BadBlockAddressError(
                f"{self.name}: block {request.block} out of range "
                f"[0, {self.params.capacity_blocks})"
            )
            return
        if request.op == "read":
            self.reads += 1
            request.result = self._read_block(request.block)
        else:
            if len(request.data) > self.params.block_size:
                request.error = BadBlockAddressError(
                    f"{self.name}: write of {len(request.data)} bytes exceeds "
                    f"block size {self.params.block_size}"
                )
                return
            self.writes += 1
            self._write_block(request.block, request.data)

    def flush(self) -> None:
        """Host-durability hook: make written blocks durable on the
        backing medium.  Costs no simulated time (the simulated latency
        already covers the device); RAM-backed drivers are no-ops, the
        host-fs driver fsyncs its block files here."""

    # ------------------------------------------------------------------

    @property
    def total_operations(self) -> int:
        return self.reads + self.writes

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    def utilization(self) -> float:
        """Fraction of simulated time the device was busy.  Drivers that
        overlap transfers (the object store) can exceed 1.0 — the value
        is mean in-flight transfers, not arm occupancy."""
        now = self.sim.now
        return self.busy_time / now if now > 0 else 0.0

    def load_image(self, blocks) -> None:
        """Install block contents directly (test/bench setup, no time cost)."""
        for address, data in blocks.items():
            if not 0 <= address < self.params.capacity_blocks:
                raise BadBlockAddressError(f"image block {address} out of range")
            self.blocks[address] = bytes(data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.name!r}, ops={self.total_operations}, "
            f"queued={len(self._pending)})"
        )


class SingleArmBlockStore(BlockStoreABC):
    """Shared single-arm machinery: one request in service at a time.

    Service time comes from a pluggable latency model; the order served
    from a pluggable scheduler (FCFS unless told otherwise).  This is
    the seed's device loop, hoisted verbatim so the ``ram`` and
    ``hostfs`` drivers replay the exact same event sequence the
    committed acceptance trace pins.
    """

    def __init__(
        self,
        sim,
        params: DiskParameters,
        latency_model=None,
        scheduler=None,
        name: Optional[str] = None,
        rng_stream: str = "disk",
    ) -> None:
        self.latency = latency_model or params.default_latency()
        self.scheduler = scheduler or FCFSScheduler()
        self.head_position = 0
        super().__init__(sim, params, name=name, rng_stream=rng_stream)

    def _loop(self):
        sim = self.sim
        while True:
            if not self._pending:
                yield self._wakeup.recv()
                continue
            if self.failed:
                for request in self._pending:
                    request.error = DeviceFailedError(f"{self.name} has failed")
                    sim._schedule(0.0, request.waiter._resume, request)
                self._pending.clear()
                continue
            index = self.scheduler.select(self._pending, self.head_position)
            request = self._pending.pop(index)
            service, new_position = self.latency.access(
                self._rng, self.head_position, request.block, sim.now
            )
            wait = sim.now - request.enqueued_at
            request.wait = wait
            request.service = service
            self.wait_times.observe(wait)
            self.service_times.observe(service)
            if self.heat is not None:
                self.heat.observe(self.heat_slot, None, service, sim.now)
            obs = sim.obs
            if obs is not None:
                obs.timeline.record_queue_depth(
                    f"{self.name}.queue", sim.now, len(self._pending)
                )
                obs.metrics.histogram(f"{self.name}.service").observe(service)
                obs.metrics.histogram(f"{self.name}.wait").observe(wait)
            yield Timeout(service)
            self.busy_time += service
            if obs is not None:
                obs.timeline.record_disk_busy(self.name, sim.now - service, sim.now)
            self.head_position = new_position
            self._perform(request)
            sim._schedule(0.0, request.waiter._resume, request)
