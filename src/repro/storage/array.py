"""Synchronized storage arrays (section 2 background baseline).

A storage array "assembles multiple drives into a single logical device
with enormous throughput...  though they have the unfortunate tendency to
maximize rotational latency: each operation must wait for the most poorly
positioned disk."  This model makes that trade-off measurable: a logical
access touches all member drives in lock step; its positioning time is the
*maximum* of the members' independent rotational phases, while transfer
time divides by the member count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BadBlockAddressError, DeviceFailedError
from repro.sim import Mailbox, Summary, Timeout


class _ArrayRequest:
    __slots__ = ("op", "block", "data", "waiter", "result", "error")

    def __init__(self, op: str, block: int, data: Optional[bytes]) -> None:
        self.op = op
        self.block = block
        self.data = data
        self.waiter = None
        self.result: Optional[bytes] = None
        self.error: Optional[Exception] = None


class _Submit:
    __slots__ = ("array", "request")

    def __init__(self, array: "StorageArray", request: _ArrayRequest) -> None:
        self.array = array
        self.request = request

    def _wait(self, process) -> None:
        self.request.waiter = process
        self.array._pending.append(self.request)
        self.array._wakeup.deliver(None)


class StorageArray:
    """``member_count`` spindles behaving as one logical block device.

    Positioning model: each member contributes an independent rotational
    wait uniform in ``[0, rotation_time)``; the logical operation pays the
    maximum plus a fixed seek, then ``transfer_time / member_count``.
    Expected positioning therefore *grows* toward a full rotation as
    members are added: E[max of d uniforms] = d/(d+1) x rotation.
    """

    def __init__(
        self,
        sim,
        member_count: int,
        capacity_blocks: int,
        block_size: int = 1024,
        rotation_time: float = 0.0167,
        seek_time: float = 0.004,
        transfer_time: float = 0.001,
        name: str = "array",
    ) -> None:
        if member_count < 1:
            raise ValueError("array needs at least one member drive")
        self.sim = sim
        self.member_count = member_count
        self.capacity_blocks = capacity_blocks
        self.block_size = block_size
        self.rotation_time = rotation_time
        self.seek_time = seek_time
        self.transfer_time = transfer_time
        self.name = name
        self.failed = False
        self.blocks: Dict[int, bytes] = {}
        self._pending: List[_ArrayRequest] = []
        self._wakeup = Mailbox(sim, f"{name}.wakeup")
        self._rng = sim.random.stream(f"array.{name}")
        self.operations = 0
        self.busy_time = 0.0
        self.service_times = Summary(f"{name}.service")
        sim.spawn(self._loop(), name=f"{name}.driver", daemon=True)

    # ------------------------------------------------------------------

    def read(self, block: int):
        request = _ArrayRequest("read", block, None)
        result = yield _Submit(self, request)
        if result.error is not None:
            raise result.error
        return result.result

    def write(self, block: int, data: bytes):
        request = _ArrayRequest("write", block, bytes(data))
        result = yield _Submit(self, request)
        if result.error is not None:
            raise result.error
        return None

    def fail(self) -> None:
        """A single member failure takes down the whole logical device."""
        self.failed = True
        self._wakeup.deliver(None)

    # ------------------------------------------------------------------

    def sample_positioning(self) -> float:
        """One sample of the lock-step positioning wait (max of members)."""
        worst = 0.0
        for _ in range(self.member_count):
            wait = self._rng.uniform(0.0, self.rotation_time)
            if wait > worst:
                worst = wait
        return worst

    def expected_positioning(self) -> float:
        """Analytic E[max of d uniform rotational waits]."""
        d = self.member_count
        return self.rotation_time * d / (d + 1)

    def _loop(self):
        sim = self.sim
        while True:
            if not self._pending:
                yield self._wakeup.recv()
                continue
            request = self._pending.pop(0)
            if self.failed:
                request.error = DeviceFailedError(f"{self.name} has failed")
                sim._schedule(0.0, request.waiter._resume, request)
                continue
            if not 0 <= request.block < self.capacity_blocks:
                request.error = BadBlockAddressError(
                    f"{self.name}: block {request.block} out of range"
                )
                sim._schedule(0.0, request.waiter._resume, request)
                continue
            service = (
                self.seek_time
                + self.sample_positioning()
                + self.transfer_time / self.member_count
            )
            self.service_times.observe(service)
            yield Timeout(service)
            self.busy_time += service
            self.operations += 1
            if request.op == "read":
                request.result = self.blocks.get(
                    request.block, b"\x00" * self.block_size
                )
            else:
                self.blocks[request.block] = request.data
            sim._schedule(0.0, request.waiter._resume, request)
