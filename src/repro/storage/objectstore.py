"""The ``object`` driver: put/get object storage with cloud-ish latency.

A block device in interface, an object store in behaviour: each block is
one object, every access pays a high **first-byte latency** (request
routing, authentication, metadata lookup — tens of milliseconds) and
then a **bandwidth-dominated transfer** (``block_size / bandwidth``),
and the store serves up to ``max_inflight`` requests *concurrently*
instead of serializing them on one arm.  That combination — terrible
per-op latency, fine aggregate throughput under parallelism — is the
characteristic shape of S3-class backends, and it is exactly the regime
where heterogeneous-fabric experiments get interesting: a single
object-store LFS node in an otherwise fast fabric gates every
interleaved file that touches it.

The driver keeps the full storage-kernel contract: wait/service span
stamping (wait is time queued *behind the inflight cap*, service is the
transfer), counters, fail/repair, and a ``blocks`` dict for fsck and
corruption tests.  ``busy_time`` sums per-request transfer time, so
``utilization()`` reads as *mean in-flight transfers* and can exceed
1.0 when the concurrency is actually being used.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DeviceFailedError
from repro.sim import Timeout
from repro.storage.base import BlockStoreABC
from repro.storage.parameters import DiskParameters

#: Default first-byte latency: ~30 ms, twice the paper's disk access.
DEFAULT_FIRST_BYTE = 0.030
#: Default bandwidth: 4 MiB/s — a 1 KiB block transfers in ~0.24 ms,
#: so latency, not bandwidth, dominates single-block traffic.
DEFAULT_BANDWIDTH = 4 * 1024 * 1024
#: Default concurrent in-flight cap per store.
DEFAULT_MAX_INFLIGHT = 4


class ObjectStoreLatency:
    """First-byte + size/bandwidth transfer model."""

    def __init__(
        self,
        first_byte: float = DEFAULT_FIRST_BYTE,
        bandwidth: float = DEFAULT_BANDWIDTH,
    ) -> None:
        if first_byte < 0:
            raise ValueError("first-byte latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.first_byte = first_byte
        self.bandwidth = bandwidth

    def transfer_time(self, nbytes: int) -> float:
        return self.first_byte + nbytes / self.bandwidth

    def mean_access_time(self) -> float:
        return self.first_byte


class ObjectStoreDisk(BlockStoreABC):
    """Bounded-concurrency put/get store behind the block interface."""

    kind = "object"

    def __init__(
        self,
        sim,
        params: DiskParameters,
        first_byte: float = DEFAULT_FIRST_BYTE,
        bandwidth: float = DEFAULT_BANDWIDTH,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        name: Optional[str] = None,
        rng_stream: str = "disk",
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.model = ObjectStoreLatency(first_byte, bandwidth)
        self.max_inflight = max_inflight
        self.inflight = 0
        self.blocks: Dict[int, bytes] = {}
        super().__init__(sim, params, name=name, rng_stream=rng_stream)

    def _read_block(self, block: int) -> bytes:
        return self.blocks.get(block, b"\x00" * self.params.block_size)

    def _write_block(self, block: int, data: bytes) -> None:
        self.blocks[block] = data

    # ------------------------------------------------------------------
    # Serving: a dispatcher that keeps up to ``max_inflight`` transfers
    # running; each transfer is its own process, so requests overlap.
    # ------------------------------------------------------------------

    def _loop(self):
        sim = self.sim
        while True:
            if self.failed and self._pending:
                for request in self._pending:
                    request.error = DeviceFailedError(f"{self.name} has failed")
                    sim._schedule(0.0, request.waiter._resume, request)
                self._pending.clear()
            while self._pending and self.inflight < self.max_inflight:
                request = self._pending.pop(0)
                wait = sim.now - request.enqueued_at
                request.wait = wait
                self.wait_times.observe(wait)
                obs = sim.obs
                if obs is not None:
                    obs.timeline.record_queue_depth(
                        f"{self.name}.queue", sim.now, len(self._pending)
                    )
                    obs.metrics.histogram(f"{self.name}.wait").observe(wait)
                self.inflight += 1
                sim.spawn(
                    self._transfer(request),
                    name=f"{self.name}.transfer",
                    daemon=True,
                )
            yield self._wakeup.recv()

    def _transfer(self, request):
        sim = self.sim
        size = self.params.block_size
        service = self.model.transfer_time(size)
        request.service = service
        self.service_times.observe(service)
        if self.heat is not None:
            self.heat.observe(self.heat_slot, None, service, sim.now)
        obs = sim.obs
        if obs is not None:
            obs.metrics.histogram(f"{self.name}.service").observe(service)
        yield Timeout(service)
        self.busy_time += service
        if obs is not None:
            obs.timeline.record_disk_busy(self.name, sim.now - service, sim.now)
        self._perform(request)
        self.inflight -= 1
        sim._schedule(0.0, request.waiter._resume, request)
        self._wakeup.deliver(None)
