"""Disk request scheduling disciplines.

The paper's prototype served requests in arrival order (its disks were
RAM with a fixed sleep, so ordering could not matter).  With the geometric
latency model, ordering does matter, so FCFS, SSTF, and LOOK/elevator are
provided — used by the scheduler ablation bench and available to users.
"""

from __future__ import annotations

from typing import List


class FCFSScheduler:
    """First come, first served — the paper's (implicit) policy."""

    name = "fcfs"

    def select(self, pending: List, head_position: int) -> int:
        """Return the index in ``pending`` of the request to serve next."""
        return 0


class SSTFScheduler:
    """Shortest seek time first (by block-address distance)."""

    name = "sstf"

    def select(self, pending: List, head_position: int) -> int:
        best_index = 0
        best_distance = abs(pending[0].block - head_position)
        for index in range(1, len(pending)):
            distance = abs(pending[index].block - head_position)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index


class ElevatorScheduler:
    """LOOK: sweep upward through addresses, reverse at the last request."""

    name = "elevator"

    def __init__(self) -> None:
        self._direction = 1

    def select(self, pending: List, head_position: int) -> int:
        def candidates(direction: int) -> List[int]:
            if direction > 0:
                return [i for i, r in enumerate(pending) if r.block >= head_position]
            return [i for i, r in enumerate(pending) if r.block <= head_position]

        ahead = candidates(self._direction)
        if not ahead:
            self._direction = -self._direction
            ahead = candidates(self._direction)
        key = (lambda i: pending[i].block) if self._direction > 0 else (
            lambda i: -pending[i].block
        )
        return min(ahead, key=key)


SCHEDULERS = {
    "fcfs": FCFSScheduler,
    "sstf": SSTFScheduler,
    "elevator": ElevatorScheduler,
}


def make_scheduler(name: str):
    """Instantiate a scheduler by name (``fcfs`` / ``sstf`` / ``elevator``)."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
