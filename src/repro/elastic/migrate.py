"""S22: the online migration sweep.

:class:`FabricResizer` resizes a live :class:`~repro.core.partitioned.PartitionedBridge`
without pausing traffic.  One resize is three steps:

1. **Plan + flip (atomic).**  Collect the namespace from every
   provisioned partition, diff old ring -> new ring
   (:func:`~repro.elastic.plan.plan_resize`), install a *forwarding
   entry* on each move's destination (``dst.forward_to[name] = src
   port``), and swap the fabric's ring — all without yielding, so no
   request can ever observe the new ring without the forwarding net
   under it.  From this instant new arrivals route by the new ring; a
   request landing on the destination before its entry has moved is
   redirected to the source by the base server loop (the double-read
   forwarding window), never failed.
2. **Sweep (throttled).**  One ``migrate_in`` RPC per planned move, in
   deterministic (sorted-name) order, optionally spaced by
   ``moves_per_second`` so migration shares the fabric with foreground
   traffic.  The destination server itself pulls the entry with a nested
   ``migrate_out`` to the source: the source removes the entry, cursor
   and hints, bumps its S18 block-cache generation (evicting every
   cached block of the name, so no stale data can be installed later),
   and installs the *reverse* forwarding entry — in-flight requests
   routed by the old ring chase the entry to its new home.  Because a
   server is a single simulated process, any request that raced into
   the destination's mailbox during the pull is dispatched only after
   the entry has landed.
3. **Retire the window.**  After the sweep the resizer waits
   ``forward_window`` simulated seconds (longer than any in-flight
   envelope) and deletes the source-side forwarding entries it
   installed, returning both servers to forwarding-free hot paths.

Observability: each move emits an S19 client span
(``elastic.move``, with name/src/dst/moved args) under one
``elastic.resize`` root, and the ``elastic.migration.progress`` gauge
tracks sweep completion in [0, 1].  With elasticity off none of this
code runs, which is how the committed acceptance trace stays
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.elastic.plan import MigrationPlan, plan_resize
from repro.machine import gather
from repro.sim import Timeout


@dataclass
class MigrationReport:
    """Accounting for one completed resize."""

    old_partitions: int
    new_partitions: int
    planned: int  # moves in the plan
    moved: int  # entries actually relocated
    vanished: int  # entries deleted mid-sweep (nothing to move)
    forwarded: int  # requests redirected during the window (fabric-wide)
    started_at: float  # simulated seconds (ring flip)
    finished_at: float  # simulated seconds (window retired)
    moves_per_second: Optional[float]
    plan: MigrationPlan

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def direction(self) -> str:
        if self.new_partitions > self.old_partitions:
            return "grow"
        if self.new_partitions < self.old_partitions:
            return "shrink"
        # S24 weight-only resizes keep the partition count fixed but
        # still relocate entries; a same-size sweep with no moves is a
        # true no-op.
        return "rebalance" if self.planned else "noop"


class FabricResizer:
    """Drives online resizes of one system's partitioned fabric.

    ``moves_per_second`` throttles the sweep (``None`` = move-after-move
    as fast as the RPCs complete); ``forward_window`` is how long the
    source-side redirects outlive the sweep (``None`` = keep them
    forever — correct but permanently pays the forwarding probe).
    """

    def __init__(self, system, moves_per_second: Optional[float] = None,
                 forward_window: Optional[float] = 0.25) -> None:
        if moves_per_second is not None and moves_per_second <= 0:
            raise ValueError("moves_per_second must be positive")
        self.system = system
        self.moves_per_second = moves_per_second
        self.forward_window = forward_window
        self.reports = []

    def resize(self, new_count: int):
        """Generator: run one resize to ``new_count`` active partitions.

        Drive inside the running simulation (spawned next to traffic, or
        via ``system.run``); returns a :class:`MigrationReport`.
        """
        fabric = self.system.fabric
        if not 1 <= new_count <= len(fabric.servers):
            raise ValueError(
                f"new_count {new_count} outside provisioned fabric "
                f"[1, {len(fabric.servers)}]"
            )
        report = yield from self.apply(fabric.ring.with_partitions(new_count))
        return report

    def apply(self, new_ring):
        """Generator: migrate the live fabric onto ``new_ring``.

        The general entry point :meth:`resize` delegates to — any ring
        compatible with the planner works, including the S24 same-size
        weighted/arc-shed rings, so the rebalancer reuses the exact
        plan+flip/sweep/retire machinery (and its safety argument) that
        grows and shrinks do.
        """
        system = self.system
        fabric = system.fabric
        sim = system.sim
        servers = fabric.servers
        if not 1 <= new_ring.partitions <= len(servers):
            raise ValueError(
                f"ring partitions {new_ring.partitions} outside "
                f"provisioned fabric [1, {len(servers)}]"
            )
        old_ring = fabric.ring
        names = set()
        for server in servers:
            names.update(server.directory.names())
        plan = plan_resize(old_ring, new_ring, names)
        forwarded_before = sum(server.forwarded for server in servers)

        # Atomic plan+flip: no yields between installing the forwarding
        # net and swapping the ring, so the new routing is never visible
        # without its redirects.
        for move in plan.moves:
            servers[move.dst].forward_to[move.name] = servers[move.src].port
        fabric.set_ring(new_ring)
        started = sim.now

        obs = sim.obs
        resize_span = None
        gauge = None
        if obs is not None:
            resize_span = obs.begin(
                "elastic.resize", "client", node=system.client_node.index
            )
            obs.set_current(resize_span)
            gauge = obs.metrics.gauge("elastic.migration.progress")
            gauge.set(0.0 if plan.moves else 1.0)

        gap = (1.0 / self.moves_per_second) if self.moves_per_second else 0.0
        moved = vanished = 0
        node = system.client_node
        for index, move in enumerate(plan.moves):
            if gap > 0.0:
                yield Timeout(gap)
            move_span = None
            if obs is not None:
                move_span = obs.begin("elastic.move", "client",
                                      node=node.index)
                obs.set_current(move_span)
            results = yield from gather(node, [
                (servers[move.dst].port, "migrate_in",
                 {"name": move.name, "src_port": servers[move.src].port}, 0)
            ])
            if results[0]:
                moved += 1
            else:
                vanished += 1
            if obs is not None:
                obs.end(move_span, name=move.name, src=move.src,
                        dst=move.dst, moved=bool(results[0]))
                obs.set_current(resize_span)
            if gauge is not None:
                gauge.set((index + 1) / len(plan.moves))

        # Retire the double-read window: only entries still pointing at
        # the planned destination are removed (a concurrent create or a
        # later resize may have repurposed the slot).
        if self.forward_window is not None and plan.moves:
            yield Timeout(self.forward_window)
            for move in plan.moves:
                src = servers[move.src]
                if src.forward_to.get(move.name) is servers[move.dst].port:
                    del src.forward_to[move.name]

        if obs is not None:
            obs.end(resize_span, old=plan.old_partitions,
                    new=plan.new_partitions, planned=len(plan.moves),
                    moved=moved)
            obs.set_current(None)

        report = MigrationReport(
            old_partitions=plan.old_partitions,
            new_partitions=plan.new_partitions,
            planned=len(plan.moves),
            moved=moved,
            vanished=vanished,
            forwarded=sum(s.forwarded for s in servers) - forwarded_before,
            started_at=started,
            finished_at=sim.now,
            moves_per_second=self.moves_per_second,
            plan=plan,
        )
        self.reports.append(report)
        return report
