"""S22: name-routing rings for the partitioned fabric.

The S20 fabric froze its partition count into ``crc32(name) mod k``:
changing ``k`` remaps almost every name, so the fabric could never grow
or shrink without stranding the namespace.  This module makes the
routing map a first-class object with two registered implementations:

* :class:`ModuloRing` — the seed's ``crc32 mod k`` map, kept verbatim so
  an elastic-off system routes (and traces) byte-identically to the
  committed acceptance baseline.
* :class:`ConsistentHashRing` — a seeded consistent-hash ring with
  deterministic virtual nodes.  Each partition owns ``vnodes`` points on
  a 64-bit circle; a name belongs to the partition owning the first
  point at or after its hash.  Because partition ``i``'s points depend
  only on ``(seed, i)``, growing from ``k`` to ``n`` adds points owned
  exclusively by partitions ``k..n-1`` and shrinking removes exactly
  those — so the set of names whose owner changes is minimal (the
  reassigned arcs and nothing else), the property
  :func:`repro.elastic.plan.plan_resize` asserts.

Both rings expose the same duck type — ``partitions``,
``partition_of(name)``, ``with_partitions(n)`` — which is all
:class:`~repro.core.partitioned.PartitionedBridge` needs.  Rings are
pure routing tables: deterministic, stateless, safe to rebuild from
``(kind, partitions, seed)`` on any client.
"""

from __future__ import annotations

import hashlib
import zlib
from bisect import bisect_right
from typing import Callable, Dict, List, Tuple


def hash64(key: str) -> int:
    """Stable 64-bit hash of a string (blake2b, seed-independent)."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ModuloRing:
    """The legacy mod-k map: ``crc32(name) % partitions``.

    This is the seed's routing function verbatim (one source of truth —
    the deprecated module-level ``partition_of`` in
    :mod:`repro.core.partitioned` now delegates here).  Resizing a
    modulo ring remaps ~``(k-1)/k`` of all names, which is exactly why
    the consistent ring exists; it still supports ``with_partitions`` so
    the planner can quantify that disruption.
    """

    kind = "modulo"

    __slots__ = ("partitions", "seed")

    def __init__(self, partitions: int, seed: int = 0) -> None:
        if partitions < 1:
            raise ValueError("need at least one partition")
        self.partitions = partitions
        self.seed = seed  # unused; kept for duck-type parity

    def partition_of(self, name: str) -> int:
        return zlib.crc32(name.encode()) % self.partitions

    def with_partitions(self, partitions: int) -> "ModuloRing":
        return ModuloRing(partitions, seed=self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ModuloRing(partitions={self.partitions})"


class ConsistentHashRing:
    """Seeded consistent hashing with deterministic virtual nodes.

    Partition ``i`` owns the points ``hash64(f"{seed}/vnode/{i}/{v}")``
    for ``v`` in ``range(vnodes)``; names hash in a separate domain
    (``"name/..."``) so a vnode label can never collide with a file
    name.  Lookup is a binary search over the sorted points with
    wraparound.  Same ``(partitions, seed, vnodes)`` -> same table, on
    every client, in every run.
    """

    kind = "consistent"

    __slots__ = ("partitions", "seed", "vnodes", "_points", "_owners")

    def __init__(self, partitions: int, seed: int = 0, vnodes: int = 64) -> None:
        if partitions < 1:
            raise ValueError("need at least one partition")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per partition")
        self.partitions = partitions
        self.seed = seed
        self.vnodes = vnodes
        table: List[Tuple[int, int]] = []
        for partition in range(partitions):
            for vnode in range(vnodes):
                point = hash64(f"{seed}/vnode/{partition}/{vnode}")
                table.append((point, partition))
        table.sort()
        self._points = [point for point, _owner in table]
        self._owners = [owner for _point, owner in table]

    def partition_of(self, name: str) -> int:
        index = bisect_right(self._points, hash64(f"name/{name}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def with_partitions(self, partitions: int) -> "ConsistentHashRing":
        """The same ring at a different size (same seed and vnode count,
        so shared partitions keep their exact points)."""
        return ConsistentHashRing(partitions, seed=self.seed,
                                  vnodes=self.vnodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ConsistentHashRing(partitions={self.partitions}, "
                f"seed={self.seed}, vnodes={self.vnodes})")


#: Registered ring kinds, by name (``make_ring`` spec strings).
RING_KINDS: Dict[str, Callable[..., object]] = {
    ModuloRing.kind: ModuloRing,
    ConsistentHashRing.kind: ConsistentHashRing,
}


def make_ring(kind: str, partitions: int, **kwargs):
    """Build a registered ring: ``make_ring("consistent", 4, seed=7)``."""
    factory = RING_KINDS.get(kind)
    if factory is None:
        raise ValueError(
            f"unknown ring kind {kind!r} (have {sorted(RING_KINDS)})"
        )
    return factory(partitions, **kwargs)
