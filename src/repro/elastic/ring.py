"""S22: name-routing rings for the partitioned fabric.

The S20 fabric froze its partition count into ``crc32(name) mod k``:
changing ``k`` remaps almost every name, so the fabric could never grow
or shrink without stranding the namespace.  This module makes the
routing map a first-class object with two registered implementations:

* :class:`ModuloRing` — the seed's ``crc32 mod k`` map, kept verbatim so
  an elastic-off system routes (and traces) byte-identically to the
  committed acceptance baseline.
* :class:`ConsistentHashRing` — a seeded consistent-hash ring with
  deterministic virtual nodes.  Each partition owns ``vnodes`` points on
  a 64-bit circle; a name belongs to the partition owning the first
  point at or after its hash.  Because partition ``i``'s points depend
  only on ``(seed, i)``, growing from ``k`` to ``n`` adds points owned
  exclusively by partitions ``k..n-1`` and shrinking removes exactly
  those — so the set of names whose owner changes is minimal (the
  reassigned arcs and nothing else), the property
  :func:`repro.elastic.plan.plan_resize` asserts.

Both rings expose the same duck type — ``partitions``,
``partition_of(name)``, ``with_partitions(n)`` — which is all
:class:`~repro.core.partitioned.PartitionedBridge` needs.  Rings are
pure routing tables: deterministic, stateless, safe to rebuild from
``(kind, partitions, seed)`` on any client.
"""

from __future__ import annotations

import hashlib
import zlib
from bisect import bisect_right
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Size of the hash circle (64-bit points).
CIRCLE = 1 << 64


def hash64(key: str) -> int:
    """Stable 64-bit hash of a string (blake2b, seed-independent)."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ModuloRing:
    """The legacy mod-k map: ``crc32(name) % partitions``.

    This is the seed's routing function verbatim — the one source of
    truth since the module-level ``partition_of`` shim in
    ``repro.core.partitioned`` was removed in S25.  Resizing a
    modulo ring remaps ~``(k-1)/k`` of all names, which is exactly why
    the consistent ring exists; it still supports ``with_partitions`` so
    the planner can quantify that disruption.
    """

    kind = "modulo"

    __slots__ = ("partitions", "seed")

    def __init__(self, partitions: int, seed: int = 0) -> None:
        if partitions < 1:
            raise ValueError("need at least one partition")
        self.partitions = partitions
        self.seed = seed  # unused; kept for duck-type parity

    def partition_of(self, name: str) -> int:
        return zlib.crc32(name.encode()) % self.partitions

    def with_partitions(self, partitions: int) -> "ModuloRing":
        return ModuloRing(partitions, seed=self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ModuloRing(partitions={self.partitions})"


class ConsistentHashRing:
    """Seeded consistent hashing with deterministic virtual nodes.

    Partition ``i`` owns the points ``hash64(f"{seed}/vnode/{i}/{v}")``
    for ``v`` in ``range(weights[i])``; names hash in a separate domain
    (``"name/..."``) so a vnode label can never collide with a file
    name.  Lookup is a binary search over the sorted points with
    wraparound.  Same ``(partitions, seed, vnodes, weights, dropped)``
    -> same table, on every client, in every run.

    S24 adds two load-shaping dimensions on top of the base ring, both
    of which preserve the point formula (so every retained arc sits at
    exactly the same place it always did — the minimal-disruption
    invariant the planner asserts):

    * ``weights`` — per-partition vnode *counts*.  Partition ``i`` owns
      vnodes ``0..weights[i]-1``; growing a cold partition's weight
      claims new arcs from everyone, shrinking a hot partition's weight
      releases its highest-numbered arcs to whoever is next on the
      circle.  ``None`` means ``vnodes`` everywhere — byte-identical to
      the pre-weight ring.
    * ``dropped`` — a frozen set of ``(partition, vnode)`` pairs removed
      from the table: the targeted arc-split.  Dropping exactly the arc
      a hot name lives on sheds *that name* (plus its arc-mates) to the
      circle successor and nothing else, which is how the S24 rebalancer
      moves individual hot names without disturbing the namespace.
    """

    kind = "consistent"

    __slots__ = ("partitions", "seed", "vnodes", "weights", "dropped",
                 "_points", "_owners", "_vnode_ids")

    def __init__(self, partitions: int, seed: int = 0, vnodes: int = 64,
                 weights: Optional[Sequence[int]] = None,
                 dropped: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        if partitions < 1:
            raise ValueError("need at least one partition")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per partition")
        if weights is None:
            weights = (vnodes,) * partitions
        else:
            weights = tuple(int(w) for w in weights)
            if len(weights) != partitions:
                raise ValueError(
                    f"weights has {len(weights)} entries for "
                    f"{partitions} partitions"
                )
            if any(w < 1 for w in weights):
                raise ValueError("every partition needs weight >= 1")
        dropped = frozenset(dropped) if dropped else frozenset()
        for partition, vnode in dropped:
            if not 0 <= partition < partitions:
                raise ValueError(f"dropped arc names partition {partition} "
                                 f"outside [0, {partitions})")
            if not 0 <= vnode < weights[partition]:
                raise ValueError(
                    f"dropped arc ({partition}, {vnode}) outside partition "
                    f"weight {weights[partition]}"
                )
        self.partitions = partitions
        self.seed = seed
        self.vnodes = vnodes
        self.weights: Tuple[int, ...] = weights
        self.dropped: FrozenSet[Tuple[int, int]] = dropped
        table: List[Tuple[int, int, int]] = []
        for partition in range(partitions):
            for vnode in range(weights[partition]):
                if (partition, vnode) in dropped:
                    continue
                point = hash64(f"{seed}/vnode/{partition}/{vnode}")
                table.append((point, partition, vnode))
        counts = [0] * partitions
        for _point, partition, _vnode in table:
            counts[partition] += 1
        for partition, count in enumerate(counts):
            if count == 0:
                raise ValueError(
                    f"partition {partition} has no arcs left "
                    f"(weight {weights[partition]}, all dropped)"
                )
        table.sort()
        self._points = [point for point, _owner, _vnode in table]
        self._owners = [owner for _point, owner, _vnode in table]
        self._vnode_ids = [vnode for _point, _owner, vnode in table]

    def partition_of(self, name: str) -> int:
        index = bisect_right(self._points, hash64(f"name/{name}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    # -- S24 load-shaping surface --------------------------------------

    def _owner_index(self, name: str) -> int:
        index = bisect_right(self._points, hash64(f"name/{name}"))
        return 0 if index == len(self._points) else index

    def vnode_of(self, name: str) -> Tuple[int, int]:
        """The ``(partition, vnode)`` arc a name lives on — the handle
        :meth:`shed_arc` takes to move exactly this name's arc."""
        index = self._owner_index(name)
        return self._owners[index], self._vnode_ids[index]

    def point_of(self, name: str) -> int:
        """The circle point of the arc owning ``name`` (the planner's
        minimal-disruption check compares these across rings)."""
        return self._points[self._owner_index(name)]

    def arc_points(self) -> Dict[int, FrozenSet[int]]:
        """Per-partition frozen sets of owned circle points."""
        owned: Dict[int, set] = {p: set() for p in range(self.partitions)}
        for point, owner in zip(self._points, self._owners):
            owned[owner].add(point)
        return {p: frozenset(points) for p, points in owned.items()}

    def arc_share(self) -> List[float]:
        """Fraction of the circle each partition owns (sums to 1.0).

        The arc *ending* at point ``i`` (names in ``(p[i-1], p[i]]``)
        belongs to that point's owner; the first point also owns the
        wraparound stretch past the last point.
        """
        share = [0] * self.partitions
        points, owners = self._points, self._owners
        for index in range(1, len(points)):
            share[owners[index]] += points[index] - points[index - 1]
        share[owners[0]] += CIRCLE - points[-1] + points[0]
        return [s / CIRCLE for s in share]

    def with_weights(self, weights: Sequence[int]) -> "ConsistentHashRing":
        """The same ring with new per-partition vnode weights (drops on
        still-present vnodes are preserved)."""
        weights = tuple(int(w) for w in weights)
        if len(weights) != self.partitions:
            raise ValueError(
                f"weights has {len(weights)} entries for "
                f"{self.partitions} partitions"
            )
        keep = frozenset(
            (partition, vnode) for partition, vnode in self.dropped
            if vnode < weights[partition]
        )
        return ConsistentHashRing(self.partitions, seed=self.seed,
                                  vnodes=self.vnodes, weights=weights,
                                  dropped=keep)

    def shed_arc(self, partition: int, vnode: int) -> "ConsistentHashRing":
        """The same ring minus one arc: names on ``(partition, vnode)``
        fall to the next point on the circle (usually a neighbor)."""
        if (partition, vnode) in self.dropped:
            raise ValueError(f"arc ({partition}, {vnode}) already dropped")
        return ConsistentHashRing(
            self.partitions, seed=self.seed, vnodes=self.vnodes,
            weights=self.weights, dropped=self.dropped | {(partition, vnode)},
        )

    def with_partitions(self, partitions: int) -> "ConsistentHashRing":
        """The same ring at a different size (same seed and vnode count,
        so shared partitions keep their exact points — including their
        weights and dropped arcs; added partitions start at the base
        weight with nothing dropped)."""
        if partitions >= self.partitions:
            weights = self.weights + (self.vnodes,) * (partitions - self.partitions)
            dropped = self.dropped
        else:
            weights = self.weights[:partitions]
            dropped = frozenset(
                (p, v) for p, v in self.dropped if p < partitions
            )
        return ConsistentHashRing(partitions, seed=self.seed,
                                  vnodes=self.vnodes, weights=weights,
                                  dropped=dropped)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = ""
        if self.weights != (self.vnodes,) * self.partitions:
            extra += f", weights={self.weights}"
        if self.dropped:
            extra += f", dropped={sorted(self.dropped)}"
        return (f"ConsistentHashRing(partitions={self.partitions}, "
                f"seed={self.seed}, vnodes={self.vnodes}{extra})")


#: Registered ring kinds, by name (``make_ring`` spec strings).
RING_KINDS: Dict[str, Callable[..., object]] = {
    ModuloRing.kind: ModuloRing,
    ConsistentHashRing.kind: ConsistentHashRing,
}


def make_ring(kind: str, partitions: int, **kwargs):
    """Build a registered ring: ``make_ring("consistent", 4, seed=7)``."""
    factory = RING_KINDS.get(kind)
    if factory is None:
        raise ValueError(
            f"unknown ring kind {kind!r} (have {sorted(RING_KINDS)})"
        )
    return factory(partitions, **kwargs)
