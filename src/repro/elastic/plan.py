"""S22: the resize planner.

Diffs an old ring against a new one over a concrete namespace and emits
the *move set* — exactly the names whose owner changes, each as a
``(name, src, dst)`` :class:`Move`.  For same-seed consistent rings the
planner also asserts the minimal-disruption property before returning:
a grow may only move names *to* the added partitions and a shrink may
only move names *from* the removed ones.  Any other move means the
shared partitions' vnode points shifted — a routing bug that would
silently strand files — so the planner refuses to hand such a plan to
the migrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List


@dataclass(frozen=True)
class Move:
    """One planned namespace-entry move: ``name`` from partition ``src``
    to partition ``dst``."""

    name: str
    src: int
    dst: int


@dataclass
class MigrationPlan:
    """The full diff of one resize."""

    old_partitions: int
    new_partitions: int
    moves: List[Move] = field(default_factory=list)
    unchanged: int = 0

    @property
    def disruption(self) -> float:
        """Fraction of the namespace that moves."""
        total = len(self.moves) + self.unchanged
        return len(self.moves) / total if total else 0.0


def plan_resize(old_ring, new_ring, names: Iterable[str]) -> MigrationPlan:
    """Diff ``old_ring`` -> ``new_ring`` over ``names``.

    Names are visited in sorted order so the plan — and therefore the
    migration sweep's event sequence — is deterministic regardless of
    how the caller collected the namespace.
    """
    plan = MigrationPlan(old_ring.partitions, new_ring.partitions)
    for name in sorted(names):
        src = old_ring.partition_of(name)
        dst = new_ring.partition_of(name)
        if src == dst:
            plan.unchanged += 1
        else:
            plan.moves.append(Move(name, src, dst))
    _assert_minimal_disruption(old_ring, new_ring, plan)
    return plan


def _assert_minimal_disruption(old_ring, new_ring,
                               plan: MigrationPlan) -> None:
    """Consistent rings sharing a seed may only move names on the
    reassigned arcs; violations are wiring bugs, not workloads.

    The check is arc-precise: a name may move only if the arc it lived
    on disappeared from the source's point set (a shrink, a weight cut,
    or an S24 ``shed_arc``) or the arc it lands on is a *genuine* new
    arc of the destination (a grow or a weight raise) — genuine meaning
    the owning point actually equals ``hash64(seed/vnode/dst/v)``, so a
    corrupted table that hands another partition's arcs to the
    destination cannot masquerade as growth.  Because the point formula
    depends only on ``(seed, partition, vnode)``, any other move means a
    *retained* arc shifted — a routing bug that would silently strand
    files — which covers grows, shrinks, and S24's same-size weight-only
    "resizes" with one rule.
    """
    from repro.elastic.ring import hash64

    if (getattr(old_ring, "kind", None) != "consistent"
            or getattr(new_ring, "kind", None) != "consistent"
            or old_ring.seed != new_ring.seed
            or old_ring.vnodes != new_ring.vnodes):
        return
    old_points = old_ring.arc_points()
    new_points = new_ring.arc_points()
    empty: frozenset = frozenset()
    bad = []
    for move in plan.moves:
        arc_removed = (
            old_ring.point_of(move.name) not in new_points.get(move.src, empty)
        )
        new_point = new_ring.point_of(move.name)
        owner, vnode = new_ring.vnode_of(move.name)
        arc_added = (
            new_point not in old_points.get(move.dst, empty)
            and owner == move.dst
            and hash64(f"{new_ring.seed}/vnode/{owner}/{vnode}") == new_point
        )
        if not arc_removed and not arc_added:
            bad.append(move)
    if bad:
        old_k, new_k = old_ring.partitions, new_ring.partitions
        sample = ", ".join(f"{m.name}:{m.src}->{m.dst}" for m in bad[:4])
        raise AssertionError(
            f"minimal-disruption violated: plan {old_k}->{new_k} moved "
            f"names whose arcs never changed ({len(bad)} moves, "
            f"e.g. {sample})"
        )
