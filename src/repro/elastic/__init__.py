"""S22: the elastic fabric — consistent-hash routing + live migration.

Makes the S20 partitioned fabric resizable online.  Three layers:

* :mod:`repro.elastic.ring` — pluggable name-routing rings: the seed's
  mod-k map (:class:`ModuloRing`, byte-identical routing with
  elasticity off) and a seeded consistent-hash ring
  (:class:`ConsistentHashRing`) whose resizes touch only the
  reassigned arcs.
* :mod:`repro.elastic.plan` — :func:`plan_resize` diffs old->new rings
  over the live namespace into a minimal move set and asserts the
  minimal-disruption property.
* :mod:`repro.elastic.migrate` — :class:`FabricResizer` executes a plan
  against a running system: atomic ring flip under a forwarding net,
  throttled per-name entry moves with generation-bumped cache
  invalidation, and a double-read window so in-flight requests routed
  by the old ring are redirected, never failed.

Entry point for experiments: ``BridgeSystem(..., elastic=N)`` then
``system.resize_fabric(new_count)`` (see :mod:`repro.harness.builders`).
"""

from repro.elastic.migrate import FabricResizer, MigrationReport
from repro.elastic.plan import MigrationPlan, Move, plan_resize
from repro.elastic.ring import (
    CIRCLE,
    RING_KINDS,
    ConsistentHashRing,
    ModuloRing,
    hash64,
    make_ring,
)

__all__ = [
    "CIRCLE",
    "ConsistentHashRing",
    "FabricResizer",
    "MigrationPlan",
    "MigrationReport",
    "ModuloRing",
    "Move",
    "RING_KINDS",
    "hash64",
    "make_ring",
    "plan_resize",
]
