"""Workload generators: keys, records, and text blocks.

The paper's expectation (section 3) is that "sequential access to
relatively large files will overwhelm all other usage patterns"; the
generators here build exactly such files — bulk record files for the sort
tool and text files for the filter/search tools — with deterministic,
seed-controlled contents.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.config import DATA_BYTES_PER_BLOCK
from repro.tools.sort.records import make_record

_WORDS = (
    b"butterfly bridge interleave block disk file parallel server tool "
    b"token merge sort record stripe node process cache hint latency "
    b"chrysalis cronus rochester system data"
).split()


def uniform_keys(count: int, seed: int = 0, key_space: int = 2**48) -> List[int]:
    """Independent uniform keys (the sort benches' default workload)."""
    rng = random.Random(seed)
    return [rng.randrange(key_space) for _ in range(count)]


def sorted_keys(count: int, seed: int = 0) -> List[int]:
    """Already sorted input (best case for merge passes)."""
    return sorted(uniform_keys(count, seed))


def reversed_keys(count: int, seed: int = 0) -> List[int]:
    """Reverse-sorted input."""
    return sorted(uniform_keys(count, seed), reverse=True)


def few_distinct_keys(count: int, distinct: int = 8, seed: int = 0) -> List[int]:
    """Heavily duplicated keys (exercises the merge's <= tie handling)."""
    rng = random.Random(seed)
    values = [rng.randrange(2**32) for _ in range(distinct)]
    return [values[rng.randrange(distinct)] for _ in range(count)]


def record_chunks(keys: List[int], payload_bytes: int = 16,
                  seed: int = 0) -> List[bytes]:
    """One sortable record (= one block data area) per key."""
    rng = random.Random(seed)
    chunks = []
    for key in keys:
        payload = bytes(rng.randrange(33, 127) for _ in range(payload_bytes))
        chunks.append(make_record(key, payload))
    return chunks


def text_chunks(block_count: int, seed: int = 0,
                line_length: int = 80,
                needle: Optional[bytes] = None,
                needle_every: int = 0) -> List[bytes]:
    """Blocks of fixed-length text lines; optionally plant ``needle``
    in every ``needle_every``-th block (for grep tests)."""
    rng = random.Random(seed)
    chunks = []
    for index in range(block_count):
        lines = []
        while sum(len(l) for l in lines) < DATA_BYTES_PER_BLOCK - line_length:
            words: List[bytes] = []
            while sum(len(w) + 1 for w in words) < line_length - 12:
                words.append(_WORDS[rng.randrange(len(_WORDS))])
            line = b" ".join(words)[: line_length - 1].ljust(line_length - 1) + b"\n"
            lines.append(line)
        block = b"".join(lines)[:DATA_BYTES_PER_BLOCK]
        if needle and needle_every and index % needle_every == 0:
            offset = rng.randrange(0, len(block) - len(needle))
            block = block[:offset] + needle + block[offset + len(needle):]
        chunks.append(block)
    return chunks


def pattern_chunks(block_count: int, stamp: bytes = b"BLK") -> List[bytes]:
    """Self-identifying blocks (``stamp`` + index), for copy verification."""
    return [
        (stamp + b"-%08d|" % index) * 3
        for index in range(block_count)
    ]
