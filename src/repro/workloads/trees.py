"""Deep-tree namespace generation for the parallel utilities (S23).

Bridge's namespace is flat — there are no directories — so a "deep
tree" is a family of ``/``-separated name prefixes, exactly what
``pfind`` / ``pcp -r`` / ``prm -r`` walk ("Scalable Unix Commands for
Parallel Processors" runs its commands over file trees; here the tree
lives in the names).  :func:`tree_names` is the deterministic namer;
:func:`build_tree` materializes one through the batched metadata
surface, which is the workload's point: hundreds of small files whose
cost is all metadata, not data.
"""

from __future__ import annotations

from typing import List, Optional


def tree_names(root: str = "tree", depth: int = 2, fanout: int = 2,
               files_per_dir: int = 2) -> List[str]:
    """Deterministic deep-tree name family.

    Every "directory" level holds ``files_per_dir`` files and (down to
    ``depth`` levels) ``fanout`` subdirectories, e.g.
    ``tree/f0``, ``tree/d1/f0``, ``tree/d1/d0/f1`` ...  Total count is
    ``files_per_dir * (fanout^depth - 1) / (fanout - 1)`` for
    ``fanout > 1``.
    """
    if depth < 1 or fanout < 1 or files_per_dir < 1:
        raise ValueError("depth, fanout, and files_per_dir must be >= 1")
    names: List[str] = []

    def walk(prefix: str, level: int) -> None:
        for index in range(files_per_dir):
            names.append(f"{prefix}/f{index}")
        if level < depth:
            for branch in range(fanout):
                walk(f"{prefix}/d{branch}", level + 1)

    walk(root, 1)
    return names


def tree_block(name: str, block: int) -> bytes:
    """The payload of one tree-file block, derivable from its address
    (so readers can verify content without shared state)."""
    return f"{name}|b{block}|".encode()


def build_tree(client, root: str = "tree", depth: int = 2, fanout: int = 2,
               files_per_dir: int = 2, payload_blocks: int = 1,
               width: Optional[int] = None) -> "generator":
    """Generator: create a whole tree via one ``mcreate`` batch and
    write ``payload_blocks`` verifiable blocks per file.  Returns the
    name list.  Drive inside a simulated process
    (``names = yield from build_tree(client, ...)``)."""
    names = tree_names(root, depth=depth, fanout=fanout,
                       files_per_dir=files_per_dir)
    outcomes = yield from client.mcreate(names, width=width)
    for outcome in outcomes:
        outcome.unwrap()
    for name in names:
        for block in range(payload_blocks):
            yield from client.seq_write(name, tree_block(name, block))
    return names
