"""The span-baseline acceptance workload (S20).

One deterministic driver that exercises **every** Bridge Server op
handler — the naive view (create / open / sequential + random read and
write / delete), list I/O, the parallel-open view (open / read / write /
close with real worker deposits), the tool view's ``Get Info``, and a
disordered file with its block map — against the default single-server
configuration.  The exported Chrome trace of this workload is committed
as ``tests/baselines/trace_acceptance.json`` and re-exported by CI
(``scripts/span_baseline.py --check``): any event-sequence drift in the
request path fails the build with the offending subtree, which is the
repo's record-for-record replay guard for refactors of the request
engine.

Everything here must stay deterministic: fixed seed, fixed sizes, no
wall clock.
"""

from __future__ import annotations

from repro.core import JobController, ParallelWorker

#: Workload shape (small enough that the committed trace stays compact).
SEQ_BLOCKS = 12
PARALLEL_BLOCKS = 8
PARALLEL_WORKERS = 4
DISORDERED_BLOCKS = 6


def _payload(tag: str, index: int) -> bytes:
    return f"{tag}-{index:04d}|".encode()


def acceptance_system(obs=True, trace_export=None, **kwargs):
    """The acceptance configuration: p = 4 paper system, defaults."""
    from repro.harness.builders import paper_system

    return paper_system(4, seed=0, obs=obs, trace_export=trace_export,
                        **kwargs)


def acceptance_driver(system):
    """Drive one pass over every Bridge Server operation.

    Returns a summary dict of observable results so tests can assert the
    workload's data-level outcome alongside its span tree.
    """
    client = system.naive_client()
    summary = {}

    def main():
        # -- naive view ------------------------------------------------
        yield from client.create("alpha")
        for index in range(SEQ_BLOCKS):
            yield from client.seq_write("alpha", _payload("alpha", index))
        yield from client.open("alpha")
        chunks = []
        while True:
            block, data = yield from client.seq_read("alpha")
            if block is None:
                break
            chunks.append(data)
        summary["alpha_blocks"] = len(chunks)
        summary["alpha_ok"] = all(
            chunk.startswith(_payload("alpha", index))
            for index, chunk in enumerate(chunks)
        )
        yield from client.random_write("alpha", 3, _payload("patch", 3))
        summary["alpha_patched"] = (
            yield from client.random_read("alpha", 3)
        ).startswith(_payload("patch", 3))

        # -- list I/O --------------------------------------------------
        strided = yield from client.list_read("alpha", [0, 2, 4, 6])
        summary["list_read_ok"] = all(
            chunk.startswith(_payload("alpha", block))
            for block, chunk in zip([0, 2, 4, 6], strided)
        )
        new_total = yield from client.list_write(
            "alpha",
            [(SEQ_BLOCKS, _payload("tail", 0)), (SEQ_BLOCKS + 1, _payload("tail", 1))],
        )
        summary["list_write_total"] = new_total

        # -- disordered file + block map (tool view reads structure) ---
        yield from client.create("scatter", disordered=True)
        for index in range(DISORDERED_BLOCKS):
            yield from client.seq_write("scatter", _payload("scatter", index))
        block_map = yield from client.get_block_map("scatter")
        summary["scatter_map_len"] = len(block_map)
        yield from client.open("scatter")
        summary["scatter_first"] = (
            yield from client.random_read("scatter", 0)
        ).startswith(_payload("scatter", 0))

        # -- tool view -------------------------------------------------
        info = yield from client.get_info()
        summary["info_width"] = info.width

        # -- delete ----------------------------------------------------
        summary["freed"] = (yield from client.delete("scatter"))
        return summary

    system.run(main())

    # -- parallel-open view (controller + workers + deposits) ----------
    workers = [
        ParallelWorker(system.client_node, index, name="accept-w")
        for index in range(PARALLEL_WORKERS)
    ]
    received = {index: [] for index in range(PARALLEL_WORKERS)}

    def worker_body(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return
            received[worker.index].append((delivery.block_number, delivery.data))

    def controller_body():
        prep = system.naive_client()
        yield from prep.create("pfile")
        for index in range(PARALLEL_BLOCKS):
            yield from prep.seq_write("pfile", _payload("pfile", index))
        yield from prep.open("pfile")
        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("pfile", [w.port for w in workers])
        counts = []
        for _round in range(PARALLEL_BLOCKS // PARALLEL_WORKERS + 1):
            counts.append((yield from controller.read()))
        for worker in workers:
            worker.deposit(job, _payload("deposit", worker.index))
        total = yield from controller.write()
        yield from controller.close()
        return counts, total

    worker_processes = [
        system.client_node.spawn(worker_body(worker), name=f"accept-w{worker.index}")
        for worker in workers
    ]

    def parallel_main():
        from repro.sim import join_all

        result = yield from controller_body()
        yield join_all(worker_processes)
        return result

    counts, total = system.run(parallel_main())
    summary["parallel_counts"] = counts
    summary["parallel_total"] = total
    summary["parallel_ok"] = all(
        [block for block, _data in received[index]]
        == [index, index + PARALLEL_WORKERS]
        for index in range(PARALLEL_WORKERS)
    )
    return summary
