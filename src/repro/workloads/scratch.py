"""The scratch-file-as-message workload (S23).

"Large Scale Parallelization Using File-Based Communications" passes
messages between jobs as small files: a producer creates a file, a
consumer reads it once and deletes it.  At scale that is a pure
metadata storm — thousands of creates, stats, and deletes against tiny
payloads — which is exactly the traffic the S23 batched surface exists
for, and exactly what the block-streaming benches never exercise.

:func:`scratch_messages` drives N producers and M consumers over one
system.  Producers create their whole mailbox in one ``mcreate`` batch
and then write payloads; consumers poll with ``find``, gate readiness
on ``mstat`` (a message is ready once its payload is fully written —
the directory's ``total_blocks`` is updated by every write through the
server), read each ready message once, and retire it with one
``mdelete`` batch.  Producer mailboxes are partitioned across consumers
so every message is read exactly once, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Timeout, join_all


@dataclass
class ScratchReport:
    """Aggregate outcome of one scratch-message run."""

    produced: int
    consumed: int
    freed_blocks: int
    errors: int
    polls: int
    elapsed: float

    @property
    def complete(self) -> bool:
        return self.errors == 0 and self.consumed == self.produced


def scratch_block(name: str, block: int) -> bytes:
    """One message block, derivable from its address for verification."""
    return f"{name}#{block}|".encode()


def scratch_names(prefix: str, producer: int, count: int):
    """The deterministic mailbox of one producer."""
    return [f"{prefix}/p{producer}/m{index:04d}" for index in range(count)]


def scratch_messages(system, producers: int = 2, consumers: int = 2,
                     messages_per_producer: int = 6, payload_blocks: int = 1,
                     prefix: str = "mq", poll_interval: float = 0.02):
    """Generator: run the full produce/consume cycle; returns a
    :class:`ScratchReport`.  Drive with ``system.run(...)`` or spawn it
    next to other traffic (e.g. a live ``resize_fabric`` sweep)."""
    sim = system.sim
    started = sim.now
    lfs_count = len(system.bridges[0].lfs)

    def producer(index):
        # One client per process: a client is one reply mailbox.
        client = system.naive_client()
        names = scratch_names(prefix, index, messages_per_producer)
        outcomes = yield from client.mcreate(
            names, width=1, node_slots=[index % lfs_count]
        )
        for outcome in outcomes:
            outcome.unwrap()
        for name in names:
            for block in range(payload_blocks):
                yield from client.seq_write(name, scratch_block(name, block))
        return len(names)

    def consumer(index):
        client = system.naive_client()
        todo = {
            p: messages_per_producer
            for p in range(producers) if p % consumers == index
        }
        consumed = freed = errors = polls = 0
        while any(remaining > 0 for remaining in todo.values()):
            progressed = False
            for p, remaining in sorted(todo.items()):
                if remaining <= 0:
                    continue
                names = yield from client.find(f"{prefix}/p{p}/")
                if not names:
                    continue
                stats = yield from client.mstat(names)
                ready = [
                    outcome.value.name for outcome in stats
                    if outcome.ok
                    and outcome.value.total_blocks >= payload_blocks
                ]
                if not ready:
                    continue
                for name in ready:
                    chunks = yield from client.read_all(name)
                    if len(chunks) < payload_blocks:
                        errors += 1
                        continue
                    for block, chunk in enumerate(chunks):
                        expected = scratch_block(name, block)
                        if chunk[: len(expected)] != expected:
                            errors += 1
                deletions = yield from client.mdelete(ready)
                for deletion in deletions:
                    if deletion.ok:
                        freed += deletion.value
                        consumed += 1
                        todo[p] -= 1
                    else:
                        errors += 1
                progressed = True
            polls += 1
            if not progressed:
                yield Timeout(poll_interval)
        return consumed, freed, errors, polls

    processes = [
        system.client_node.spawn(producer(p), name=f"scratch-producer-{p}")
        for p in range(producers)
    ]
    consumer_processes = [
        system.client_node.spawn(consumer(c), name=f"scratch-consumer-{c}")
        for c in range(consumers)
    ]
    produced_counts = yield join_all(processes)
    consumer_results = yield join_all(consumer_processes)
    consumed = sum(result[0] for result in consumer_results)
    freed = sum(result[1] for result in consumer_results)
    errors = sum(result[2] for result in consumer_results)
    polls = sum(result[3] for result in consumer_results)
    return ScratchReport(
        produced=sum(produced_counts),
        consumed=consumed,
        freed_blocks=freed,
        errors=errors,
        polls=polls,
        elapsed=sim.now - started,
    )
