"""Workload generators and file builders for experiments."""

from repro.workloads.acceptance import acceptance_driver, acceptance_system
from repro.workloads.datagen import (
    few_distinct_keys,
    pattern_chunks,
    record_chunks,
    reversed_keys,
    sorted_keys,
    text_chunks,
    uniform_keys,
)
from repro.workloads.traces import (
    ReplayResult,
    hotspot_pattern,
    random_trace,
    replay_trace,
    scatter_pattern,
    sequential_trace,
    strided_pattern,
    strided_trace,
    zipf_trace,
)
from repro.workloads.files import (
    build_file,
    build_record_file,
    build_text_file,
    read_file,
)
from repro.workloads.scratch import (
    ScratchReport,
    scratch_block,
    scratch_messages,
    scratch_names,
)
from repro.workloads.trees import build_tree, tree_block, tree_names

__all__ = [
    "acceptance_driver",
    "acceptance_system",
    "build_file",
    "build_record_file",
    "build_text_file",
    "build_tree",
    "few_distinct_keys",
    "pattern_chunks",
    "read_file",
    "record_chunks",
    "reversed_keys",
    "scratch_block",
    "scratch_messages",
    "scratch_names",
    "sorted_keys",
    "text_chunks",
    "tree_block",
    "tree_names",
    "uniform_keys",
    "ReplayResult",
    "ScratchReport",
    "hotspot_pattern",
    "random_trace",
    "replay_trace",
    "scatter_pattern",
    "sequential_trace",
    "strided_pattern",
    "strided_trace",
    "zipf_trace",
]
