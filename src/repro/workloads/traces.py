"""Access-pattern traces: generate and replay block-level access streams.

Section 3 notes that file-usage information from uniprocessor systems
"does not necessarily apply to the multiprocessor environment" and bets
on sequential access dominating.  These generators make that bet testable:
build a trace (sequential / strided / uniform-random / Zipf-hotspot),
replay it through the naive view, and compare per-pattern costs — random
access over linked-list files is exactly where the bet pays off or not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List


def sequential_trace(file_blocks: int, repeats: int = 1) -> List[int]:
    """0, 1, 2, ... n-1, repeated — the paper's expected common case."""
    if file_blocks < 0 or repeats < 0:
        raise ValueError("sizes must be non-negative")
    return list(range(file_blocks)) * repeats

def strided_trace(file_blocks: int, stride: int) -> List[int]:
    """Every ``stride``-th block, wrapping until all blocks are visited.

    With gcd(stride, n) == 1 this is a permutation of the file; matrix
    column walks and record-skipping readers look like this.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if file_blocks <= 0:
        return []
    visited = []
    position = 0
    for _ in range(file_blocks):
        visited.append(position)
        position = (position + stride) % file_blocks
    return visited


def random_trace(file_blocks: int, accesses: int, seed: int = 0) -> List[int]:
    """Uniform random block accesses."""
    if file_blocks <= 0:
        return []
    rng = random.Random(seed)
    return [rng.randrange(file_blocks) for _ in range(accesses)]


def zipf_trace(file_blocks: int, accesses: int, skew: float = 1.2,
               seed: int = 0) -> List[int]:
    """Zipf-distributed hotspot accesses (block 0 hottest)."""
    if file_blocks <= 0:
        return []
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(file_blocks)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    trace = []
    for _ in range(accesses):
        point = rng.random()
        low, high = 0, file_blocks - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        trace.append(low)
    return trace


# ---------------------------------------------------------------------------
# Noncontiguous patterns (S17): block sets for list I/O & collective access
# ---------------------------------------------------------------------------


def strided_pattern(start: int, stride: int, count: int,
                    run_length: int = 1) -> List[int]:
    """Regular strided scatter: ``run_length`` blocks every ``stride``.

    The canonical noncontiguous shape (a column walk over a row-major
    matrix); feed it to ``ListIORequest.from_blocks`` or straight into
    ``BridgeClient.list_read``.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if run_length < 1:
        raise ValueError(f"run_length must be >= 1, got {run_length}")
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    if run_length > stride:
        raise ValueError(
            f"run_length {run_length} exceeds stride {stride}: runs overlap"
        )
    return [
        start + i * stride + j
        for i in range(count)
        for j in range(run_length)
    ]


def scatter_pattern(file_blocks: int, count: int, seed: int = 0) -> List[int]:
    """Random scatter: ``count`` distinct blocks in ascending order.

    The worst case for request coalescing — no adjacency to exploit —
    which makes it the control arm of the list-I/O ablation.
    """
    if file_blocks < 1:
        raise ValueError(f"file_blocks must be >= 1, got {file_blocks}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count > file_blocks:
        raise ValueError(
            f"cannot pick {count} distinct blocks from {file_blocks}"
        )
    rng = random.Random(seed)
    return sorted(rng.sample(range(file_blocks), count))


def hotspot_pattern(file_blocks: int, count: int, hot_fraction: float = 0.1,
                    hot_weight: float = 0.9, seed: int = 0) -> List[int]:
    """Hotspot scatter: most accesses land in a small hot region.

    ``hot_fraction`` of the file receives ``hot_weight`` of the accesses
    (duplicates allowed — the point is that list I/O dedups them while
    the naive path pays per access).
    """
    if file_blocks < 1:
        raise ValueError(f"file_blocks must be >= 1, got {file_blocks}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 0 < hot_fraction <= 1:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if not 0 <= hot_weight <= 1:
        raise ValueError(f"hot_weight must be in [0, 1], got {hot_weight}")
    hot_blocks = max(1, int(file_blocks * hot_fraction))
    rng = random.Random(seed)
    pattern = []
    for _ in range(count):
        if rng.random() < hot_weight:
            pattern.append(rng.randrange(hot_blocks))
        else:
            pattern.append(rng.randrange(file_blocks))
    return pattern


@dataclass
class ReplayResult:
    """Timing of one trace replay."""

    pattern: str
    accesses: int
    elapsed: float

    @property
    def ms_per_access(self) -> float:
        return self.elapsed / self.accesses * 1e3 if self.accesses else 0.0


def replay_trace(system, name: str, trace: Iterable[int],
                 pattern: str = "trace"):
    """Replay a block trace via naive random reads; returns ReplayResult.

    Drive with ``system.run(replay_trace(...))`` — this is a generator.
    """
    client = system.naive_client()
    yield from client.open(name)
    sim = system.sim
    start = sim.now
    count = 0
    for block in trace:
        yield from client.random_read(name, block)
        count += 1
    return ReplayResult(pattern=pattern, accesses=count,
                        elapsed=sim.now - start)
