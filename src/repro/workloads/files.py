"""File builders: install workloads into a Bridge system."""

from __future__ import annotations

from typing import List, Optional

from repro.workloads.datagen import record_chunks, text_chunks, uniform_keys


def build_file(system, name: str, chunks: List[bytes], width=None,
               node_slots=None, start: int = 0):
    """Create ``name`` and write every chunk through the naive view.

    Returns the file id.  Runs the simulation to completion, so call it
    during experiment setup (measurements should use elapsed-time deltas).
    """
    client = system.naive_client()

    def body():
        file_id = yield from client.create(
            name, width=width, node_slots=node_slots, start=start
        )
        yield from client.write_all(name, chunks)
        return file_id

    return system.run(body(), name=f"build:{name}")


def build_record_file(system, name: str, keys, payload_bytes: int = 16,
                      seed: int = 0, **create_kwargs):
    """A sortable record file, one record per key."""
    chunks = record_chunks(list(keys), payload_bytes=payload_bytes, seed=seed)
    return build_file(system, name, chunks, **create_kwargs)


def build_text_file(system, name: str, block_count: int, seed: int = 0,
                    needle: Optional[bytes] = None, needle_every: int = 0,
                    **create_kwargs):
    """A text file of fixed-length lines, optionally with planted needles."""
    chunks = text_chunks(
        block_count, seed=seed, needle=needle, needle_every=needle_every
    )
    return build_file(system, name, chunks, **create_kwargs)


def read_file(system, name: str) -> List[bytes]:
    """Read a whole interleaved file back through the naive view."""
    client = system.naive_client()

    def body():
        return (yield from client.read_all(name))

    return system.run(body(), name=f"read:{name}")
