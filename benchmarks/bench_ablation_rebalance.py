"""S24 — load-aware rebalancing: heat-driven arc shedding off vs on.

Both arms drive the same Zipf-skewed S21 open-loop mix at 4 partitions
over the consistent-hash fabric, with the heat map installed and the
control loop sweeping; the *static* arm runs the loop ``watch_only`` (it
records the identical imbalance trajectory but never acts) while the
*rebalance* arm lets the policy shed hot arcs through the live migration
sweep.  The diff between the arms is therefore exactly the policy's
effect.  The check asserts the S24 headline — the rebalancer narrows the
hot/cold partition busy-fraction spread, improves goodput (mixed-
workload speedup toward the route bound) and read p99, and raises the
popularity-weighted route bound of the final ring — and the safety
claim: zero lost, misrouted, or duplicated files, routed-vs-direct
byte-identical read-back, and clean fsck across every automatic sweep.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_rebalance.py --quick
"""

import sys

from _emit import write_bench_json
from repro.analysis import format_table
from repro.harness.experiments import run_rebalance_experiment

RATE = 150.0
DURATION = 16.0
QUICK_DURATION = 8.0
SERVERS = 4
SKEW = 1.2
SEED = 7

#: (label, active) — identical traffic, policy watching vs acting.
ARMS = (("static", False), ("rebalance", True))


def sweep(quick: bool = False):
    duration = QUICK_DURATION if quick else DURATION
    return {
        label: run_rebalance_experiment(
            rate=RATE, duration=duration, servers=SERVERS, skew=SKEW,
            seed=SEED, active=active,
        )
        for label, active in ARMS
    }


def check(runs, quick: bool = False) -> None:
    static, rebalance = runs["static"], runs["rebalance"]
    # The arms are what they claim: watcher never acts, policy does.
    assert not static.active and static.actions == 0, static.sweeps
    assert rebalance.active and rebalance.actions >= 1, rebalance.sweeps
    assert rebalance.moves >= 1 and rebalance.arcs_shed >= 1
    # Safety across every automatic sweep: ownership scan, duplicate
    # scan, routed-vs-direct byte compare, and EFS fsck all clean.
    for label, run in runs.items():
        assert run.lost == 0, (label, run.lost)
        assert run.misrouted == 0, (label, run.misrouted)
        assert run.duplicated == 0, (label, run.duplicated)
        assert run.content_mismatched == 0, (label, run.content_mismatched)
        assert run.fsck_clean, label
        assert int(run.summary["completed"]) > 0, label
        assert int(run.summary["failed"]) == 0, (label, run.summary)
    # The headline: shedding hot arcs narrows the hot/cold busy spread...
    assert rebalance.utilization_spread < static.utilization_spread, (
        rebalance.busy_fractions, static.busy_fractions
    )
    # ...and the final ring's popularity-weighted route bound moved
    # toward the perfect SERVERS bound (the static arm's never changes).
    assert static.route_bound_final == static.route_bound_static
    assert rebalance.route_bound_final > rebalance.route_bound_static, (
        rebalance.route_bound_static, rebalance.route_bound_final
    )
    if quick:
        # The short smoke run stops before the migration cost amortizes;
        # the latency/goodput headline is a full-duration claim.
        return
    # ...recovers mixed-workload speedup (goodput at equal offered load)
    # and read latency.
    assert rebalance.goodput > static.goodput, (
        rebalance.goodput, static.goodput
    )
    assert rebalance.p99("read") < static.p99("read"), (
        rebalance.p99("read"), static.p99("read")
    )


def render(runs) -> str:
    rows = []
    for label, run in runs.items():
        rows.append([
            label,
            run.actions,
            run.moves,
            run.arcs_shed,
            round(run.utilization_spread, 3),
            round(run.final_imbalance, 2),
            round(run.goodput, 1),
            round(run.p99("read") * 1e3, 1),
            round(run.route_bound_final, 2),
            "intact" if run.files_intact and run.fsck_clean else "DAMAGED",
        ])
    return format_table(
        ["arm", "actions", "moves", "arcs", "busy spread", "imbalance",
         "goodput", "read p99 ms", "route bound", "files"],
        rows,
        title=(f"load-aware rebalancing, {RATE:g} req/s, zipf {SKEW:g}, "
               f"{SERVERS} partitions, seed {SEED}"),
    )


def to_json(runs) -> dict:
    arms = {}
    for label, run in runs.items():
        arms[label] = {
            "active": run.active,
            "sweeps": run.sweeps,
            "actions": run.actions,
            "moves": run.moves,
            "arcs_shed": run.arcs_shed,
            "busy_fractions": run.busy_fractions,
            "utilization_spread": run.utilization_spread,
            "final_imbalance": run.final_imbalance,
            "route_bound_static": run.route_bound_static,
            "route_bound_final": run.route_bound_final,
            "goodput": run.goodput,
            "read_p99_ms": run.p99("read") * 1e3,
            "read_p99_trajectory_ms": [
                p99 * 1e3 for p99 in run.p99_trajectory("read")
            ],
            "summary": run.summary,
            "lost": run.lost,
            "misrouted": run.misrouted,
            "duplicated": run.duplicated,
            "content_mismatched": run.content_mismatched,
            "fsck_clean": run.fsck_clean,
            "makespan": run.makespan,
        }
    return {
        "rate": RATE,
        "duration": DURATION,
        "servers": SERVERS,
        "skew": SKEW,
        "seed": SEED,
        "arms": arms,
    }


def test_rebalance_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_rebalance", render(runs))
    write_bench_json("rebalance", to_json(runs))
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    print(render(runs))
    if not quick:
        write_bench_json("rebalance", to_json(runs))
    check(runs, quick=quick)
    print("rebalance ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
