"""S19 — observability overhead smoke.

With ``obs=None`` every hook in the hot paths is a single
``if sim.obs is not None`` guard, so instrumentation must be free when
disabled.  Two properties are asserted:

* **exactly zero simulated overhead**: the obs-off and obs-on runs
  execute the same number of events and end at the same simulated
  clock (recording is synchronous — no extra events are scheduled);
* **host wall-clock overhead below the noise floor**: two obs-off runs
  executed back-to-back in every round must agree within 5% on the
  median of the per-round ratios, which bounds any measurable cost of
  the disabled guards (the paired-ratio median cancels the host drift
  and throttling that make raw minima unstable in CI containers).

The obs-on arm reports the real cost of recording spans, metrics, and
timelines, and exports a validated Chrome trace
(``benchmarks/results/trace_obs.json``) that the CI job uploads as a
workflow artifact.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
"""

import gc
import json
import pathlib
import sys
import time

from repro.analysis import format_table
from repro.harness import paper_system
from repro.obs import validate_trace_document

TRACE_PATH = pathlib.Path(__file__).parent / "results" / "trace_obs.json"


def _workload(system, blocks: int):
    client = system.naive_client()

    def body():
        yield from client.create("ov", width=system.width)
        for i in range(blocks):
            yield from client.seq_write("ov", bytes([i % 256]) * 960)
        yield from client.open("ov")
        for _ in range(blocks):
            yield from client.seq_read("ov")

    return body()


def _run_arm(p: int, blocks: int, obs: bool, trace_export=None):
    system = paper_system(p, obs=obs, trace_export=trace_export)
    # Collect the previous run's garbage outside the timed region so
    # deferred collection cost is not attributed to whichever arm
    # happens to run next.
    gc.collect()
    start = time.perf_counter()
    system.run(_workload(system, blocks))
    return time.perf_counter() - start, system


def sweep(quick: bool = False):
    p, blocks, rounds = (4, 512, 9) if quick else (8, 512, 9)
    TRACE_PATH.parent.mkdir(exist_ok=True)
    off_a, off_b, on = [], [], []
    arms = {}
    # Warm-up: the very first run pays import and allocator start-up
    # cost that would otherwise bias batch A.
    _run_arm(p, blocks, obs=False)
    for round_index in range(rounds):
        # Interleave the batches so drift (thermal, scheduler) hits all
        # three arms alike instead of biasing whichever ran last.
        host, system = _run_arm(p, blocks, obs=False)
        off_a.append(host)
        arms["off"] = system
        host, _system = _run_arm(p, blocks, obs=False)
        off_b.append(host)
        trace = str(TRACE_PATH) if round_index == rounds - 1 else None
        host, system = _run_arm(p, blocks, obs=True, trace_export=trace)
        on.append(host)
        arms["on"] = system
    ratios = sorted(b / a for a, b in zip(off_a, off_b))
    return {
        "p": p,
        "blocks": blocks,
        "rounds": rounds,
        "host_off_a": min(off_a),
        "host_off_b": min(off_b),
        "host_on": min(on),
        "off_ratio_median": ratios[len(ratios) // 2],
        "events_off": arms["off"].sim.events_executed,
        "events_on": arms["on"].sim.events_executed,
        "clock_off": arms["off"].sim.now,
        "clock_on": arms["on"].sim.now,
        "spans": len(arms["on"].obs.spans),
    }


def check(result) -> None:
    # Disabled observability schedules nothing: same events, same clock.
    assert result["events_off"] == result["events_on"], result
    assert result["clock_off"] == result["clock_on"], result
    # The disabled guards cost less than the measurement noise floor:
    # paired back-to-back obs-off runs agree within 5% on the median
    # per-round ratio.
    spread = abs(result["off_ratio_median"] - 1.0)
    assert spread < 0.05, f"obs-off noise floor {spread:.1%} >= 5%"
    # The exported trace is well-formed and carries the span tree.
    document = json.loads(TRACE_PATH.read_text())
    problems = validate_trace_document(document)
    assert not problems, problems
    assert result["spans"] > 0
    assert any(
        event.get("name", "").startswith("call.seq_read")
        for event in document["traceEvents"]
    )


def render(result) -> str:
    overhead = result["host_on"] / result["host_off_a"] - 1.0
    rows = [
        ["obs off (batch A)", result["host_off_a"], result["events_off"], "-"],
        ["obs off (batch B)", result["host_off_b"], result["events_off"], "-"],
        ["obs on", result["host_on"], result["events_on"], result["spans"]],
    ]
    table = format_table(
        ["arm", "host s (min of k)", "sim events", "spans"],
        rows,
        title=(
            f"naive stream of {result['blocks']} blocks, p = "
            f"{result['p']}, min of {result['rounds']} interleaved rounds"
        ),
    )
    table += (
        f"\n\nobs-on host overhead: {overhead:+.1%}; obs-off paired-"
        f"ratio median: {result['off_ratio_median']:.3f}; simulated "
        "overhead when disabled: zero events, identical clock (asserted)"
    )
    return table


def test_obs_overhead(benchmark):
    from benchmarks.conftest import emit, run_once

    result = run_once(benchmark, sweep)
    emit("obs_overhead", render(result))
    check(result)


def main(argv) -> int:
    quick = "--quick" in argv
    result = sweep(quick=quick)
    print(render(result))
    check(result)
    print("obs overhead: all assertions passed"
          + (" (quick mode)" if quick else ""))
    print(f"wrote {TRACE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
