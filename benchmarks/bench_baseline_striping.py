"""E12 — Bridge vs disk striping vs a conventional sequential FS.

Section 2: striping removes the device bottleneck but "striped files...
are limited by the throughput of the file system software"; Bridge's
whole point is to parallelize the software too.  This bench copies/reads
the same data volume through all three systems across device counts.
"""

from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.harness.experiments import run_striping_comparison


def sweep():
    return {d: run_striping_comparison(d, blocks=1024) for d in (2, 4, 8, 16, 32)}


def test_bridge_vs_striping_vs_sequential(benchmark):
    runs = run_once(benchmark, sweep)
    rows = [
        [d, run.sequential_seconds, run.striped_seconds,
         run.bridge_tool_seconds]
        for d, run in sorted(runs.items())
    ]
    emit(
        "baseline_striping",
        format_table(
            ["devices", "sequential FS (s)", "striped FS (s)", "Bridge tool (s)"],
            rows,
            title=f"Moving a {runs[2].blocks}-block file through each system",
        ),
    )

    for d, run in runs.items():
        # striping always beats one disk behind one FS
        assert run.striped_seconds < run.sequential_seconds
        # Bridge beats the sequential FS everywhere
        assert run.bridge_tool_seconds < run.sequential_seconds
    # Bridge keeps scaling where striping's serial software flattens:
    stripe_gain = runs[2].striped_seconds / runs[32].striped_seconds
    bridge_gain = runs[2].bridge_tool_seconds / runs[32].bridge_tool_seconds
    assert bridge_gain > stripe_gain
    # and at 32 devices Bridge is the fastest system outright (the
    # crossover the paper's section 2 argument predicts)
    assert runs[32].bridge_tool_seconds < runs[32].striped_seconds
