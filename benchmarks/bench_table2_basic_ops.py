"""E2 — Table 2: basic Bridge operation costs.

Regenerates the paper's cost formulas by measuring Open / Read / Write /
Create / Delete through the naive view across p, then fitting the same
functional forms (Create ~ a + b*p; Read ~ a + b*p/n; Delete ~ a*n/p).

Paper (Table 2):  Delete 20*n/p ms | Create 145 + 17.5p ms | Open 80 ms
                  Read 9.0 + 500p/n ms | Write 31 ms
"""

from benchmarks.conftest import emit, run_once
from repro.analysis import (
    fit_line,
    format_table,
    table2_create_ms,
    table2_delete_ms,
    table2_open_ms,
    table2_read_ms,
    table2_write_ms,
)
from repro.harness.experiments import measure_table2


def sweep():
    return {p: measure_table2(p, file_blocks=256) for p in (2, 4, 8, 16, 32)}


def test_table2_basic_ops(benchmark):
    measurements = run_once(benchmark, sweep)

    rows = []
    for p, m in sorted(measurements.items()):
        rows.append(
            [
                p,
                m.open_ms, table2_open_ms(),
                m.read_ms_per_block, table2_read_ms(m.file_blocks, p),
                m.write_ms_per_block, table2_write_ms(),
                m.create_ms, table2_create_ms(p),
                m.delete_ms_per_block_per_lfs, 20.0,
            ]
        )
    table = format_table(
        [
            "p",
            "open ms", "paper",
            "read ms/blk", "paper",
            "write ms/blk", "paper",
            "create ms", "paper",
            "delete ms/blk/LFS", "paper",
        ],
        rows,
        title="Table 2: basic Bridge operations (measured vs paper formulas)",
    )

    ps = sorted(measurements)
    create_fit = fit_line(ps, [measurements[p].create_ms for p in ps])
    table += (
        f"\n\ncreate fit: {create_fit[0]:.1f} + {create_fit[1]:.2f}*p ms"
        f"   (paper: 145 + 17.5*p ms)"
    )
    emit("table2_basic_ops", table)

    # --- shape assertions -------------------------------------------------
    m2, m32 = measurements[2], measurements[32]
    # Open: near 80 ms and roughly constant in p
    assert 40.0 < m2.open_ms < 160.0
    assert abs(m32.open_ms - m2.open_ms) < 0.5 * m2.open_ms
    # Read: beats the 15 ms disk latency thanks to track buffering
    assert m2.read_ms_per_block < 15.0
    # Write: near 31 ms, independent of p
    assert 25.0 < m2.write_ms_per_block < 50.0
    assert abs(m32.write_ms_per_block - m2.write_ms_per_block) < 6.0
    # Create: linear in p with a positive slope near the paper's 17.5
    assert 8.0 < create_fit[1] < 30.0
    # Delete: ~20 ms per block per LFS; total drops as p grows
    assert 14.0 < m2.delete_ms_per_block_per_lfs < 30.0
    assert m32.delete_ms_total < m2.delete_ms_total
