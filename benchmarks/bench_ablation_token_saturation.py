"""E11 — the token-circuit saturation analysis (section 6 / [17]).

"With sufficiently large p, the token will eventually be unable to
complete a circuit of the nodes in the time it takes to read and write a
record.  At that point performance should begin to taper off...  32
nodes is clearly well below the point at which the merge phase of the
sort tool would be unable to take advantage of additional parallelism."

This bench merges two pre-sorted files at growing width and compares the
measured records/second curve against the analytic saturation width
(write_time / token_hop_time).
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.harness.experiments import run_token_saturation
from repro.tools.sort import SortCostModel


def sweep():
    records = 512
    return {w: run_token_saturation(w, records=records) for w in (2, 4, 8, 16, 32)}


def test_token_saturation(benchmark):
    runs = run_once(benchmark, sweep)
    model = SortCostModel()
    rows = [
        [w, run.elapsed, run.records_per_second,
         run.records / model.merge_record_rate(w) / run.records
         / (1 / model.merge_record_rate(w)) * run.records_per_second]
        for w, run in sorted(runs.items())
    ]
    # simpler model column: predicted records/second
    rows = [
        [w, run.elapsed, run.records_per_second,
         1.0 / model.merge_record_rate(w)]
        for w, run in sorted(runs.items())
    ]
    table = format_table(
        ["merge width", "time (s)", "records/s", "model records/s"],
        rows,
        title="Single pair-merge throughput vs width (512 records)",
    )
    table += (
        f"\n\nanalytic saturation width: {model.saturation_width():.0f} "
        "(write_time / token_hop_time) — gains flatten beyond it"
    )
    emit("ablation_token_saturation", table)
    write_bench_json("token_saturation", {
        "saturation_width": model.saturation_width(),
        "by_width": {
            str(w): {
                "elapsed_seconds": run.elapsed,
                "records_per_second": run.records_per_second,
                "model_records_per_second": 1.0 / model.merge_record_rate(w),
            }
            for w, run in sorted(runs.items())
        },
    })

    rates = {w: r.records_per_second for w, r in runs.items()}
    # throughput rises with width in the disk-bound regime...
    assert rates[8] > rates[2] * 1.8
    # ...but the relative gain per doubling shrinks as the token binds
    low_gain = rates[8] / rates[4]
    high_gain = rates[32] / rates[16]
    assert high_gain < low_gain
    # and the last doubling is far from 2x
    assert high_gain < 1.6
