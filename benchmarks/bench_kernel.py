"""Host-side performance of the simulation kernel itself.

Not a paper artifact — this measures the substrate's wall-clock
throughput (events/second, RPC round trips/second) so regressions in the
kernel show up in the benchmark suite.  Uses real multi-round
pytest-benchmark timing since these are wall-clock measurements.

The events/second floor guards the S21 hot-path work (cached
``_resume`` dispatch, zero-listener run loop): a ~10^5-event open-loop
traffic run has to stay interactive, so the bare kernel must clear
``EVENTS_PER_SECOND_FLOOR`` on any plausible CI host.  The floor is
set well below typical measured rates (~10x headroom) to stay
noise-proof while still catching a real regression such as
reintroducing per-event bound-method allocation.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --quick
"""

import sys
import time

from repro.machine import Client, Machine, Server
from repro.sim import Mailbox, Simulator, Timeout

#: Conservative wall-clock floor for the zero-listener fast path.
EVENTS_PER_SECOND_FLOOR = 100_000


def _timeout_storm(events: int = 100_000):
    """Pure-Timeout run: the zero-listener fast path, nothing else."""
    sim = Simulator()

    def ticker():
        for _ in range(events):
            yield Timeout(0.001)

    sim.spawn(ticker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_executed, elapsed


def test_kernel_timeout_events_per_second(benchmark):
    def run():
        sim = Simulator()

        def ticker():
            for _ in range(20_000):
                yield Timeout(0.001)

        sim.spawn(ticker())
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 20_000


def test_kernel_message_ping_pong(benchmark):
    def run():
        sim = Simulator()
        left = Mailbox(sim, "left")
        right = Mailbox(sim, "right")

        def ping():
            for _ in range(5_000):
                right.deliver("ping")
                yield left.recv()

        def pong():
            for _ in range(5_000):
                yield right.recv()
                left.deliver("pong")

        sim.spawn(ping())
        sim.spawn(pong())
        sim.run()
        return True

    assert benchmark(run)


class _NullServer(Server):
    def op_noop(self):
        yield Timeout(0.0)
        return None


def test_kernel_rpc_roundtrips(benchmark):
    def run():
        sim = Simulator()
        machine = Machine(sim, 2)
        server = _NullServer(machine.node(0), "null")
        client = Client(machine.node(1))

        def caller():
            for _ in range(2_000):
                yield from client.call(server.port, "noop")

        sim.run_process(caller())
        return server.requests_served

    served = benchmark(run)
    assert served == 2_000


def test_kernel_events_per_second_floor(benchmark):
    def run():
        executed, elapsed = _timeout_storm()
        return executed / elapsed if elapsed > 0 else float("inf")

    rate = benchmark(run)
    assert rate >= EVENTS_PER_SECOND_FLOOR, (
        f"kernel fast path at {rate:,.0f} ev/s, "
        f"floor is {EVENTS_PER_SECOND_FLOOR:,}"
    )


def main(argv) -> int:
    events = 20_000 if "--quick" in argv else 100_000
    best = 0.0
    for _attempt in range(3):  # best-of-3 absorbs host noise
        executed, elapsed = _timeout_storm(events)
        best = max(best, executed / elapsed if elapsed > 0 else 0.0)
    print(f"kernel fast path: {best:,.0f} events/s "
          f"({executed:,} events, best of 3)")
    assert best >= EVENTS_PER_SECOND_FLOOR, (
        f"kernel fast path at {best:,.0f} ev/s, "
        f"floor is {EVENTS_PER_SECOND_FLOOR:,}"
    )
    print("kernel floor: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
