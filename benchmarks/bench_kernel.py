"""Host-side performance of the simulation kernel itself.

Not a paper artifact — this measures the substrate's wall-clock
throughput (events/second, RPC round trips/second) so regressions in the
kernel show up in the benchmark suite.  Uses real multi-round
pytest-benchmark timing since these are wall-clock measurements.
"""

from repro.machine import Client, Machine, Server
from repro.sim import Mailbox, Simulator, Timeout


def test_kernel_timeout_events_per_second(benchmark):
    def run():
        sim = Simulator()

        def ticker():
            for _ in range(20_000):
                yield Timeout(0.001)

        sim.spawn(ticker())
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 20_000


def test_kernel_message_ping_pong(benchmark):
    def run():
        sim = Simulator()
        left = Mailbox(sim, "left")
        right = Mailbox(sim, "right")

        def ping():
            for _ in range(5_000):
                right.deliver("ping")
                yield left.recv()

        def pong():
            for _ in range(5_000):
                yield right.recv()
                left.deliver("pong")

        sim.spawn(ping())
        sim.spawn(pong())
        sim.run()
        return True

    assert benchmark(run)


class _NullServer(Server):
    def op_noop(self):
        yield Timeout(0.0)
        return None


def test_kernel_rpc_roundtrips(benchmark):
    def run():
        sim = Simulator()
        machine = Machine(sim, 2)
        server = _NullServer(machine.node(0), "null")
        client = Client(machine.node(1))

        def caller():
            for _ in range(2_000):
                yield from client.call(server.port, "noop")

        sim.run_process(caller())
        return server.requests_served

    served = benchmark(run)
    assert served == 2_000
