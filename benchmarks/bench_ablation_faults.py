"""E13 — section 6's fault-intolerance discussion, made measurable.

One disk failure ruins every interleaved file; mirroring (shadow copy
shifted one node) survives it at exactly 2x storage.  The table also
reports the analytic loss fractions for the placement alternatives.
"""

from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.faults import (
    files_lost_fraction_interleaved,
    files_lost_fraction_mirrored,
    files_lost_fraction_single_node,
)
from repro.harness.experiments import run_faults_experiment


def sweep():
    return {p: run_faults_experiment(p=p, blocks=4 * p) for p in (4, 8, 16)}


def test_fault_tolerance(benchmark):
    runs = run_once(benchmark, sweep)
    rows = []
    for p, run in sorted(runs.items()):
        rows.append(
            [
                p,
                "LOST" if run.plain_lost else "ok",
                "recovered" if run.mirrored_recovered else "LOST",
                run.mirror_fallbacks,
                run.mirror_storage_blocks / run.plain_storage_blocks,
                files_lost_fraction_interleaved(p),
                files_lost_fraction_single_node(p),
                files_lost_fraction_mirrored(p, 2),
            ]
        )
    emit(
        "ablation_faults",
        format_table(
            ["p", "plain file", "mirrored file", "shadow reads",
             "storage factor", "loss frac interleaved",
             "loss frac single-node", "loss frac mirrored (2 fails)"],
            rows,
            title="One disk failure: observed outcome and analytic loss fractions",
        ),
    )
    for p, run in runs.items():
        assert run.plain_lost, f"p={p}: interleaved file survived?!"
        assert run.mirrored_recovered
        assert run.mirror_storage_blocks == 2 * run.plain_storage_blocks
        assert run.mirror_fallbacks == run.blocks // p  # the dead column
