"""E13 — section 6's fault-intolerance discussion, made measurable.

One disk failure ruins every interleaved file; mirroring (shadow copy
shifted one node) survives it at exactly 2x storage; rotating parity
(S16) survives it at p/(p-1)x storage plus a read-modify-write penalty
on every write.  Two tables:

* the original survival table (observed outcome + analytic loss
  fractions for the placement alternatives);
* the redundancy-scheme ablation: none / mirror / parity through the
  full fail -> degraded read -> repair -> online rebuild lifecycle, with
  storage overhead, device write traffic, degraded-read latency, and
  rebuild time — the section 6 cost argument made quantitative.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.faults import (
    files_lost_fraction_interleaved,
    files_lost_fraction_mirrored,
    files_lost_fraction_single_node,
)
from repro.harness.experiments import (
    run_faults_experiment,
    run_redundancy_experiment,
)
from repro.redundancy import SCHEMES, files_lost_fraction_parity


def sweep():
    survival = {p: run_faults_experiment(p=p, blocks=4 * p) for p in (4, 8, 16)}
    lifecycle = {
        (p, scheme): run_redundancy_experiment(scheme, p=p, blocks=4 * p)
        for p in (4, 8)
        for scheme in SCHEMES
    }
    return survival, lifecycle


def _survival_table(runs):
    rows = []
    for p, run in sorted(runs.items()):
        rows.append(
            [
                p,
                "LOST" if run.plain_lost else "ok",
                "recovered" if run.mirrored_recovered else "LOST",
                run.mirror_fallbacks,
                run.mirror_storage_blocks / run.plain_storage_blocks,
                files_lost_fraction_interleaved(p),
                files_lost_fraction_single_node(p),
                files_lost_fraction_mirrored(p, 2),
                files_lost_fraction_parity(p, 2),
            ]
        )
    return format_table(
        ["p", "plain file", "mirrored file", "shadow reads",
         "storage factor", "loss frac interleaved",
         "loss frac single-node", "loss frac mirrored (2 fails)",
         "loss frac parity (2 fails)"],
        rows,
        title="One disk failure: observed outcome and analytic loss fractions",
    )


def _lifecycle_table(runs):
    rows = []
    for (p, scheme), run in sorted(runs.items()):
        rows.append(
            [
                p,
                scheme,
                run.storage_factor,
                run.write_ops_per_block,
                run.healthy_read_s_per_block * 1e3,
                ("LOST" if run.degraded_read_s_per_block is None
                 else run.degraded_read_s_per_block * 1e3),
                run.degraded_reconstructions,
                ("-" if run.rebuild_seconds is None
                 else run.rebuild_seconds),
                "ok" if run.content_ok else "CORRUPT",
                "clean" if run.fsck_clean else "DIRTY",
            ]
        )
    return format_table(
        ["p", "scheme", "storage factor", "dev writes/blk",
         "healthy read ms/blk", "degraded read ms/blk", "reconstructions",
         "rebuild s", "content", "fsck"],
        rows,
        title=("Redundancy schemes through fail -> degraded -> repair -> "
               "rebuild (storage p/(p-1) for parity vs 2x for mirror)"),
    )


def test_fault_tolerance(benchmark):
    survival, lifecycle = run_once(benchmark, sweep)
    emit(
        "ablation_faults",
        _survival_table(survival) + "\n\n" + _lifecycle_table(lifecycle),
    )
    write_bench_json("faults", {
        "survival": {
            str(p): {
                "plain_lost": run.plain_lost,
                "mirrored_recovered": run.mirrored_recovered,
                "mirror_fallbacks": run.mirror_fallbacks,
                "storage_factor": (
                    run.mirror_storage_blocks / run.plain_storage_blocks
                ),
                "loss_fraction_interleaved": files_lost_fraction_interleaved(p),
                "loss_fraction_single_node": files_lost_fraction_single_node(p),
            }
            for p, run in sorted(survival.items())
        },
        "lifecycle": {
            f"p{p}.{scheme}": {
                "storage_factor": run.storage_factor,
                "write_ops_per_block": run.write_ops_per_block,
                "healthy_read_ms_per_block": run.healthy_read_s_per_block * 1e3,
                "degraded_read_ms_per_block": (
                    None if run.degraded_read_s_per_block is None
                    else run.degraded_read_s_per_block * 1e3
                ),
                "degraded_reconstructions": run.degraded_reconstructions,
                "rebuild_seconds": run.rebuild_seconds,
                "survived": run.survived,
                "content_ok": run.content_ok,
                "fsck_clean": run.fsck_clean,
            }
            for (p, scheme), run in sorted(lifecycle.items())
        },
    })
    for p, run in survival.items():
        assert run.plain_lost, f"p={p}: interleaved file survived?!"
        assert run.mirrored_recovered
        assert run.mirror_storage_blocks == 2 * run.plain_storage_blocks
        assert run.mirror_fallbacks == run.blocks // p  # the dead column
    for (p, scheme), run in lifecycle.items():
        assert run.fsck_clean, f"{scheme}@p={p}: fsck found errors"
        if scheme == "none":
            assert not run.survived
            assert run.storage_factor == 1.0
        else:
            assert run.survived and run.content_ok, f"{scheme}@p={p}"
            assert run.degraded_reconstructions > 0
        if scheme == "mirror":
            assert run.storage_factor == 2.0
        if scheme == "parity":
            # p/(p-1), up to the final partial stripe's rounding
            expected = p / (p - 1)
            assert abs(run.storage_factor - expected) < 0.1, (
                f"parity storage {run.storage_factor} != ~{expected}"
            )
            assert run.rebuild_seconds is not None and run.rebuild_seconds > 0
            assert run.rebuild_blocks > 0
        # parity writes cost more device traffic than none, less than 2x
        if scheme == "parity":
            baseline = lifecycle[(p, "none")]
            mirror = lifecycle[(p, "mirror")]
            assert run.write_device_ops > baseline.write_device_ops
            assert run.storage_blocks < mirror.storage_blocks
