"""E10 — the three user views, on both network models.

Section 4.1/6: the naive view is transparently correct but serialized at
the server; the parallel open gives lock-step multi-block transfers
(virtual when t > p); the tool view exports the code to the data.  On
the Butterfly the tool's edge over parallel-open is "modest"; on a
shared Ethernet it is decisive because naive/parallel must move every
block across the bus.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.harness.experiments import run_views_experiment


def sweep():
    return {
        "butterfly": run_views_experiment(8, blocks=256, network="butterfly"),
        "ethernet": run_views_experiment(8, blocks=256, network="ethernet"),
    }


def test_views_ablation(benchmark):
    runs = run_once(benchmark, sweep)
    rows = []
    for network, run in runs.items():
        throughput = run.as_throughput()
        for view, value in throughput.items():
            rows.append([network, view, value])
    emit(
        "ablation_views",
        format_table(
            ["network", "view", "blocks/s"],
            rows,
            title=f"Reading a {runs['butterfly'].blocks}-block file, p = 8",
        ),
    )

    write_bench_json("views", {
        "blocks": runs["butterfly"].blocks,
        "p": 8,
        "by_network": {
            network: {
                "naive_seconds": run.naive_seconds,
                "parallel_open_seconds": run.parallel_open_seconds,
                "virtual_parallel_seconds": run.virtual_parallel_seconds,
                "tool_seconds": run.tool_seconds,
                "throughput_blocks_per_second": run.as_throughput(),
            }
            for network, run in runs.items()
        },
    })
    butterfly, ethernet = runs["butterfly"], runs["ethernet"]
    # Every parallel view beats naive on both networks.
    for run in runs.values():
        assert run.tool_seconds < run.naive_seconds
        assert run.parallel_open_seconds < run.naive_seconds
    # Butterfly: tool and parallel-open comparable (modest edge at most).
    assert butterfly.tool_seconds < butterfly.parallel_open_seconds * 2.0
    # Ethernet: the tool wins decisively — blocks never cross the bus.
    assert ethernet.tool_seconds < ethernet.parallel_open_seconds * 0.75
    # Virtual parallelism (t = 2p) is no substitute for real width.
    assert ethernet.virtual_parallel_seconds > ethernet.parallel_open_seconds * 0.8
