"""E3/E4 — Table 3 and its figure: copy tool performance.

Regenerates the copy-time column (10 MB file, p = 2..32) and the
records-per-second series plotted beside it.  Default scale is ~1 MB;
REPRO_FULL=1 runs the paper's 10 922-block file.

Paper (Table 3):  p=2: 311.6 s ... p=32: 21.6 s (nearly linear speedup);
figure peaks at 475 records/second.
"""

from benchmarks.conftest import bench_ps, emit, run_once
from repro.analysis import (
    PAPER_COPY_PEAK_RECORDS_PER_SECOND,
    PAPER_TABLE3_COPY_SECONDS,
    format_table,
    shape_ratio,
    speedup_series,
)
from repro.harness.experiments import default_blocks, run_copy_experiment


def sweep():
    return {p: run_copy_experiment(p) for p in bench_ps()}


def test_table3_copy_tool(benchmark):
    runs = run_once(benchmark, sweep)
    blocks = next(iter(runs.values())).blocks
    scale = blocks / 10922

    measured_times = {p: r.elapsed for p, r in runs.items()}
    measured_speedup = speedup_series(measured_times)
    paper_speedup = speedup_series(PAPER_TABLE3_COPY_SECONDS)

    rows = []
    for p, run in sorted(runs.items()):
        paper_scaled = (
            PAPER_TABLE3_COPY_SECONDS[p] * scale
            if p in PAPER_TABLE3_COPY_SECONDS
            else None
        )
        rows.append(
            [
                p,
                run.elapsed,
                paper_scaled if paper_scaled is not None else "-",
                run.records_per_second,
                measured_speedup[p],
                paper_speedup.get(p, "-"),
            ]
        )
    table = format_table(
        ["p", "copy time (s)", "paper (scaled)", "records/s",
         "speedup", "paper speedup"],
        rows,
        title=(
            f"Table 3: copy tool, {blocks}-block file "
            f"({scale:.2f}x of the paper's 10 MB)"
        ),
    )
    peak = max(run.records_per_second for run in runs.values())
    table += (
        f"\n\nfigure series (records/second): peak {peak:.0f} measured vs "
        f"{PAPER_COPY_PEAK_RECORDS_PER_SECOND:.0f} in the paper (p = 32)"
    )
    ratios = shape_ratio(measured_times, PAPER_TABLE3_COPY_SECONDS)
    if ratios:
        spread = max(ratios.values()) / min(ratios.values())
        table += f"\nshape check: measured/paper ratio spread {spread:.2f}x across p"
    emit("table3_copy", table)

    # --- shape assertions: nearly linear speedup --------------------------
    ps = sorted(runs)
    for smaller, larger in zip(ps, ps[1:]):
        gain = measured_times[smaller] / measured_times[larger]
        assert gain > 1.5, f"speedup {smaller}->{larger} too weak: {gain:.2f}"
    assert measured_speedup[max(ps)] > 0.55 * (max(ps) / min(ps))
    # throughput (the figure) rises monotonically with p
    rates = [runs[p].records_per_second for p in ps]
    assert rates == sorted(rates)
