"""Ablation: disk-address hints in the local sort.

Section 4.3's hints are what keep the stateless EFS fast: without them,
every interior access walks the doubly-linked block list from the
beginning or end.  The paper's measured local-sort constant is far
larger than raw I/O predicts; running our local sort with hints disabled
shows how expensive hint-less linked-list access gets — the most likely
explanation for that constant.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.harness import paper_system
from repro.tools import SortTool
from repro.workloads import build_record_file, uniform_keys


def run_one(use_hints: bool, records: int = 640, p: int = 2):
    config = DEFAULT_CONFIG.with_changes(sort_buffer_records=24)
    system = paper_system(p, seed=19, config=config)
    build_record_file(system, "u", uniform_keys(records, seed=19))
    tool = SortTool(
        system.client_node, system.bridge.port, system.config,
        use_hints=use_hints,
    )

    def body():
        return (yield from tool.run("u", "s"))

    return system.run(body(), name="hint-ablation")


def sweep():
    return {
        "hints on": run_one(True),
        "hints off": run_one(False),
    }


def test_localsort_hint_ablation(benchmark):
    results = run_once(benchmark, sweep)
    rows = [
        [label, r.local_sort_time, r.merge_time, r.total_time,
         r.records / r.total_time]
        for label, r in results.items()
    ]
    on, off = results["hints on"], results["hints off"]
    table = format_table(
        ["hints", "local sort (s)", "merge (s)", "total (s)", "records/s"],
        rows,
        title="Local sort with and without disk-address hints (p = 2, 640 records)",
    )
    table += (
        f"\n\nhint-less slowdown: {off.local_sort_time / on.local_sort_time:.1f}x "
        "on the local phase — hint-less linked-list walks are the likely "
        "source of the paper's very large local-sort constant"
    )
    emit("ablation_localsort_hints", table)
    write_bench_json("localsort_hints", {
        "arms": {
            label: {
                "local_sort_seconds": r.local_sort_time,
                "merge_seconds": r.merge_time,
                "total_seconds": r.total_time,
                "records": r.records,
            }
            for label, r in results.items()
        },
        "hintless_local_slowdown": off.local_sort_time / on.local_sort_time,
    })

    assert off.local_sort_time > on.local_sort_time * 2.0
    assert off.records == on.records
