"""E8 — section 4.5's Create improvement.

"The initiation and termination are sequential, leading to an almost
linear increase in overhead for additional processors.  Performance
could be improved somewhat by sending startup and completion messages
through an embedded binary tree."  This bench measures both dispatch
modes and fits their growth.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import fit_line, format_table
from repro.harness.experiments import run_create_tree_experiment


def sweep():
    return {p: run_create_tree_experiment(p) for p in (2, 4, 8, 16, 32)}


def test_create_tree_dispatch(benchmark):
    runs = run_once(benchmark, sweep)
    rows = [
        [p, run.sequential_ms, run.tree_ms,
         run.sequential_ms / run.tree_ms, run.batched_per_file_ms]
        for p, run in sorted(runs.items())
    ]
    ps = sorted(runs)
    seq_fit = fit_line(ps, [runs[p].sequential_ms for p in ps])
    table = format_table(
        ["p", "sequential (ms)", "tree (ms)", "tree advantage",
         "batched (ms/file)"],
        rows,
        title="Create: sequential vs embedded-binary-tree dispatch",
    )
    table += (
        f"\n\nsequential fit: {seq_fit[0]:.0f} + {seq_fit[1]:.1f}*p ms "
        f"(paper Table 2: 145 + 17.5*p)"
    )
    emit("ablation_create_tree", table)
    write_bench_json("create_tree", {
        "sequential_fit_ms": {"intercept": seq_fit[0], "slope": seq_fit[1]},
        "paper_fit_ms": {"intercept": 145.0, "slope": 17.5},
        "by_p": {
            str(p): {
                "sequential_ms": runs[p].sequential_ms,
                "tree_ms": runs[p].tree_ms,
                "batched_per_file_ms": runs[p].batched_per_file_ms,
            }
            for p in ps
        },
    })

    # sequential dispatch grows ~linearly in p
    assert 8.0 < seq_fit[1] < 30.0
    # the tree wins, and wins more the wider the system
    assert runs[32].tree_ms < runs[32].sequential_ms
    advantage = {p: runs[p].sequential_ms / runs[p].tree_ms for p in ps}
    assert advantage[32] > advantage[4]
    # tree growth is sublinear: doubling p far from doubles the time
    assert runs[32].tree_ms < runs[8].tree_ms * 2.5
    # the S23 batched arm amortizes the fixed per-create charges: each
    # file in an 8-wide mcreate costs less than either singleton path
    for p in ps:
        assert runs[p].batched_per_file_ms < runs[p].sequential_ms, p
        assert runs[p].batched_per_file_ms < runs[p].tree_ms, p
