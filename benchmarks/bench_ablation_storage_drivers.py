"""S25 — pluggable storage drivers and heterogeneous fabrics (E26).

Three fabrics under the identical build + contended-read workload (see
:func:`repro.harness.experiments.run_storage_driver_experiment`):

* ``ram`` — the seed's in-memory simulated disks on every slot;
* ``object`` — the object-store driver everywhere (high first-byte
  latency, bandwidth-dominated transfer, bounded in-flight ops);
* ``hetero`` — the 3-fast/1-slow fabric: ram on slots 0-2, object on
  slot 3.  One slow device in an interleaved fabric gates every
  full-width operation, and the S24 heat map — installed at the device
  layer via ``attach_storage_heat`` — should attribute the imbalance to
  that slot without being told which one it is.

Checks: the homogeneous arms stay balanced (heat shares within 5 % of
even) while ordering ram < object on read wall-clock; the heterogeneous
arm's read is gated by its slow slot (no faster than the all-object
arm's on the same workload shape), and the heat map names slot 3 as the
hottest with at least 1.5x any fast slot's busy share.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_storage_drivers.py --quick
"""

import sys

from _emit import write_bench_json
from repro.analysis import format_table
from repro.harness.experiments import run_storage_driver_experiment

SEED = 0
P = 4
SLOW_SLOT = 3

#: (label, storage spec) — two homogeneous arms plus the 3-fast/1-slow one.
ARMS = (
    ("ram", None),
    ("object", "object"),
    ("hetero", ["ram"] * SLOW_SLOT + ["object"]),
)


def sweep(quick: bool = False):
    # The experiment's own floor (file > per-LFS cache) already defines
    # the smallest honest run; quick mode runs the same arms and only
    # skips the JSON artifact.
    del quick
    return {
        label: run_storage_driver_experiment(
            P, seed=SEED, storage=storage, label=label,
        )
        for label, storage in ARMS
    }


def check(runs) -> None:
    for label, run in runs.items():
        # The contended read actually reached every device.
        assert all(ops > 0 for ops in run.node_read_ops), (
            label, run.node_read_ops)
        # Interleaved placement spreads the same op count to every slot.
        assert max(run.node_read_ops) == min(run.node_read_ops), (
            label, run.node_read_ops)
    ram, obj, het = runs["ram"], runs["object"], runs["hetero"]
    # Driver registry wired what each arm asked for.
    assert ram.driver_kinds == ["ram"] * P
    assert obj.driver_kinds == ["object"] * P
    assert het.driver_kinds == ["ram"] * SLOW_SLOT + ["object"]
    # Homogeneous fabrics stay balanced: heat shares within 5% of even.
    for run in (ram, obj):
        shares = run.heat_busy_shares
        assert max(shares) <= (1.0 / P) * 1.05, (run.label, shares)
    # The object store's first-byte latency dominates the ram disk.
    assert obj.read_seconds > ram.read_seconds, (
        obj.read_seconds, ram.read_seconds)
    assert obj.build_seconds > ram.build_seconds, (
        obj.build_seconds, ram.build_seconds)
    # One slow slot gates the whole interleaved read: the hetero arm is
    # no faster than the all-object arm on the same workload shape.
    assert het.read_seconds >= 0.95 * obj.read_seconds, (
        het.read_seconds, obj.read_seconds)
    # The attribution headline: the S24 heat map names the slow slot,
    # with at least 1.5x any fast slot's busy share, and the read-phase
    # busy fractions agree.
    assert het.hottest_slot == SLOW_SLOT, het.heat_busy_shares
    slow_share = het.heat_busy_shares[SLOW_SLOT]
    fast_shares = [s for i, s in enumerate(het.heat_busy_shares)
                   if i != SLOW_SLOT]
    assert slow_share >= 1.5 * max(fast_shares), het.heat_busy_shares
    fractions = het.node_busy_fractions
    assert fractions[SLOW_SLOT] == max(fractions), fractions


def render(runs) -> str:
    rows = []
    for label, _storage in ARMS:
        run = runs[label]
        rows.append([
            label,
            "+".join(run.driver_kinds),
            round(run.build_seconds, 3),
            round(run.read_seconds, 3),
            round(run.read_blocks_per_second, 1),
            " ".join(f"{f:.2f}" for f in run.node_busy_fractions),
            " ".join(f"{s:.2f}" for s in run.heat_busy_shares),
            run.hottest_slot,
        ])
    first = runs[ARMS[0][0]]
    return format_table(
        ["arm", "drivers", "build s", "read s", "blk/s",
         "busy frac/slot", "heat share/slot", "hottest"],
        rows,
        title=(f"storage drivers, p={P}, {first.blocks} blocks, "
               f"seed {SEED}"),
    )


def to_json(runs) -> dict:
    arms = {}
    for label, run in runs.items():
        arms[label] = {
            "p": run.p,
            "blocks": run.blocks,
            "storage": run.storage,
            "driver_kinds": run.driver_kinds,
            "build_seconds": run.build_seconds,
            "read_seconds": run.read_seconds,
            "read_blocks_per_second": run.read_blocks_per_second,
            "node_read_ops": run.node_read_ops,
            "node_read_busy": run.node_read_busy,
            "node_busy_fractions": run.node_busy_fractions,
            "node_wait_ms_mean": run.node_wait_ms_mean,
            "node_wait_ms_max": run.node_wait_ms_max,
            "node_service_ms_mean": run.node_service_ms_mean,
            "heat_busy_rates": run.heat_busy_rates,
            "heat_busy_shares": run.heat_busy_shares,
            "hottest_slot": run.hottest_slot,
            "makespan": run.makespan,
            "events": run.events,
        }
    return {"p": P, "seed": SEED, "slow_slot": SLOW_SLOT, "arms": arms}


def test_storage_driver_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_storage_drivers", render(runs))
    write_bench_json("storage_drivers", to_json(runs))
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    print(render(runs))
    if not quick:
        write_bench_json("storage_drivers", to_json(runs))
    check(runs)
    print("storage-driver ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
