"""E9 — section 3's distribution-strategy argument, quantified.

Round-robin guarantees p consecutive blocks on p distinct nodes (ideal
for parallel sequential access); hashing makes that "extremely low"
probability; chunking gives no within-window parallelism at all and
forces a global reorganization when a file grows.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.baselines import (
    ChunkedPlacement,
    HashedPlacement,
    RoundRobinPlacement,
    expected_distinct_nodes_hashed,
    measured_batch_parallelism,
    prob_all_distinct_hashed,
    sequential_window_rounds,
)

FILE_BLOCKS = 4096


def sweep():
    rows = []
    for p in (4, 8, 16, 32):
        placements = {
            "round-robin": RoundRobinPlacement(p),
            "hashed": HashedPlacement(p, salt=p),
            "chunked": ChunkedPlacement(p),
        }
        for name, placement in placements.items():
            rows.append(
                {
                    "p": p,
                    "strategy": name,
                    "distinct": measured_batch_parallelism(placement, FILE_BLOCKS, p),
                    "rounds": sequential_window_rounds(placement, FILE_BLOCKS, p),
                    "p_all_distinct": (
                        1.0 if name == "round-robin"
                        else prob_all_distinct_hashed(p, p) if name == "hashed"
                        else 0.0
                    ),
                    "append_moves": placements[name].append_moves(
                        FILE_BLOCKS, FILE_BLOCKS + FILE_BLOCKS // 4
                    ),
                }
            )
    return rows


def test_distribution_strategies(benchmark):
    rows = run_once(benchmark, sweep)
    table_rows = [
        [r["p"], r["strategy"], r["distinct"], r["rounds"],
         r["p_all_distinct"], r["append_moves"]]
        for r in rows
    ]
    emit(
        "ablation_distribution",
        format_table(
            ["p", "strategy", "E[distinct nodes]", "lock-step rounds",
             "P[all distinct]", "blocks moved on +25% append"],
            table_rows,
            title=f"Distribution strategies over a {FILE_BLOCKS}-block file",
        ),
    )
    write_bench_json("distribution", {
        "file_blocks": FILE_BLOCKS,
        "rows": rows,
    })
    by_key = {(r["p"], r["strategy"]): r for r in rows}
    for p in (4, 8, 16, 32):
        rr = by_key[(p, "round-robin")]
        hashed = by_key[(p, "hashed")]
        chunked = by_key[(p, "chunked")]
        # round robin: perfect windows, free appends
        assert rr["distinct"] == p
        assert rr["rounds"] == 1.0
        assert rr["append_moves"] == 0
        # hashing: measurably worse, vanishing P[all distinct]
        assert hashed["distinct"] < p * 0.85
        assert hashed["rounds"] > 1.2
        assert hashed["p_all_distinct"] < 0.1
        # chunking: no window parallelism, expensive growth
        assert chunked["distinct"] == 1.0
        assert chunked["append_moves"] > 0
        # analytic expectation matches measurement for hashing
        assert abs(
            hashed["distinct"] - expected_distinct_nodes_hashed(p, p)
        ) < 0.6
