"""S23 — batched metadata ops vs per-name loops (E24).

The parallel-utilities argument in one table: the same metadata-pure
name family (empty width-1 files) pushed through a per-name RPC loop
and through the batched ``mcreate``/``mopen``/``mstat``/``mdelete``
surface, on fabrics of 1, 2, and 4 partitions plus one
window-constrained arm (``bridge_fanout_limit = 16`` at 4 partitions,
so partition sub-batches actually split).

Two claims are checked, one soft and one exact.  Soft: at 4 partitions
the batched open/stat/delete beat the per-name loop by at least 2x
wall-clock (in practice far more — the per-name loop pays the fixed
``bridge_request + bridge_directory_probe`` charge and a full message
round trip per name, the batch pays it once per sub-RPC).  Exact: the
observed Bridge-Server request counters equal
``sum(ceil(k_i / window))`` from :func:`repro.analysis.batched_rpc_count`
for every op and every arm — the model is combinatorial, so equality,
not shape, is the bar.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_metadata.py --quick
"""

import sys

from _emit import write_bench_json
from repro.analysis import format_table
from repro.harness.experiments import run_metadata_experiment

SEED = 0
NAMES = 256
QUICK_NAMES = 48

OPS = ("create", "open", "stat", "delete")

#: (label, servers, window) — partition sweep plus one windowed arm.
ARMS = (
    ("p1", 1, 0),
    ("p2", 2, 0),
    ("p4", 4, 0),
    ("p4w16", 4, 16),
)


def sweep(quick: bool = False):
    names = QUICK_NAMES if quick else NAMES
    return {
        label: run_metadata_experiment(
            servers=servers, names=names, seed=SEED, window=window,
        )
        for label, servers, window in ARMS
    }


def check(runs) -> None:
    for label, run in runs.items():
        # The combinatorial model is exact: observed server request
        # deltas equal the predicted counts for every op.
        for op in OPS:
            assert run.per_name_rpcs[op] == run.model_per_name_rpcs, (
                label, op, run.per_name_rpcs)
            assert run.batched_rpcs[op] == run.model_batched_rpcs, (
                label, op, run.batched_rpcs, run.model_batched_rpcs)
        # Every name settled cleanly and both arms agree on what the
        # namespace looked like (stat shapes) and freed (delete totals).
        assert run.errors == 0, (label, run.errors)
        assert run.content_ok, label
    # The headline: at the widest fabric the batched ops beat the
    # per-name loop by at least 2x wall-clock.
    widest = runs["p4"]
    for op in ("open", "stat", "delete"):
        assert widest.speedup(op) >= 2.0, (op, widest.speedup(op))
    # Windowing trades RPC count for fan-out bound, never correctness:
    # the windowed arm issues at least as many RPCs, same outcomes.
    assert (runs["p4w16"].model_batched_rpcs
            >= runs["p4"].model_batched_rpcs)


def render(runs) -> str:
    rows = []
    for label, _, window in ARMS:
        run = runs[label]
        for op in OPS:
            rows.append([
                f"{label} ({run.servers}p"
                + (f", w={window}" if window else "") + ")",
                op,
                round(run.per_name_ms[op], 1),
                round(run.batched_ms[op], 1),
                round(run.speedup(op), 2),
                run.per_name_rpcs[op],
                f"{run.batched_rpcs[op]}={run.model_batched_rpcs}",
            ])
    return format_table(
        ["arm", "op", "per-name ms", "batched ms", "speedup",
         "rpcs loop", "rpcs batch=model"],
        rows,
        title=(f"batched metadata ops, {runs['p1'].names} names, "
               f"seed {SEED}"),
    )


def to_json(runs) -> dict:
    arms = {}
    for label, run in runs.items():
        arms[label] = {
            "servers": run.servers,
            "window": run.window,
            "names": run.names,
            "partitions_touched": run.partitions_touched,
            "model_per_name_rpcs": run.model_per_name_rpcs,
            "model_batched_rpcs": run.model_batched_rpcs,
            "per_name_ms": run.per_name_ms,
            "batched_ms": run.batched_ms,
            "per_name_rpcs": run.per_name_rpcs,
            "batched_rpcs": run.batched_rpcs,
            "speedup": {op: run.speedup(op) for op in OPS},
            "errors": run.errors,
            "content_ok": run.content_ok,
        }
    return {"names": NAMES, "seed": SEED, "arms": arms}


def test_metadata_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_metadata", render(runs))
    write_bench_json("metadata", to_json(runs))
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    print(render(runs))
    if not quick:
        write_bench_json("metadata", to_json(runs))
    check(runs)
    print("metadata ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
