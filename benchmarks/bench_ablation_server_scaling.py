"""E17 / S20 — the Bridge Server bottleneck and its partitioned remedy.

Section 4.1: "If requests to the server are frequent enough to cause a
bottleneck, the same functionality could be provided by a distributed
collection of processes."  This bench drives many concurrent naive
clients through a *mixed* workload — create, sequential write, a full
sequential read-back, a strided list read, and a random
read-modify-write — against 1, 2, and 4 hash-partitioned Bridge Servers
and measures the makespan and the aggregate naive-view throughput.

Each row also carries the S20 routing model's speedup bound
(:func:`repro.analysis.fabric_speedup_bound`): with a finite set of
names hashed over k partitions the best case is sum/max of the
per-partition loads, so the measured speedup must sit at or below it.

Besides the human-readable table under ``benchmarks/results/``, the
sweep writes machine-readable ``BENCH_server_scaling.json`` at the repo
root so future PRs can track the trajectory.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_server_scaling.py --quick
"""

import pathlib
import sys

from _emit import bench_json_path, write_bench_json
from repro.analysis import format_table
from repro.analysis.models import fabric_speedup_bound
from repro.harness.builders import BridgeSystem

JSON_PATH = bench_json_path("server_scaling")

CLIENTS = 12
BLOCKS = 12
SERVER_COUNTS = (1, 2, 4)


def run_mixed(servers: int, clients: int = CLIENTS,
              blocks: int = BLOCKS, seed: int = 73,
              ring: bool = False) -> dict:
    """One arm: ``clients`` concurrent mixed-workload naive clients.

    ``ring=True`` routes over the S22 consistent-hash ring instead of
    the static modulo table — same fabric, same workload, different
    name-to-partition map (and therefore a different load-balance
    bound, computed from the actual ring arcs).
    """
    system = BridgeSystem(4, seed=seed, bridge_server_count=servers,
                          elastic=True if ring else None)
    names = [f"c{i}" for i in range(clients)]
    moved = [0]

    def worker(index, client):
        name = names[index]
        yield from client.create(name)
        for _b in range(blocks):
            yield from client.seq_write(name, b"w" * 64)
            moved[0] += 1
        yield from client.open(name)
        while True:
            block, _data = yield from client.seq_read(name)
            if block is None:
                break
            moved[0] += 1
        # Mixed tail: a strided list read plus a random RMW pair.
        picked = yield from client.list_read(name, list(range(0, blocks, 3)))
        moved[0] += len(picked)
        target = (index * 5) % blocks
        yield from client.random_write(name, target, b"rw" * 8)
        data = yield from client.random_read(name, target)
        assert data.startswith(b"rw")
        moved[0] += 2

    handles = [system.naive_client() for _ in range(clients)]
    processes = [
        system.client_node.spawn(worker(i, c), name=f"client{i}")
        for i, c in enumerate(handles)
    ]
    system.sim.run()
    assert all(p.done for p in processes)
    makespan = system.sim.now
    return {
        "servers": servers,
        "clients": clients,
        "blocks": blocks,
        "routing": "ring" if ring else "modulo",
        "makespan_seconds": makespan,
        "blocks_moved": moved[0],
        "throughput_blocks_per_second": moved[0] / makespan,
        "route_bound": fabric_speedup_bound(
            names, servers,
            ring=system.fabric.ring if ring else None,
        ),
    }


def sweep(quick: bool = False):
    if quick:
        # 8 client names hash 4/4 over two partitions, so even the smoke
        # arm has real routing parallelism to show.
        return ([run_mixed(servers, clients=8, blocks=4)
                 for servers in (1, 2)]
                + [run_mixed(2, clients=8, blocks=4, ring=True)])
    return ([run_mixed(servers) for servers in SERVER_COUNTS]
            + [run_mixed(SERVER_COUNTS[-1], ring=True)])


def check(rows) -> None:
    base = rows[0]
    modulo = [row for row in rows if row["routing"] == "modulo"]
    for row in rows:
        # Same logical work in every arm; only the makespan moves.
        assert row["blocks_moved"] == base["blocks_moved"], row
        speedup = base["makespan_seconds"] / row["makespan_seconds"]
        # Partitioning cannot beat the routing model's load-balance bound
        # (epsilon for float division).
        assert speedup <= row["route_bound"] + 1e-9, (speedup, row)
    # Aggregate naive-view throughput improves monotonically with the
    # partition count — the central server was the bottleneck.
    throughputs = [row["throughput_blocks_per_second"] for row in modulo]
    assert all(b > a for a, b in zip(throughputs, throughputs[1:])), throughputs
    if len(modulo) >= 3:
        assert (modulo[0]["makespan_seconds"]
                / modulo[-1]["makespan_seconds"]) > 1.6
    # The ring arm really parallelizes too: it beats the single-server
    # arm, within its own (arc-derived) route bound.
    for row in rows:
        if row["routing"] != "ring":
            continue
        assert base["makespan_seconds"] / row["makespan_seconds"] > 1.0, row


def render(rows) -> str:
    base = rows[0]
    table_rows = [
        [
            row["servers"],
            row["routing"],
            row["makespan_seconds"],
            row["throughput_blocks_per_second"],
            base["makespan_seconds"] / row["makespan_seconds"],
            row["route_bound"],
        ]
        for row in rows
    ]
    return format_table(
        ["bridge servers", "routing", "makespan (s)", "blocks/s", "speedup",
         "route bound"],
        table_rows,
        title=(
            f"{base['clients']} concurrent naive clients, mixed workload "
            f"per file ({base['blocks']} seq writes + full read-back + "
            "strided list read + random RMW)"
        ),
    )


def to_json(rows) -> dict:
    base = rows[0]
    return {
        "clients": base["clients"],
        "blocks_per_file": base["blocks"],
        "workload": "create + seq write + seq read-back + list read + random rmw",
        "by_servers": {
            str(row["servers"]): {
                "makespan_seconds": row["makespan_seconds"],
                "blocks_moved": row["blocks_moved"],
                "throughput_blocks_per_second":
                    row["throughput_blocks_per_second"],
                "speedup": base["makespan_seconds"] / row["makespan_seconds"],
                "route_bound": row["route_bound"],
            }
            for row in rows if row["routing"] == "modulo"
        },
        "ring": {
            str(row["servers"]): {
                "makespan_seconds": row["makespan_seconds"],
                "blocks_moved": row["blocks_moved"],
                "throughput_blocks_per_second":
                    row["throughput_blocks_per_second"],
                "speedup": base["makespan_seconds"] / row["makespan_seconds"],
                "route_bound": row["route_bound"],
            }
            for row in rows if row["routing"] == "ring"
        },
    }


def test_server_scaling(benchmark):
    from benchmarks.conftest import emit, run_once

    rows = run_once(benchmark, sweep)
    emit("ablation_server_scaling", render(rows))
    write_bench_json("server_scaling", to_json(rows))
    check(rows)


def main(argv) -> int:
    quick = "--quick" in argv
    rows = sweep(quick=quick)
    text = render(rows)
    print(text)
    if not quick:
        results_dir = pathlib.Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "ablation_server_scaling.txt").write_text(text + "\n")
        write_bench_json("server_scaling", to_json(rows))
        print(f"wrote {JSON_PATH.name}")
    check(rows)
    print("server scaling ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
