"""E17 — the Bridge Server bottleneck and its distributed remedy.

Section 4.1: "If requests to the server are frequent enough to cause a
bottleneck, the same functionality could be provided by a distributed
collection of processes."  This bench drives many concurrent naive
clients against 1, 2, and 4 hash-partitioned Bridge Servers and measures
the makespan.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.harness.builders import BridgeSystem

CLIENTS = 12
BLOCKS = 12


def makespan(servers: int) -> float:
    system = BridgeSystem(4, seed=73, bridge_server_count=servers)
    clients = [system.partitioned_client() for _ in range(CLIENTS)]

    def worker(index, client):
        name = f"c{index}"
        yield from client.create(name)
        for _b in range(BLOCKS):
            yield from client.seq_write(name, b"w" * 64)
        yield from client.open(name)
        while True:
            block, _data = yield from client.seq_read(name)
            if block is None:
                return

    processes = [
        system.client_node.spawn(worker(i, c), name=f"client{i}")
        for i, c in enumerate(clients)
    ]
    system.sim.run()
    assert all(p.done for p in processes)
    return system.sim.now


def sweep():
    return {servers: makespan(servers) for servers in (1, 2, 4)}


def test_server_scaling(benchmark):
    times = run_once(benchmark, sweep)
    rows = [
        [servers, elapsed, times[1] / elapsed]
        for servers, elapsed in sorted(times.items())
    ]
    emit(
        "ablation_server_scaling",
        format_table(
            ["bridge servers", "makespan (s)", "speedup"],
            rows,
            title=(
                f"{CLIENTS} concurrent naive clients, {BLOCKS}-block files "
                "each (create + write + read back)"
            ),
        ),
    )
    write_bench_json("server_scaling", {
        "clients": CLIENTS,
        "blocks_per_file": BLOCKS,
        "by_servers": {
            str(servers): {
                "makespan_seconds": elapsed,
                "speedup": times[1] / elapsed,
            }
            for servers, elapsed in sorted(times.items())
        },
    })
    assert times[2] < times[1]
    assert times[4] < times[2]
    assert times[1] / times[4] > 1.6  # the central server was the bottleneck
