"""Ablations on the storage substrate itself.

1. **Storage arrays** (section 2): synchronized spindles "maximize
   rotational latency: each operation must wait for the most poorly
   positioned disk."  Measured E[positioning] must follow d/(d+1) of a
   rotation while per-block transfer shrinks.

2. **Disk scheduling** under the geometric (seek + rotation) model:
   FCFS vs SSTF vs LOOK on a scattered batch — the knob the paper's flat
   15 ms disks hide.

3. **Track-buffer size**: the full-track buffering that makes Table 2's
   sequential read (9 ms) beat the 15 ms device latency.
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.sim import Simulator
from repro.storage import (
    SimulatedDisk,
    StorageArray,
    make_scheduler,
    wren_geometric,
)


# ---------------------------------------------------------------------------
# Storage array rotational latency
# ---------------------------------------------------------------------------


def array_sweep():
    rows = []
    for members in (1, 2, 4, 8, 16, 32):
        sim = Simulator(seed=23)
        array = StorageArray(sim, members, capacity_blocks=4096,
                             transfer_time=0.012)

        def reader():
            for block in range(64):
                yield from array.read(block)

        sim.run_process(reader())
        rows.append(
            (
                members,
                array.service_times.mean * 1e3,
                array.expected_positioning() * 1e3,
                array.transfer_time / members * 1e3,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Schedulers on a geometric disk
# ---------------------------------------------------------------------------


def scheduler_sweep():
    results = {}
    for name in ("fcfs", "sstf", "elevator"):
        sim = Simulator(seed=29)
        params, latency = wren_geometric(capacity_blocks=16384)
        disk = SimulatedDisk(sim, params, latency, scheduler=make_scheduler(name))
        rng = sim.random.stream("batch")
        blocks = [rng.randrange(16384) for _ in range(64)]

        def reader(block):
            yield from disk.read(block)

        for block in blocks:
            sim.spawn(reader(block))
        sim.run()
        results[name] = sim.now
    return results


# ---------------------------------------------------------------------------
# Track buffer size
# ---------------------------------------------------------------------------


def track_buffer_sweep():
    from repro.harness.experiments import measure_table2
    import repro.config as config_module

    rows = {}
    for track_blocks in (1, 2, 4, 8):
        config = DEFAULT_CONFIG.with_changes(efs_track_buffer_blocks=track_blocks)
        from repro.harness import BridgeSystem
        from repro.storage import FixedLatency
        from repro.workloads import build_file, pattern_chunks

        system = BridgeSystem(2, seed=31, config=config,
                              disk_latency=FixedLatency(0.015))
        client = system.naive_client()
        chunks = pattern_chunks(128)

        def body():
            yield from client.create("t")
            yield from client.write_all("t", chunks)
            yield from client.open("t")
            start = system.sim.now
            while True:
                block, _data = yield from client.seq_read("t")
                if block is None:
                    break
            return (system.sim.now - start) / 128 * 1e3

        rows[track_blocks] = system.run(body())
    return rows


def test_storage_array_rotational_latency(benchmark):
    rows = run_once(benchmark, array_sweep)
    emit(
        "ablation_storage_array",
        format_table(
            ["members", "measured service (ms)", "E[positioning] (ms)",
             "transfer/block (ms)"],
            [list(r) for r in rows],
            title="Synchronized storage array: positioning grows, transfer shrinks",
        ),
    )
    write_bench_json("storage_array", {
        "by_members": {
            str(members): {
                "measured_service_ms": measured,
                "expected_positioning_ms": positioning,
                "transfer_per_block_ms": transfer,
            }
            for members, measured, positioning, transfer in rows
        },
    })
    by_members = {r[0]: r for r in rows}
    # expected positioning strictly grows toward a full rotation
    assert by_members[32][2] > by_members[2][2]
    # measured service tracks seek + E[max] + transfer within 15%
    for members, measured, positioning, transfer in rows:
        predicted = 4.0 + positioning + transfer  # 4 ms seek
        assert abs(measured - predicted) / predicted < 0.15
    # transfer term scales down perfectly
    assert by_members[32][3] == by_members[1][3] / 32


def test_disk_schedulers(benchmark):
    results = run_once(benchmark, scheduler_sweep)
    emit(
        "ablation_schedulers",
        format_table(
            ["scheduler", "batch completion (s)"],
            [[name, elapsed] for name, elapsed in results.items()],
            title="64 scattered reads on a geometric Wren (seek + rotation)",
        ),
    )
    write_bench_json("schedulers", {
        "batch_completion_seconds": dict(results),
    })
    assert results["sstf"] < results["fcfs"]
    assert results["elevator"] < results["fcfs"]


def test_track_buffer_size(benchmark):
    rows = run_once(benchmark, track_buffer_sweep)
    emit(
        "ablation_track_buffer",
        format_table(
            ["track blocks", "seq read ms/block"],
            [[k, v] for k, v in sorted(rows.items())],
            title="Full-track buffering vs sequential read cost (15 ms disk)",
        ),
    )
    write_bench_json("track_buffer", {
        "seq_read_ms_per_block": {str(k): v for k, v in sorted(rows.items())},
    })
    # no buffering: every read pays the disk; the paper's 9 ms needs ~4
    assert rows[1] > 15.0
    assert rows[4] < 10.0
    # monotone improvement with track size
    values = [rows[k] for k in sorted(rows)]
    assert values == sorted(values, reverse=True)
