"""Ablation: write-behind in the LFS (section 6's assumption).

"Assuming that the local file systems perform read-ahead and
write-behind, virtually any program that uses the naive interface will
be compute- or communication-bound."  The measured prototype's 31 ms
writes are write-through; this bench turns write-behind on and shows the
naive write path dropping to cache speed — at the usual durability cost
(a flush materializes the deferred device writes).
"""

from _emit import write_bench_json
from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.harness import paper_system
from repro.workloads import pattern_chunks


def measure(write_behind: bool):
    config = DEFAULT_CONFIG.with_changes(efs_write_behind=write_behind)
    system = paper_system(4, seed=37, config=config)
    client = system.naive_client()
    chunks = pattern_chunks(128)

    def body():
        yield from client.create("wb")
        start = system.sim.now
        yield from client.write_all("wb", chunks)
        write_time = system.sim.now - start
        yield from client.open("wb")
        start = system.sim.now
        while True:
            block, _data = yield from client.seq_read("wb")
            if block is None:
                break
        read_time = system.sim.now - start
        return write_time / 128 * 1e3, read_time / 128 * 1e3

    return system.run(body())


def sweep():
    return {
        "write-through (paper)": measure(False),
        "write-behind": measure(True),
    }


def test_write_behind_ablation(benchmark):
    results = run_once(benchmark, sweep)
    rows = [
        [mode, write_ms, read_ms]
        for mode, (write_ms, read_ms) in results.items()
    ]
    through_write = results["write-through (paper)"][0]
    behind_write = results["write-behind"][0]
    table = format_table(
        ["LFS mode", "write ms/block", "read ms/block"],
        rows,
        title="Naive sequential write/read, p = 4, 128 blocks",
    )
    table += (
        f"\n\nwrite-behind speedup on the write path: "
        f"{through_write / behind_write:.1f}x — with it, the naive writer is "
        "no longer disk-bound, as section 6 assumes"
    )
    emit("ablation_write_behind", table)
    write_bench_json("write_behind", {
        "arms": {
            mode: {"write_ms_per_block": write_ms, "read_ms_per_block": read_ms}
            for mode, (write_ms, read_ms) in results.items()
        },
        "write_path_speedup": through_write / behind_write,
    })

    assert behind_write < through_write / 3
    # reads already benefit from the track buffer in both modes
    assert results["write-behind"][1] < 15.0
