"""Shared infrastructure for the reproduction benches.

Every bench regenerates one paper artifact (table or figure): it sweeps
the experiment runner, prints a paper-vs-measured table, saves the same
text under ``benchmarks/results/``, asserts the paper's qualitative shape,
and reports wall-clock cost through pytest-benchmark.

Scale: by default files are ~1/10th of the paper's 10 MB so the suite
finishes in CI time; set ``REPRO_FULL=1`` to run the full configuration.
"""

import os
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The processor counts of Tables 3 and 4.
PAPER_PS = (2, 4, 8, 16, 32)


def bench_ps():
    """Processor sweep: full paper range, trimmed a little by default."""
    if os.environ.get("REPRO_FULL", "") == "1":
        return PAPER_PS
    return (2, 4, 8, 16, 32)


def emit(name: str, text: str) -> None:
    """Print a result table (visible with -s / on failure) and save it."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    sys.stderr.write(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment sweep exactly once under pytest-benchmark.

    Simulation sweeps are deterministic, so repeated rounds would only
    re-measure Python's wall-clock noise; one round keeps the suite fast
    while still recording real host cost.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
