"""E5/E6 — Table 4 and its figures: merge-sort tool performance.

Regenerates the local-sort / merge / total breakdown and the
records-per-second series.  The in-core buffer is scaled with the file
(c = 512 at full scale) so the run structure — and therefore the local
phase's superlinear speedup, where each doubling of p removes one local
merge pass — matches the paper's.

Paper (Table 4, minutes):
    p=2: 350 + 17 = 367 | p=8: 24 + 11 = 35 | p=32: 0.67 + 4.45 = 5.12
Local sort is superlinear; the merge phase improves only modestly
(17 -> 4.45 min over 2 -> 32 processors); figure peaks at 35 records/s.
"""

from benchmarks.conftest import bench_ps, emit, run_once
from repro.analysis import (
    PAPER_SORT_PEAK_RECORDS_PER_SECOND,
    PAPER_TABLE4_SORT_MINUTES,
    format_table,
    is_superlinear,
    speedup_series,
)
from repro.harness.experiments import default_sort_records, run_sort_experiment


def sweep():
    records = default_sort_records()
    # keep records/buffer near the paper's 10922/512 so pass counts match
    buffer_records = max(8, round(records * 512 / 10922))
    return {
        p: run_sort_experiment(p, records=records, buffer_records=buffer_records)
        for p in bench_ps()
    }, buffer_records


def test_table4_sort_tool(benchmark):
    runs, buffer_records = run_once(benchmark, sweep)
    records = next(iter(runs.values())).records
    scale = records / 10922

    rows = []
    for p, run in sorted(runs.items()):
        paper = PAPER_TABLE4_SORT_MINUTES.get(p)
        rows.append(
            [
                p,
                run.local_sort_seconds,
                paper[0] * 60 * scale if paper else "-",
                run.merge_seconds,
                paper[1] * 60 * scale if paper else "-",
                run.total_seconds,
                run.records_per_second,
            ]
        )
    table = format_table(
        ["p", "local sort (s)", "paper (scaled)", "merge (s)",
         "paper (scaled)", "total (s)", "records/s"],
        rows,
        title=(
            f"Table 4: merge sort, {records} records "
            f"({scale:.2f}x of the paper's file), c = {buffer_records}"
        ),
    )
    peak = max(run.records_per_second for run in runs.values())
    table += (
        f"\n\nfigure series: peak {peak:.1f} records/s measured vs "
        f"{PAPER_SORT_PEAK_RECORDS_PER_SECOND:.0f} in the paper (p = 32)"
    )
    local = {p: r.local_sort_seconds for p, r in runs.items()}
    merge = {p: r.merge_seconds for p, r in runs.items()}
    table += (
        f"\nlocal-sort speedup series: "
        f"{ {p: round(v, 1) for p, v in speedup_series(local).items()} }"
    )
    table += (
        f"\nmerge speedup series:      "
        f"{ {p: round(v, 1) for p, v in speedup_series(merge).items()} }"
    )
    emit("table4_sort", table)

    # --- shape assertions --------------------------------------------------
    ps = sorted(runs)
    # local phase: superlinear over the range where merge passes disappear
    for smaller, larger in zip(ps[:3], ps[1:4]):
        factor = larger / smaller
        gain = local[smaller] / local[larger]
        assert gain > factor, (
            f"local sort {smaller}->{larger} not superlinear: {gain:.2f}"
        )
    # merge phase: improves overall, but sublinearly (paper: 3.8x over 16x)
    assert merge[ps[0]] > merge[ps[-1]]
    assert merge[ps[0]] / merge[ps[-1]] < (ps[-1] / ps[0]) * 0.8
    # totals: monotone decreasing in p
    totals = [runs[p].total_seconds for p in ps]
    assert totals == sorted(totals, reverse=True)
    # throughput figure: monotone increasing
    rates = [runs[p].records_per_second for p in ps]
    assert rates == sorted(rates)
