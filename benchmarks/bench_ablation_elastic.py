"""S22 — resize-under-load: grow 2->4 and shrink 4->2 mid-traffic.

Each arm drives the S21 open-loop generator through three equal arrival
windows over one live system: steady-state at the starting size, the
same traffic while the consistent-hash ring flips and the migration
sweep relocates every reassigned namespace entry (throttled, with the
double-read forwarding window redirecting in-flight requests), and
steady-state at the final size.  The check asserts the S22 safety
claim — zero lost, misrouted, or duplicated files; every surviving file
byte-identical when read through the fabric vs reconstructed directly
from the LFS blocks; EFS fsck clean; zero hard failures in any phase —
and the capacity claim: growing the fabric improves steady-state read
p99, shrinking it degrades p99, and during-migration p99 stays within
an order of magnitude of the surrounding steady states (migration
shares the fabric, it does not stall it).

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_elastic.py --quick
"""

import sys

from _emit import write_bench_json
from repro.analysis import format_table
from repro.harness.experiments import run_elastic_experiment

RATE = 60.0
DURATION = 2.0
QUICK_DURATION = 0.75
SEED = 7
PROVISIONED = 4
MOVES_PER_SECOND = 50.0

#: (label, start_servers, end_servers) — one grow arm, one shrink arm.
ARMS = (("grow", 2, 4), ("shrink", 4, 2))

PHASES = ("before", "during", "after")


def sweep(quick: bool = False):
    duration = QUICK_DURATION if quick else DURATION
    return {
        label: run_elastic_experiment(
            rate=RATE, duration=duration, start_servers=start,
            end_servers=end, provisioned=PROVISIONED, seed=SEED,
            moves_per_second=MOVES_PER_SECOND,
        )
        for label, start, end in ARMS
    }


def check(runs) -> None:
    for label, run in runs.items():
        # The resize actually happened, in the advertised direction.
        assert run.direction == label, (label, run.direction)
        assert run.planned > 0, label
        assert run.moved + run.vanished == run.planned, label
        # Zero lost or misrouted files: ownership scan, duplicate scan,
        # routed-vs-direct byte compare, and EFS fsck all clean.
        assert run.lost == 0, (label, run.lost)
        assert run.misrouted == 0, (label, run.misrouted)
        assert run.duplicated == 0, (label, run.duplicated)
        assert run.content_mismatched == 0, (label, run.content_mismatched)
        assert run.fsck_clean, label
        # No phase saw a hard failure and every phase made progress.
        assert run.failed() == 0, (label, run.phases)
        for phase in PHASES:
            assert int(run.phases[phase]["completed"]) > 0, (label, phase)
        # Migration never stalls traffic: during-migration read p99 stays
        # within 10x of the better surrounding steady state.
        during = run.phase_quantile("during", "read", "p99")
        steady = min(run.phase_quantile("before", "read", "p99"),
                     run.phase_quantile("after", "read", "p99"))
        assert during < 10 * max(steady, 1e-4), (label, during, steady)

    # Capacity follows the ring: growing 2->4 improves steady-state read
    # p99, shrinking 4->2 degrades it.
    grow, shrink = runs["grow"], runs["shrink"]
    assert (grow.phase_quantile("after", "read", "p99")
            < grow.phase_quantile("before", "read", "p99")), grow.phases
    assert (shrink.phase_quantile("after", "read", "p99")
            > shrink.phase_quantile("before", "read", "p99")), shrink.phases


def render(runs) -> str:
    rows = []
    for label, run in runs.items():
        for phase in PHASES:
            summary = run.phases[phase]
            rows.append([
                f"{label} {run.start_servers}->{run.end_servers}",
                phase,
                int(summary["offered"]),
                int(summary["completed"]),
                int(summary["failed"]),
                round(run.phase_quantile(phase, "read", "p50") * 1e3, 2),
                round(run.phase_quantile(phase, "read", "p99") * 1e3, 1),
            ])
        rows.append([
            f"{label} moves", f"{run.moved}/{run.planned}",
            run.forwarded, "-", "-", "-",
            round(run.migration_seconds, 2),
        ])
    return format_table(
        ["resize", "phase", "offered", "ok", "failed",
         "read p50 ms", "p99 ms / mig s"],
        rows,
        title=(f"resize under load, {RATE:g} req/s, "
               f"{MOVES_PER_SECOND:g} moves/s, seed {SEED}"),
    )


def to_json(runs) -> dict:
    arms = {}
    for label, run in runs.items():
        arms[label] = {
            "start_servers": run.start_servers,
            "end_servers": run.end_servers,
            "provisioned": run.provisioned,
            "planned_moves": run.planned,
            "moved": run.moved,
            "vanished": run.vanished,
            "forwarded": run.forwarded,
            "disruption": run.disruption,
            "migration_seconds": run.migration_seconds,
            "lost": run.lost,
            "misrouted": run.misrouted,
            "duplicated": run.duplicated,
            "content_mismatched": run.content_mismatched,
            "fsck_clean": run.fsck_clean,
            "read_p99_ms": {
                phase: run.phase_quantile(phase, "read", "p99") * 1e3
                for phase in PHASES
            },
            "phases": run.phases,
            "makespan": run.makespan,
        }
    return {
        "rate": RATE,
        "phase_duration": DURATION,
        "seed": SEED,
        "moves_per_second": MOVES_PER_SECOND,
        "arms": arms,
    }


def test_elastic_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_elastic", render(runs))
    write_bench_json("elastic", to_json(runs))
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    print(render(runs))
    if not quick:
        write_bench_json("elastic", to_json(runs))
    check(runs)
    print("elastic ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
