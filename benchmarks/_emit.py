"""Machine-readable bench output: ``BENCH_<name>.json`` at the repo root.

Every ablation bench pairs its human-readable table (saved under
``benchmarks/results/`` via ``conftest.emit``) with a JSON document the
next PR's tooling can diff: ``write_bench_json("views", {...})`` writes
``BENCH_views.json`` with a ``{"bench": "views", ...payload}`` envelope.

Payloads should contain only deterministic simulation results (simulated
seconds, message counts, model constants) — never host wall-clock — so
the committed files are stable across machines and reruns.

Importable both ways the benches are run: ``pytest benchmarks/`` inserts
this directory on ``sys.path`` (no ``__init__.py`` here, by design) and
script mode (``python benchmarks/bench_....py``) does the same, so a
plain ``from _emit import write_bench_json`` always resolves.
"""

import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def bench_json_path(name: str) -> pathlib.Path:
    """Where ``write_bench_json(name, ...)`` puts its document."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``allow_nan=False`` keeps the files strict JSON; non-string dict
    keys (processor counts, widths) must be stringified by the caller.
    """
    document = {"bench": name}
    document.update(payload)
    path = bench_json_path(name)
    path.write_text(
        json.dumps(document, indent=2, allow_nan=False) + "\n"
    )
    return path
