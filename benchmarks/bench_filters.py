"""E7 — section 5.1's filter claim.

"Any of the filter programs produced by inserting such transformations
should run within a constant factor of the copy tool's time."  Runs the
plain copy and the three filters over the same file and checks the
factor.
"""

from benchmarks.conftest import emit, run_once
from repro.analysis import format_table
from repro.harness.experiments import default_blocks
from repro.harness import paper_system
from repro.tools import CopyTool, EncryptTool, LineLexTool, TranslateTool, rot13_table
from repro.workloads import build_file, text_chunks


def sweep():
    blocks = max(128, default_blocks() // 4)
    system = paper_system(8, seed=17)
    build_file(system, "src", text_chunks(blocks, seed=17))
    results = {}
    tools = {
        "copy": CopyTool(system.client_node, system.bridge.port, system.config),
        "translate": TranslateTool(
            system.client_node, system.bridge.port, system.config,
            table=rot13_table(),
        ),
        "encrypt": EncryptTool(
            system.client_node, system.bridge.port, system.config, key=b"k3y"
        ),
        "lex": LineLexTool(
            system.client_node, system.bridge.port, system.config, line_length=80
        ),
    }
    for name, tool in tools.items():
        def body(t=tool, dst=f"out-{name}"):
            return (yield from t.run("src", dst))

        results[name] = system.run(body(), name=f"filter-{name}")
    return blocks, results


def test_filters_constant_factor_of_copy(benchmark):
    blocks, results = run_once(benchmark, sweep)
    base = results["copy"].elapsed
    rows = [
        [name, result.elapsed, result.elapsed / base,
         result.blocks_per_second]
        for name, result in results.items()
    ]
    emit(
        "filters",
        format_table(
            ["tool", "time (s)", "factor vs copy", "blocks/s"],
            rows,
            title=f"Filter tools vs plain copy ({blocks} blocks, p = 8)",
        ),
    )
    for name, result in results.items():
        factor = result.elapsed / base
        assert factor < 1.5, f"{name} not within a constant factor: {factor:.2f}"
        assert result.total_blocks == blocks
