"""S17 — noncontiguous access: naive vs list I/O vs two-phase.

Per-block RPC pays one Bridge->EFS round trip per access; list I/O ships
each worker's whole pattern as at most p batched EFS requests; two-phase
aligns aggregators to the interleave so the whole *job* costs one batched
local request per touched LFS, plus exchange/redistribution messages.
The sweep crosses the three arms with the three pattern shapes (strided /
random scatter / hotspot) and checks the analytic message model against
the measured counts exactly — the combinatorics are not approximate.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_collective.py --quick
"""

import sys

from _emit import write_bench_json
from repro.analysis import format_table
from repro.harness.experiments import run_collective_experiment

PATTERNS = ("strided", "scatter", "hotspot")


def sweep(quick: bool = False):
    if quick:
        return {
            "strided": run_collective_experiment(
                p=4, blocks=64, accesses=16, pattern="strided"
            )
        }
    return {
        pattern: run_collective_experiment(
            p=8, blocks=256, accesses=64, pattern=pattern
        )
        for pattern in PATTERNS
    }


def check(runs) -> None:
    for pattern, run in runs.items():
        # All three arms moved identical bytes.
        assert run.content_ok, pattern
        # The analytic message model is exact, not approximate.
        assert run.model_exact, (pattern, run)
        # List I/O caps each worker at p batched requests.
        assert run.listio_efs_requests <= run.workers * run.p
        assert run.listio_efs_requests < run.naive_efs_requests
        # Two-phase: one batched request per touched LFS, at most p.
        assert run.twophase_efs_requests <= run.p
        # Both optimizations strictly beat naive on every pattern.
        assert run.listio_seconds < run.naive_seconds, pattern
        assert run.twophase_seconds < run.naive_seconds, pattern


def render(runs) -> str:
    rows = []
    for pattern, run in runs.items():
        for arm, seconds, requests in (
            ("naive", run.naive_seconds, run.naive_efs_requests),
            ("list-io", run.listio_seconds, run.listio_efs_requests),
            ("two-phase", run.twophase_seconds, run.twophase_efs_requests),
        ):
            rows.append([
                pattern, arm, requests, seconds,
                run.accesses / seconds if seconds > 0 else 0.0,
            ])
    sample = next(iter(runs.values()))
    return format_table(
        ["pattern", "arm", "EFS reqs", "seconds", "blocks/s"],
        rows,
        title=(
            f"{sample.accesses} noncontiguous accesses, "
            f"{sample.workers} workers, p = {sample.p}"
        ),
    )


def to_json(runs) -> dict:
    sample = next(iter(runs.values()))
    return {
        "p": sample.p,
        "blocks": sample.blocks,
        "accesses": sample.accesses,
        "workers": sample.workers,
        "patterns": {
            pattern: {
                "naive_seconds": run.naive_seconds,
                "listio_seconds": run.listio_seconds,
                "twophase_seconds": run.twophase_seconds,
                "naive_efs_requests": run.naive_efs_requests,
                "listio_efs_requests": run.listio_efs_requests,
                "twophase_efs_requests": run.twophase_efs_requests,
                "model_exact": run.model_exact,
                "content_ok": run.content_ok,
            }
            for pattern, run in runs.items()
        },
    }


def test_collective_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_collective", render(runs))
    write_bench_json("collective", to_json(runs))
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    print(render(runs))
    if not quick:
        write_bench_json("collective", to_json(runs))
    check(runs)
    print("collective ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
