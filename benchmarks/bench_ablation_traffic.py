"""S21 — production traffic: latency vs offered load, with and without
admission control.

The sweep drives one Bridge server (fast fixed-latency disks, so the
server's serial request loop is the bottleneck) with open-loop
multi-class traffic at offered loads spanning the saturation knee:
roughly 0.5x, 1x, and 2x the measured service capacity (~80 req/s —
the 70 ms directory probes carried by the metadata class dominate the
mean service time).  Three arms per load:

* ``none`` — no admission policy.  Open-loop arrivals keep coming while
  the server falls behind, the queue grows without bound for the whole
  run, and p99 latency collapses past the knee.
* ``token-bucket`` — rate-limit near capacity; excess arrivals get a
  sub-ms typed refusal instead of a queue slot.
* ``fair`` — bounded queue (shed past depth) + per-class weighted fair
  queueing, so tool/parallel jobs cannot starve the naive classes.

Every (policy, load) cell runs under two arrival processes: ``poisson``
(memoryless, the S21 headline) and ``burst`` (the two-state MMPP built
in PR 6 — same mean rate, arrivals concentrated 4x during burst
periods), so the committed trajectory shows how admission control holds
up when load arrives in clumps rather than smoothly.

The check asserts the headline S21 claim on the Poisson arms: at the
highest load the no-policy arm's p99 has degraded by an order of
magnitude over its uncongested value, while at least one admission arm
keeps p99 bounded *and* holds goodput within 10% of its own peak across
the sweep.  On the burst arms it asserts the MMPP actually bites —
below the knee, clumped arrivals already push the unprotected p99 well
above its Poisson twin.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_traffic.py --quick
"""

import sys

from _emit import write_bench_json
from repro.analysis import format_table
from repro.harness.experiments import run_traffic_experiment

#: Offered loads (req/s) spanning the knee of a ~80 req/s server.
LOADS = (40, 80, 160)
QUICK_LOADS = (40, 160)

#: Policy arms: spec passed to ``build_admission`` per arm.
ARMS = (
    ("none", "none"),
    ("token-bucket", {"policy": "token-bucket", "rate": 75}),
    ("fair", {"policy": "fair", "depth": 32}),
)

SEED = 7
DURATION = 2.0

#: Arrival processes per (policy, load) cell: memoryless, and the
#: two-state MMPP with the default 4x burst concentration (same mean).
ARRIVAL_KINDS = ("poisson", "burst")


def sweep(quick: bool = False):
    loads = QUICK_LOADS if quick else LOADS
    runs = {}
    for policy, spec in ARMS:
        for rate in loads:
            for kind in ARRIVAL_KINDS:
                kwargs = {}
                if isinstance(spec, dict):
                    params = dict(spec)
                    kwargs["policy"] = params.pop("policy")
                    kwargs["admission_params"] = params
                else:
                    kwargs["policy"] = spec
                runs[(policy, rate, kind)] = run_traffic_experiment(
                    rate=rate, duration=DURATION, seed=SEED,
                    arrival_kind=kind, **kwargs
                )
    return runs


def _by_policy(runs, kind="poisson"):
    table = {}
    for (policy, rate, run_kind), run in sorted(
        runs.items(), key=lambda kv: kv[0][1]
    ):
        if run_kind == kind:
            table.setdefault(policy, []).append(run)
    return table


def check(runs) -> None:
    by_policy = _by_policy(runs, kind="poisson")
    loads = sorted({rate for _policy, rate, _kind in runs})
    top = loads[-1]

    for run in runs.values():
        # Open-loop: the source issued what the arrival process said,
        # and every arrival resolved to exactly one outcome.
        summary = run.summary
        resolved = sum(
            summary[outcome]
            for outcome in ("completed", "throttled", "shed",
                            "abandoned", "failed")
        )
        assert resolved == run.offered, (run.policy, run.offered_rate)
        assert summary["failed"] == 0, (run.policy, run.offered_rate)

    # The sweep spans the knee: the lowest load leaves the server
    # unsaturated, the highest drives the unprotected arm to ~100% busy.
    none_runs = {r.offered_rate: r for r in by_policy["none"]}
    assert none_runs[loads[0]].server_utilization < 0.9
    assert none_runs[top].server_utilization > 0.95

    # Past the knee the unprotected arm collapses: p99 grows by an
    # order of magnitude over the uncongested point.
    base_p99 = max(none_runs[loads[0]].class_quantile("read", "p99"), 1e-4)
    collapsed_p99 = none_runs[top].class_quantile("read", "p99")
    assert collapsed_p99 > 10 * base_p99, (base_p99, collapsed_p99)

    # At least one admission arm keeps p99 bounded at the top load
    # while holding goodput within 10% of its own peak.
    protected = []
    for policy, arm_runs in by_policy.items():
        if policy == "none":
            continue
        at_top = next(r for r in arm_runs if r.offered_rate == top)
        refusals = at_top.summary["shed"] + at_top.summary["throttled"]
        assert refusals > 0, policy  # the policy actually engaged
        peak_goodput = max(r.goodput for r in arm_runs)
        p99 = at_top.class_quantile("read", "p99")
        if (p99 < collapsed_p99 / 2.0
                and at_top.goodput >= 0.9 * peak_goodput):
            protected.append(policy)
    assert protected, {
        policy: next(r for r in arm_runs if r.offered_rate == top).goodput
        for policy, arm_runs in by_policy.items()
    }

    # The MMPP bites: below the knee, clumped arrivals already push the
    # unprotected arm's p99 well above its Poisson twin at the same mean
    # rate (transient queueing during burst periods).
    burst_none = {
        r.offered_rate: r
        for r in _by_policy(runs, kind="burst")["none"]
    }
    low = loads[0]
    poisson_low = max(none_runs[low].class_quantile("read", "p99"), 1e-4)
    burst_low = burst_none[low].class_quantile("read", "p99")
    assert burst_low > 1.5 * poisson_low, (poisson_low, burst_low)


def render(runs) -> str:
    rows = []
    for (policy, rate, kind), run in sorted(
        runs.items(), key=lambda kv: (kv[0][1], kv[0][2], kv[0][0])
    ):
        summary = run.summary
        rows.append([
            rate, kind, policy, run.offered, summary["completed"],
            summary["shed"] + summary["throttled"],
            round(run.goodput, 1),
            round(run.server_utilization, 3),
            round(run.class_quantile("read", "p50") * 1e3, 2),
            round(run.class_quantile("read", "p99") * 1e3, 1),
            round(run.class_quantile("read", "p999") * 1e3, 1),
        ])
    return format_table(
        ["offered r/s", "arrivals", "policy", "n", "ok", "refused",
         "goodput r/s", "util", "read p50 ms", "p99 ms", "p999 ms"],
        rows,
        title=f"open-loop traffic, {DURATION}s of arrivals, seed {SEED}",
    )


def to_json(runs) -> dict:
    trajectory = []
    for (policy, rate, kind), run in sorted(
        runs.items(), key=lambda kv: (kv[0][1], kv[0][2], kv[0][0])
    ):
        summary = run.summary
        trajectory.append({
            "policy": policy,
            "offered_rate": rate,
            "arrival_kind": kind,
            "arrivals": run.offered,
            "goodput": summary["goodput"],
            "completed": summary["completed"],
            "throttled": summary["throttled"],
            "shed": summary["shed"],
            "abandoned": summary["abandoned"],
            "failed": summary["failed"],
            "server_utilization": run.server_utilization,
            "queue_wait_p99": run.queue_wait_p99,
            "queue_peak_depth": run.queue_peak_depth,
            "predicted_wait_mm1": run.predicted_wait_mm1,
            "predicted_wait_md1": run.predicted_wait_md1,
            "makespan": run.makespan,
            "classes": summary["classes"],
        })
    return {
        "duration": DURATION,
        "seed": SEED,
        "loads": list(sorted({rate for _p, rate, _k in runs})),
        "policies": sorted({policy for policy, _r, _k in runs}),
        "arrival_kinds": list(ARRIVAL_KINDS),
        "trajectory": trajectory,
    }


def test_traffic_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_traffic", render(runs))
    write_bench_json("traffic", to_json(runs))
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    print(render(runs))
    if not quick:
        write_bench_json("traffic", to_json(runs))
    check(runs)
    print("traffic ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
