"""S18 — server-side caching and striped read-ahead ablation.

The naive view's sequential read pays one synchronous Bridge->LFS round
trip per block, leaving p - 1 disks idle.  The ablation streams the same
file twice per arm through five Bridge configurations — cache off (the
paper's system), LRU cache only, and read-ahead windows 1/2/4 — and
shows the pipeline collapsing the cold pass to the client round trip
(>= 3x at p = 8) while the cache-only arm only helps the repeat pass.
Byte identity against the cache-off arm is asserted for every pass.

Besides the human-readable table under ``benchmarks/results/``, the
sweep writes machine-readable ``BENCH_prefetch.json`` at the repo root
so future PRs can track the perf trajectory.

Also runnable as a script (the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablation_prefetch.py --quick
"""

import pathlib
import sys

from _emit import bench_json_path, write_bench_json
from repro.analysis import format_table
from repro.analysis.models import pipelined_read_seconds
from repro.harness.experiments import run_prefetch_experiment

JSON_PATH = bench_json_path("prefetch")

WINDOWS = (1, 2, 4)


def sweep(quick: bool = False):
    if quick:
        return run_prefetch_experiment(p=4, blocks=64, windows=(1,))
    return run_prefetch_experiment(p=8, blocks=256, windows=WINDOWS)


def check(runs) -> None:
    by_arm = {run.arm: run for run in runs}
    off = by_arm["off"]
    cache = by_arm["cache"]
    # Every arm returns byte-identical data on both passes.
    assert all(run.content_ok for run in runs), [r.arm for r in runs]
    # The cache alone cannot speed up a cold single pass...
    assert cache.elapsed == off.elapsed
    # ...but serves the repeat pass without EFS traffic.
    assert cache.repeat_seconds < off.repeat_seconds
    for run in runs:
        if not run.prefetch_window:
            continue
        # Read-ahead pipelines the cold pass; at p = 8 the acceptance
        # bar is 3x (quick mode runs p = 4, where the bar is parity
        # with the supply rate, i.e. clearly faster than the serial
        # baseline).
        assert run.elapsed < off.elapsed, run.arm
        if run.p >= 8:
            assert run.speedup >= 3.0, (run.arm, run.speedup)
        # The closed-form model bounds the measured cold pass from
        # below and is within startup distance of it.
        assert run.model_seconds <= run.elapsed <= run.model_seconds * 1.25
        assert run.prefetch_wasted <= run.prefetch_issued // 10


def render(runs) -> str:
    rows = [
        [
            run.arm, run.ms_per_block, run.elapsed, run.repeat_seconds,
            run.speedup, run.repeat_speedup, run.hits, run.misses,
            run.prefetch_wasted,
            "ok" if run.content_ok else "MISMATCH",
        ]
        for run in runs
    ]
    sample = runs[0]
    return format_table(
        ["arm", "ms/blk", "cold s", "repeat s", "speedup",
         "rpt speedup", "hits", "misses", "wasted", "bytes"],
        rows,
        title=(
            f"sequential stream of {sample.blocks} blocks, p = {sample.p}, "
            f"two passes per arm; model cold pass "
            f"{pipelined_read_seconds(sample.blocks, sample.p):.4f} s"
        ),
    )


def to_json(runs) -> dict:
    return {
        "p": runs[0].p,
        "blocks": runs[0].blocks,
        "arms": [
            {
                "arm": run.arm,
                "prefetch_window": run.prefetch_window,
                "cache_blocks": run.cache_blocks,
                "cold_seconds": run.elapsed,
                "repeat_seconds": run.repeat_seconds,
                "speedup": run.speedup,
                "repeat_speedup": run.repeat_speedup,
                "model_seconds": run.model_seconds,
                "hits": run.hits,
                "misses": run.misses,
                "prefetch_issued": run.prefetch_issued,
                "prefetch_used": run.prefetch_used,
                "prefetch_wasted": run.prefetch_wasted,
                "invalidations": run.invalidations,
                "content_ok": run.content_ok,
            }
            for run in runs
        ],
    }


def write_json(runs) -> None:
    write_bench_json("prefetch", to_json(runs))


def test_prefetch_ablation(benchmark):
    from benchmarks.conftest import emit, run_once

    runs = run_once(benchmark, sweep)
    emit("ablation_prefetch", render(runs))
    write_json(runs)
    check(runs)


def main(argv) -> int:
    quick = "--quick" in argv
    runs = sweep(quick=quick)
    text = render(runs)
    print(text)
    if not quick:
        results_dir = pathlib.Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "ablation_prefetch.txt").write_text(text + "\n")
        write_json(runs)
        print(f"wrote {JSON_PATH.name}")
    check(runs)
    print("prefetch ablation: all assertions passed"
          + (" (quick mode)" if quick else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
