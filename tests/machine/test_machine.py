"""Tests for nodes, networks, remote spawn, and the RPC layer."""

import pytest

from repro.config import DEFAULT_CONFIG, MessageCosts
from repro.errors import NoSuchNodeError
from repro.machine import (
    ButterflyNetwork,
    Client,
    EthernetNetwork,
    Machine,
    Response,
    Server,
    ZeroLatencyNetwork,
    oneway,
)
from repro.sim import Simulator, Timeout


def make_machine(nodes=4, network=None):
    sim = Simulator(seed=1)
    machine = Machine(sim, nodes, network=network)
    return sim, machine


# ---------------------------------------------------------------------------
# Machine / Node basics
# ---------------------------------------------------------------------------


def test_machine_has_requested_nodes():
    _sim, machine = make_machine(8)
    assert len(machine) == 8
    assert machine.node(3).index == 3


def test_machine_rejects_zero_nodes():
    sim = Simulator()
    with pytest.raises(ValueError):
        Machine(sim, 0)


def test_node_lookup_out_of_range():
    _sim, machine = make_machine(2)
    with pytest.raises(NoSuchNodeError):
        machine.node(5)
    with pytest.raises(NoSuchNodeError):
        machine.node(-1)


def test_node_port_names_are_unique():
    _sim, machine = make_machine(1)
    node = machine.node(0)
    assert node.port().name != node.port().name


def test_node_spawn_registers_process():
    sim, machine = make_machine(1)
    node = machine.node(0)

    def body():
        yield Timeout(0.1)

    node.spawn(body(), name="w")
    assert len(node.processes) == 1
    sim.run()
    assert node.processes[0].done


# ---------------------------------------------------------------------------
# Message latency
# ---------------------------------------------------------------------------


def test_local_message_faster_than_remote():
    costs = MessageCosts(local_latency=0.0001, remote_latency=0.0005, per_byte=0.0)
    sim, machine = make_machine(2, network=ButterflyNetwork(costs))
    node0, node1 = machine.nodes
    port = node1.port("in")
    arrivals = []

    def receiver():
        for _ in range(2):
            msg = yield port.recv()
            arrivals.append((msg, sim.now))

    node1.spawn(receiver())
    node0.send(port, "remote")
    node1.send(port, "local")
    sim.run()
    assert dict(arrivals)["local"] == pytest.approx(0.0001)
    assert dict(arrivals)["remote"] == pytest.approx(0.0005)


def test_per_byte_cost_applies():
    costs = MessageCosts(local_latency=0.0, remote_latency=0.001, per_byte=1e-6)
    sim, machine = make_machine(2, network=ButterflyNetwork(costs))
    port = machine.node(1).port("in")
    arrivals = []

    def receiver():
        msg = yield port.recv()
        arrivals.append(sim.now)

    machine.node(1).spawn(receiver())
    machine.node(0).send(port, b"x" * 1000, size=1000)
    sim.run()
    assert arrivals[0] == pytest.approx(0.001 + 0.001)


def test_network_counters():
    _sim, machine = make_machine(2)
    port = machine.node(1).port("in")
    machine.node(0).send(port, "m", size=100)
    assert machine.network.messages_sent == 1
    assert machine.network.bytes_sent == 100


def test_zero_latency_network_delivers_instantly():
    sim, machine = make_machine(2, network=ZeroLatencyNetwork())
    port = machine.node(1).port("in")
    times = []

    def receiver():
        yield port.recv()
        times.append(sim.now)

    machine.node(1).spawn(receiver())
    machine.node(0).send(port, "m")
    sim.run()
    assert times == [0.0]


def test_ethernet_serializes_transmissions():
    sim = Simulator()
    network = EthernetNetwork(
        sim, bandwidth_bytes_per_s=1000.0, frame_overhead=0.0, local_latency=0.0
    )
    machine = Machine(sim, 3, network=network)
    port = machine.node(2).port("in")
    arrivals = []

    def receiver():
        for _ in range(2):
            yield port.recv()
            arrivals.append(sim.now)

    machine.node(2).spawn(receiver())
    # Two 1000-byte messages at t=0: the second must wait for the first.
    machine.node(0).send(port, "a", size=1000)
    machine.node(1).send(port, "b", size=1000)
    sim.run()
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]


def test_ethernet_local_messages_bypass_bus():
    sim = Simulator()
    network = EthernetNetwork(
        sim, bandwidth_bytes_per_s=10.0, frame_overhead=0.0, local_latency=0.001
    )
    machine = Machine(sim, 2, network=network)
    port = machine.node(0).port("in")
    arrivals = []

    def receiver():
        yield port.recv()
        arrivals.append(sim.now)

    machine.node(0).spawn(receiver())
    machine.node(0).send(port, "m", size=10_000)
    sim.run()
    assert arrivals == [pytest.approx(0.001)]


# ---------------------------------------------------------------------------
# Remote spawn
# ---------------------------------------------------------------------------


def test_spawn_remote_charges_latency_and_places_process():
    sim, machine = make_machine(2)
    target = machine.node(1)
    log = []

    def worker():
        yield Timeout(0.0)
        log.append(sim.now)

    def parent():
        process = yield machine.spawn_remote(target, worker(), "w")
        assert process.name.startswith("node1/")
        yield process.join()
        return sim.now

    end = sim.run_process(parent())
    spawn_cost = DEFAULT_CONFIG.cpu.spawn
    assert log[0] == pytest.approx(spawn_cost)
    assert end == pytest.approx(spawn_cost)
    assert len(target.processes) == 1


# ---------------------------------------------------------------------------
# RPC
# ---------------------------------------------------------------------------


class EchoServer(Server):
    def op_echo(self, text):
        yield Timeout(0.010)  # 10 ms of service time
        return text.upper()

    def op_fail(self):
        yield Timeout(0.0)
        raise ValueError("requested failure")

    def op_sized(self):
        yield Timeout(0.0)
        return Response(value=b"x" * 960, size=960)


def test_rpc_roundtrip():
    sim, machine = make_machine(2)
    server = EchoServer(machine.node(0), "echo")
    client = Client(machine.node(1))

    def body():
        value = yield from client.call(server.port, "echo", text="hi")
        return value, sim.now

    value, when = sim.run_process(body())
    assert value == "HI"
    # two remote hops + 10ms service
    expected = 2 * DEFAULT_CONFIG.messages.remote_latency + 0.010
    assert when == pytest.approx(expected)


def test_rpc_error_propagates_to_caller_not_server():
    sim, machine = make_machine(2)
    server = EchoServer(machine.node(0), "echo")
    client = Client(machine.node(1))

    def body():
        try:
            yield from client.call(server.port, "fail")
        except ValueError as exc:
            return str(exc)

    assert sim.run_process(body()) == "requested failure"
    assert not server.process.done  # server survived


def test_rpc_unknown_method():
    sim, machine = make_machine(1)
    server = EchoServer(machine.node(0), "echo")
    client = Client(machine.node(0))

    def body():
        try:
            yield from client.call(server.port, "nope")
        except NotImplementedError:
            return "caught"

    assert sim.run_process(body()) == "caught"


def test_rpc_server_serializes_requests():
    sim, machine = make_machine(3)
    server = EchoServer(machine.node(0), "echo")
    done_times = []

    def caller(node):
        client = Client(node)

        def body():
            yield from client.call(server.port, "echo", text="x")
            done_times.append(sim.now)

        return body

    machine.node(1).spawn(caller(machine.node(1))())
    machine.node(2).spawn(caller(machine.node(2))())
    sim.run()
    # Second caller waits for the first 10ms service slot.
    assert done_times[1] - done_times[0] == pytest.approx(0.010)
    assert server.requests_served == 2
    assert server.utilization() > 0.5


def test_rpc_async_collect():
    sim, machine = make_machine(2)
    server = EchoServer(machine.node(0), "echo")
    client = Client(machine.node(1))

    def body():
        for text in ["a", "b", "c"]:
            client.send_async(server.port, "echo", text=text)
        values = yield from client.collect(3)
        return sorted(values)

    assert sim.run_process(body()) == ["A", "B", "C"]


def test_rpc_response_size_charged_on_wire():
    costs = MessageCosts(local_latency=0.0, remote_latency=0.0, per_byte=1e-6)
    sim = Simulator()
    machine = Machine(sim, 2, network=ButterflyNetwork(costs))
    server = EchoServer(machine.node(0), "echo")
    client = Client(machine.node(1))

    def body():
        value = yield from client.call(server.port, "sized")
        return value, sim.now

    value, when = sim.run_process(body())
    assert len(value) == 960
    assert when == pytest.approx(960e-6)


def test_oneway_send_has_no_reply():
    sim, machine = make_machine(2)
    server = EchoServer(machine.node(0), "echo")
    oneway(machine.node(1), server.port, "echo", text="quiet")
    sim.run()
    assert server.requests_served == 1
