"""Tests for gather, Detached handlers, tree spawn, and the relay."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.machine import Client, Machine, Request, Response, Server, gather
from repro.machine.rpc import Detached
from repro.sim import Simulator, Timeout
from repro.tools.base import sequential_spawn, tree_spawn


def make_machine(nodes=4):
    sim = Simulator(seed=91)
    return sim, Machine(sim, nodes)


class SlowServer(Server):
    def op_work(self, delay, tag):
        yield Timeout(delay)
        return tag

    def op_fail(self, message):
        yield Timeout(0.0)
        raise RuntimeError(message)

    def op_slow_detached(self, delay, tag):
        yield Timeout(0.001)  # synchronous part

        def finish():
            yield Timeout(delay)
            return tag

        return Detached(finish())

    def op_detached_error(self):
        yield Timeout(0.0)

        def finish():
            yield Timeout(0.001)
            raise ValueError("detached boom")

        return Detached(finish())


# ---------------------------------------------------------------------------
# gather
# ---------------------------------------------------------------------------


def test_gather_waits_for_slowest_and_keeps_order():
    sim, machine = make_machine(3)
    servers = [SlowServer(machine.node(i), f"s{i}") for i in (0, 1)]

    def body():
        calls = [
            (servers[0].port, "work", {"delay": 0.05, "tag": "slow"}, 0),
            (servers[1].port, "work", {"delay": 0.01, "tag": "fast"}, 0),
        ]
        values = yield from gather(machine.node(2), calls)
        return values, sim.now

    values, elapsed = sim.run_process(body())
    assert values == ["slow", "fast"]  # call order, not completion order
    assert elapsed >= 0.05


def test_gather_raises_first_error():
    sim, machine = make_machine(2)
    server = SlowServer(machine.node(0), "s")

    def body():
        calls = [
            (server.port, "fail", {"message": "nope"}, 0),
            (server.port, "work", {"delay": 0.0, "tag": "x"}, 0),
        ]
        try:
            yield from gather(machine.node(1), calls)
        except RuntimeError as exc:
            return str(exc)

    assert sim.run_process(body()) == "nope"


def test_gather_empty_calls():
    sim, machine = make_machine(1)

    def body():
        values = yield from gather(machine.node(0), [])
        return values

    assert sim.run_process(body()) == []


def test_gather_error_carries_originating_call():
    """A failed fan-out leg names the port, method, and call index."""
    sim, machine = make_machine(3)
    ok = SlowServer(machine.node(0), "ok")
    bad = SlowServer(machine.node(1), "bad")

    def body():
        calls = [
            (ok.port, "work", {"delay": 0.0, "tag": "a"}, 0),
            (bad.port, "fail", {"message": "disk died"}, 0),
            (ok.port, "work", {"delay": 0.0, "tag": "b"}, 0),
        ]
        try:
            yield from gather(machine.node(2), calls)
        except RuntimeError as exc:
            return exc

    error = sim.run_process(body())
    assert isinstance(error, RuntimeError)  # original type preserved
    assert error.gather_port is bad.port
    assert error.gather_method == "fail"
    assert error.gather_index == 1
    if hasattr(error, "__notes__"):  # Python >= 3.11
        assert any("bad@node1" in note for note in error.__notes__)
        assert any("#1 of 3" in note for note in error.__notes__)


def test_gather_max_in_flight_windows_requests():
    """With a window of 1 the calls serialize; unbounded they overlap."""
    sim, machine = make_machine(3)
    servers = [SlowServer(machine.node(i), f"s{i}") for i in (0, 1)]

    def run_gather(limit):
        def body():
            start = sim.now
            calls = [
                (servers[0].port, "work", {"delay": 0.05, "tag": "a"}, 0),
                (servers[1].port, "work", {"delay": 0.05, "tag": "b"}, 0),
            ]
            values = yield from gather(
                machine.node(2), calls, max_in_flight=limit
            )
            return values, sim.now - start

        return sim.run_process(body())

    values, bounded_elapsed = run_gather(1)
    assert values == ["a", "b"]
    values, unbounded_elapsed = run_gather(None)
    assert values == ["a", "b"]
    # Two 50 ms calls: serialized >= 100 ms, overlapped ~ 50 ms.
    assert bounded_elapsed >= 0.1
    assert unbounded_elapsed < 0.1


def test_gather_max_in_flight_validation():
    sim, machine = make_machine(1)

    def body():
        yield from gather(machine.node(0), [], max_in_flight=0)

    with pytest.raises(Exception) as excinfo:
        sim.run_process(body())
    cause = excinfo.value.__cause__ or excinfo.value
    assert isinstance(cause, ValueError)


# ---------------------------------------------------------------------------
# Detached handlers
# ---------------------------------------------------------------------------


def test_detached_frees_the_server_loop():
    """A slow detached request must not delay a later fast request."""
    sim, machine = make_machine(2)
    server = SlowServer(machine.node(0), "s")
    completions = []

    def caller(method, label, **args):
        client = Client(machine.node(1), label)

        def body():
            value = yield from client.call(server.port, method, **args)
            completions.append((label, value, sim.now))

        return body()

    sim.spawn(caller("slow_detached", "detached", delay=1.0, tag="D"))

    def late_fast():
        yield Timeout(0.01)
        client = Client(machine.node(1), "fast")
        value = yield from client.call(server.port, "work", delay=0.0, tag="F")
        completions.append(("fast", value, sim.now))

    sim.spawn(late_fast())
    sim.run()
    order = [label for label, _v, _t in completions]
    assert order == ["fast", "detached"]
    by_label = {label: t for label, _v, t in completions}
    assert by_label["fast"] < 0.1
    assert by_label["detached"] >= 1.0


def test_detached_result_reaches_caller():
    sim, machine = make_machine(2)
    server = SlowServer(machine.node(0), "s")
    client = Client(machine.node(1))

    def body():
        return (
            yield from client.call(server.port, "slow_detached",
                                   delay=0.05, tag="payload")
        )

    assert sim.run_process(body()) == "payload"


def test_detached_error_reaches_caller():
    sim, machine = make_machine(2)
    server = SlowServer(machine.node(0), "s")
    client = Client(machine.node(1))

    def body():
        try:
            yield from client.call(server.port, "detached_error")
        except ValueError as exc:
            return str(exc)

    assert sim.run_process(body()) == "detached boom"


# ---------------------------------------------------------------------------
# Tree spawn
# ---------------------------------------------------------------------------


def _worker(sim, tag, delay, log):
    yield Timeout(delay)
    log.append((tag, sim.now))
    return tag


def test_tree_spawn_returns_results_in_spec_order():
    sim, machine = make_machine(8)
    log = []
    specs = [
        (machine.node(i), _worker(sim, f"w{i}", 0.01, log), f"w{i}")
        for i in range(8)
    ]

    def body():
        return (yield from tree_spawn(machine, specs))

    results = sim.run_process(body())
    assert results == [f"w{i}" for i in range(8)]
    assert len(log) == 8


def test_tree_spawn_empty():
    sim, machine = make_machine(1)

    def body():
        return (yield from tree_spawn(machine, []))

    assert sim.run_process(body()) == []


def test_tree_spawn_faster_startup_than_sequential():
    """With many workers, the log-depth spawn tree starts the last worker
    sooner than a sequential spawner."""

    def last_start(spawner):
        sim, machine = make_machine(16)
        starts = []

        def worker(tag):
            starts.append(sim.now)
            yield Timeout(0.001)
            return tag

        specs = [(machine.node(i), worker(i), f"w{i}") for i in range(16)]

        def body():
            return (yield from spawner(machine, specs))

        sim.run_process(body())
        return max(starts)

    assert last_start(tree_spawn) < last_start(sequential_spawn)


def test_sequential_spawn_results_in_order():
    sim, machine = make_machine(4)
    log = []
    specs = [
        (machine.node(i), _worker(sim, i, 0.01 * (4 - i), log), f"w{i}")
        for i in range(4)
    ]

    def body():
        return (yield from sequential_spawn(machine, specs))

    assert sim.run_process(body()) == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# Relay broadcast
# ---------------------------------------------------------------------------


def test_relay_tree_reaches_every_target_in_order():
    from repro.core.relay import RelayServer

    sim, machine = make_machine(8)

    class Target(Server):
        def op_mark(self, value):
            yield Timeout(0.001)
            return value * 10

    targets = [Target(machine.node(i), f"t{i}") for i in range(8)]
    relays = [
        RelayServer(machine.node(i), targets[i].port, DEFAULT_CONFIG)
        for i in range(8)
    ]
    entries = [
        {"efs_port": targets[i].port, "relay_port": relays[i].port,
         "args": {"value": i}}
        for i in range(8)
    ]
    client = Client(machine.node(0))

    def body():
        return (
            yield from client.call(
                relays[0].port, "relay", entries=entries, relay_method="mark"
            )
        )

    results = sim.run_process(body())
    assert results == [i * 10 for i in range(8)]
    assert all(t.requests_served == 1 for t in targets)
