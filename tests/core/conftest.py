"""Fixtures for core tests: small Bridge systems."""

import pytest

from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency


@pytest.fixture
def system():
    """4 LFS nodes with the paper's 15 ms disks."""
    return BridgeSystem(4, seed=21)


@pytest.fixture
def fast_system():
    """4 LFS nodes with near-instant disks for semantics-heavy tests."""
    return BridgeSystem(4, seed=22, disk_latency=FixedLatency(0.0001))


def make_system(p, fast=True, **kwargs):
    latency = FixedLatency(0.0001) if fast else FixedLatency(0.015)
    return BridgeSystem(p, disk_latency=latency, **kwargs)
