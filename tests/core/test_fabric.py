"""S20 fabric tests: the partitioned Bridge as a first-class routing
layer for every view.

Covers the partition-routing invariants (stability across LFS widths,
cross-partition ``Get Info`` aggregation, cache coherence across
re-creates at different partition counts), the API-parity contract
between :class:`BridgeClient` and :class:`PartitionedClient`, all three
views plus list I/O and parity redundancy at ``bridge_server_count=4``,
the exported-trace shape (per-partition server rows reached by one
cross-partition fan-out), and the request pipeline's redundancy
interposer chain.
"""

import inspect
import json

import pytest

from repro.config import DATA_BYTES_PER_BLOCK
from repro.core import BridgeClient, ParallelWorker
from repro.core.partitioned import PartitionedClient
from repro.elastic.ring import ModuloRing
from repro.efs.fsck import check_system
from repro.harness.builders import BridgeSystem
from repro.sim import join_all
from repro.storage import FixedLatency
from repro.tools.copy import CopyTool
from repro.workloads import pattern_chunks


def make_fabric(p=4, servers=4, seed=23, **kwargs):
    return BridgeSystem(
        p, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, **kwargs,
    )


def data_for(index):
    return f"fb-{index:04d}|".encode()


# ---------------------------------------------------------------------------
# Satellite: API parity between BridgeClient and PartitionedClient
# ---------------------------------------------------------------------------


def api_surface(cls):
    """Public methods -> (name, kind, default) parameter shapes."""
    surface = {}
    for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
        if name.startswith("_") or name == "__init__":
            continue
        surface[name] = [
            (p.name, p.kind, p.default)
            for p in inspect.signature(member).parameters.values()
        ]
    return surface


def test_partitioned_client_covers_full_bridge_client_surface():
    """Every public BridgeClient operation exists on PartitionedClient
    with an identical parameter list — the regression that motivated
    this test was list I/O and block maps missing from the routed
    client, which silently pushed fabric users back to partition 0."""
    want = api_surface(BridgeClient)
    have = api_surface(PartitionedClient)
    missing = sorted(set(want) - set(have))
    assert not missing, f"PartitionedClient is missing {missing}"
    for name, parameters in want.items():
        assert have[name] == parameters, (
            f"signature mismatch on {name}: "
            f"BridgeClient{parameters} vs PartitionedClient{have[name]}"
        )


# ---------------------------------------------------------------------------
# Partition-routing invariants
# ---------------------------------------------------------------------------


def test_partition_of_depends_only_on_name_and_count():
    names = [f"n{i}" for i in range(16)]
    ring = ModuloRing(3)
    owners = {name: ring.partition_of(name) for name in names}
    # Same partition count, different LFS widths: ownership must not move
    # (routing keys off the namespace, never the storage geometry).
    for p in (2, 8):
        system = make_fabric(p=p, servers=3, seed=7)
        client = system.partitioned_client()

        def body():
            for name in names:
                yield from client.create(name)

        system.run(body())
        for name in names:
            for index, bridge in enumerate(system.bridges):
                assert bridge.directory.exists(name) == (index == owners[name])


def test_cross_partition_get_info_aggregates_all_partitions():
    system = make_fabric()
    client = system.partitioned_client()

    def body():
        return (yield from client.get_info())

    info = system.run(body())
    assert info.width == 4
    assert len(info.server_ports) == 4
    assert info.server_ports == [b.port for b in system.bridges]
    assert info.server_port is system.bridges[0].port
    # Every partition reports the same LFS node layout.
    assert [h.node_index for h in info.lfs] == [n.index for n in system.lfs_nodes]


@pytest.mark.parametrize("servers", [1, 2, 4])
def test_recreate_is_cache_coherent_at_any_partition_count(servers):
    """Delete + re-create of the same name must never serve the old
    generation from the owning partition's block cache."""
    system = make_fabric(
        servers=servers, seed=9, bridge_cache_blocks=64, prefetch_window=2,
    )
    client = system.naive_client()

    def body():
        yield from client.create("x")
        yield from client.write_all("x", [b"old-%d|" % i for i in range(6)])
        first = yield from client.read_all("x")
        yield from client.delete("x")
        yield from client.create("x")
        yield from client.write_all("x", [b"new-%d|" % i for i in range(6)])
        second = yield from client.read_all("x")
        return first, second

    first, second = system.run(body())
    assert [c[:6] for c in first] == [b"old-%d|" % i for i in range(6)]
    assert [c[:6] for c in second] == [b"new-%d|" % i for i in range(6)]


# ---------------------------------------------------------------------------
# Every view at bridge_server_count = 4
# ---------------------------------------------------------------------------


def test_naive_and_list_io_on_fabric():
    system = make_fabric()
    client = system.naive_client()
    assert isinstance(client, PartitionedClient)

    def body():
        yield from client.create("lf")
        for index in range(8):
            yield from client.seq_write("lf", data_for(index))
        picked = yield from client.list_read("lf", [1, 4, 6])
        appended = yield from client.list_write(
            "lf", [8, 9], chunks=[data_for(8), data_for(9)]
        )
        everything = yield from client.read_all("lf")
        return picked, appended, everything

    picked, appended, everything = system.run(body())
    assert [c[:8] for c in picked] == [data_for(i) for i in (1, 4, 6)]
    assert appended == 10
    assert [c[:8] for c in everything] == [data_for(i) for i in range(10)]


def test_parallel_view_on_fabric():
    system = make_fabric()
    client = system.naive_client()
    received = {i: [] for i in range(4)}

    def writer():
        yield from client.create("pjob")
        for index in range(8):
            yield from client.seq_write("pjob", data_for(index))

    system.run(writer())

    workers = [
        ParallelWorker(system.client_node, i, name="pjob-w") for i in range(4)
    ]

    def worker_body(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return
            received[worker.index].append(delivery.block_number)

    worker_processes = [
        system.client_node.spawn(worker_body(w), name=f"worker{w.index}")
        for w in workers
    ]

    def main():
        controller = system.job_controller()
        job = yield from controller.open("pjob", [w.port for w in workers])
        counts = []
        for _ in range(3):
            counts.append((yield from controller.read()))
        yield from controller.close()
        yield join_all(worker_processes)
        return job, counts

    job, counts = system.run(main())
    assert job.width == 4
    assert counts == [4, 4, 0]
    for index in range(4):
        assert received[index] == [index, index + 4]
    # The job ran on the partition that owns the name, not partition 0.
    owner = system.fabric.server_for("pjob")
    assert owner.directory.exists("pjob")


def test_copy_tool_on_fabric():
    system = make_fabric()
    client = system.naive_client()

    def build():
        yield from client.create("src")
        for index in range(8):
            yield from client.seq_write("src", data_for(index))

    system.run(build())
    # "src" and "dst" hash to different partitions at count 4, so the
    # tool's create/open/delete calls must route per name.
    assert system.fabric.partition_of("src") != system.fabric.partition_of("dst")
    tool = CopyTool(system.client_node, system.server_target(), system.config)

    def run_tool():
        return (yield from tool.run("src", "dst"))

    result = system.run(run_tool())
    assert result.total_blocks == 8

    def read_back():
        return (yield from client.read_all("dst"))

    chunks = system.run(read_back())
    assert [c[:8] for c in chunks] == [data_for(i) for i in range(8)]


def test_parity_redundancy_on_fabric():
    system = BridgeSystem(
        5, seed=17, disk_latency=FixedLatency(0.0005),
        bridge_server_count=4, redundancy="parity",
    )
    chunks = [
        chunk.ljust(DATA_BYTES_PER_BLOCK, b"\x00")
        for chunk in pattern_chunks(8, stamp=b"PAR")
    ]
    pfile = system.redundant_file("pf")

    def body():
        yield from pfile.create()
        yield from pfile.write_all(chunks)
        return (yield from pfile.read_all())

    data, _stats = system.run(body())
    assert data == chunks
    assert all(report.clean for report in check_system(system))


# ---------------------------------------------------------------------------
# Trace shape at count 4
# ---------------------------------------------------------------------------


def test_fabric_trace_has_partition_rows_and_one_fanout_tree(tmp_path):
    trace_path = tmp_path / "fabric_trace.json"
    system = make_fabric(obs=True, trace_export=str(trace_path))
    client = system.partitioned_client()

    def body():
        for index in range(8):
            name = f"t{index}"
            yield from client.create(name)
            yield from client.seq_write(name, data_for(index))
        return (yield from client.get_info())

    info = system.run(body())
    assert len(info.server_ports) == 4

    obs = system.obs
    server_nodes = {node.index for node in system.server_nodes}
    # Per-partition server rows: every partition handled some request.
    handled = {
        span.node for span in obs.spans if span.category == "server"
        and span.name.startswith("bridge")
    }
    assert server_nodes <= handled
    # Cross-partition fan-out: the four get_info handler spans (one per
    # partition node) hang off one client span via the four gather legs.
    infos = [
        span for span in obs.spans
        if span.category == "server" and span.name.endswith(".get_info")
    ]
    assert {span.node for span in infos} == server_nodes
    legs = [span for span in obs.spans if span.name == "gather.get_info"]
    assert len(legs) == 4
    assert len({span.parent_id for span in legs}) == 1
    by_id = {span.id: span for span in obs.spans}

    def root_of(span):
        while span.parent_id is not None:
            span = by_id[span.parent_id]
        return span

    roots = {root_of(span).id for span in infos}
    assert len(roots) == 1
    assert by_id[next(iter(roots))].name == "pclient.get_info"
    # The exported document renders one process row per partition node.
    document = json.loads(trace_path.read_text())
    exported = {
        event["pid"] for event in document["traceEvents"]
        if event.get("ph") == "X" and event.get("cat") == "server"
        and event["name"].startswith("bridge")
    }
    assert server_nodes <= exported


# ---------------------------------------------------------------------------
# Pipeline interposer chain (stage 3)
# ---------------------------------------------------------------------------


class RecordingInterposer:
    """Claims reads/writes of block 0 only; logs every consultation."""

    SENTINEL = b"reconstructed|".ljust(DATA_BYTES_PER_BLOCK, b"\x00")

    def __init__(self):
        self.read_calls = []
        self.write_calls = []
        self.absorbed = []

    def read(self, entry, name, block):
        self.read_calls.append((name, block))
        if block != 0:
            return None

        def serve():
            return self.SENTINEL
            yield  # pragma: no cover - generator shape

        return serve()

    def write(self, entry, name, block, data):
        self.write_calls.append((name, block))
        if block != 0:
            return None

        def absorb():
            self.absorbed.append((name, block, data))
            return object()
            yield  # pragma: no cover - generator shape

        return absorb()


def test_interposer_chain_claims_and_falls_through():
    system = make_fabric(servers=1, seed=5)
    interposer = RecordingInterposer()
    system.bridge.pipeline.interposers.append(interposer)
    client = system.naive_client()

    def body():
        yield from client.create("f")
        for index in range(3):
            yield from client.seq_write("f", data_for(index))
        block0 = yield from client.random_read("f", 0)
        block2 = yield from client.random_read("f", 2)
        return block0, block2

    block0, block2 = system.run(body())
    # Block 0 was claimed on both paths: the write never reached EFS (so
    # the read-back is the interposer's data, not the client's), and the
    # read was served from the chain.
    assert block0 == interposer.SENTINEL
    assert block2[:8] == data_for(2)
    assert interposer.absorbed and interposer.absorbed[0][:2] == ("f", 0)
    # Unclaimed accesses consulted the chain, then fell through.
    assert ("f", 2) in interposer.read_calls
    assert ("f", 1) in interposer.write_calls


def test_default_interposer_chain_is_empty():
    system = make_fabric(servers=2, seed=3)
    assert all(b.pipeline.interposers == [] for b in system.bridges)
